//! Golden evolve-trace regression: one fixed-seed timeline over an
//! evolving dataset — cold requery, append, warm requery, in-place
//! mutation, warm requery, then a parked standing query woken by arriving
//! data — committed to the repository line for line.
//!
//! Any change to the memoization plane (probe order, invalidation,
//! wakeup scheduling) or to the evolve path shows up here as a readable
//! diff instead of a silent drift. After an *intentional* behaviour
//! change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_evolve
//! ```
//!
//! and review the diff like any other code change.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use incmr::core::ContinuousSampling;
use incmr::mapreduce::keys;
use incmr::prelude::*;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/evolve_trace.txt")
}

/// A full-consumption requery: `k` equal to the dataset's total planted
/// matches under the Hadoop policy grabs every split upfront and
/// completes exactly at the target — no partial-sample tail in the trace.
fn requery(ds: &Arc<Dataset>, rt: &mut MrRuntime) -> JobId {
    let (mut job, driver) = build_sampling_job(
        ds,
        ds.total_matching(),
        Policy::hadoop(),
        ScanMode::Planted,
        SampleMode::FirstK,
        23,
    );
    // `k` grows with the dataset, which would shift the conf-derived
    // signature — but per-split map output is independent of `k`, so the
    // requeries pin a shared semantic signature (the override hiveql uses
    // for its compiled queries).
    job.conf.set(keys::JOB_SIGNATURE, 7_001u64);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed, "golden requery must complete");
    id
}

/// The fixed-seed evolve timeline.
fn render_run() -> String {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(23);
    let mut placement = EvenRoundRobin::new();
    let spec = DatasetSpec::small("e", 10, 3_000, SkewLevel::Zero, 23);
    let ds = Arc::new(Dataset::build(&mut ns, spec, &mut placement, &mut rng));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_tracing();
    rt.enable_memoization();

    // Job 0: the cold requery — populates the memo store.
    requery(&ds, &mut rt);

    // Four fresh splits arrive; job 1 reuses the original ten and
    // computes only the arrivals.
    rt.evolve(|ns| ds.append(ns, 4, &mut placement, &mut rng));
    requery(&ds, &mut rt);

    // Three splits are rewritten in place; job 2 sees them dirty at the
    // bumped block version and recomputes exactly those.
    let splits = ds.splits();
    let rewritten: Vec<BlockId> = [0usize, 3, 7].iter().map(|&i| splits[i].block).collect();
    rt.evolve(|ns| ds.mutate(ns, &rewritten, &mut placement, &mut rng));
    requery(&ds, &mut rt);

    // Job 3: a standing query targeting one more match than the dataset
    // holds — it drains its pool, parks, and is woken by the arrival of
    // two more splits, completing with the full sample.
    let k = ds.total_matching() + 1;
    let (mut job, _) = build_sampling_job(
        &ds,
        k,
        Policy::ma(),
        ScanMode::Planted,
        SampleMode::FirstK,
        23,
    );
    job.conf.set(keys::CONTINUOUS, true);
    let blocks: Vec<BlockId> = ds.splits().iter().map(|p| p.block).collect();
    let total = blocks.len() as u32;
    let driver = Box::new(DynamicDriver::new(
        Box::new(ContinuousSampling::new(blocks, k, 23)),
        Policy::ma(),
        total,
    ));
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    assert!(!rt.is_complete(id), "the standing query must park");
    rt.evolve(|ns| ds.append(ns, 2, &mut placement, &mut rng));
    rt.run_until_idle();
    assert!(rt.is_complete(id), "arriving data must wake the query");
    assert!(!rt.job_result(id).failed);
    assert_eq!(rt.job_result(id).output.len() as u64, k);

    let mut out = String::new();
    for event in rt.take_trace() {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn evolve_trace_matches_golden_file() {
    let got = render_run();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &got).expect("write golden evolve trace");
        return;
    }
    let want = fs::read_to_string(&path)
        .expect("tests/golden/evolve_trace.txt missing — generate it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "evolve trace diverged from tests/golden/evolve_trace.txt; \
         if the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// Coverage guard: the golden timeline must keep producing every event
/// kind the incremental plane emits — split reuse, staleness, and data
/// arrival — plus the wakeup arrival that un-parks the standing query.
/// Without this the trace could quietly stop exercising the memo plane
/// while still "matching".
#[test]
fn golden_timeline_exercises_every_incremental_event_kind() {
    let got = render_run();
    for needle in [
        "reused from memo",
        "dirty (stale memo version)",
        "+4 blocks arrived",
        "+2 blocks arrived",
    ] {
        assert!(
            got.contains(needle),
            "golden evolve timeline no longer produces a \"{needle}\" event"
        );
    }
    let reused = got.matches("reused from memo").count();
    let dirty = got.matches("dirty (stale memo version)").count();
    assert_eq!(
        dirty, 3,
        "job 2 must see exactly the three rewritten splits as dirty"
    );
    assert!(
        reused >= 10 + 11,
        "jobs 1 and 2 must reuse the bulk of their splits, got {reused}"
    );
}
