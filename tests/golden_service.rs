//! Golden admission trace: one fixed-seed multi-tenant schedule — three
//! tenants with 3:1:1 weights and tight quotas flooding a two-job
//! service — produces one exact JSONL admission log (every
//! `QueryAdmitted` / `QueryRejected` / `QuotaDeferred` decision plus the
//! job lifecycle events they interleave with), committed to the
//! repository and byte-identical at 1, 4, and 8 data-plane threads.
//!
//! After an *intentional* behaviour change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_service
//! ```
//!
//! and review the diff like any other code change.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use incmr::prelude::*;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/service_trace.txt")
}

/// The fixed multi-tenant schedule: three tenants submit interleaved
/// bursts that overflow both the per-tenant quotas (deferrals) and the
/// queue-depth caps (rejections), then the weighted-fair release drains
/// everything through a service capped at two concurrent jobs.
fn render_run_at(threads: u32) -> String {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(23);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        DatasetSpec::small("lineitem", 6, 2_000, SkewLevel::Moderate, 23),
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_multi_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FairScheduler::paper_default()),
    );
    let mut svc = QueryService::new(
        rt,
        ServiceConfig {
            max_in_flight_jobs: 2,
        },
    );
    svc.runtime_mut().enable_tracing();
    svc.register_table("lineitem", Arc::clone(&ds));
    let profiles = [("gold", 3u32), ("silver", 1), ("bronze", 1)];
    let tenants: Vec<TenantId> = profiles
        .iter()
        .map(|&(name, weight)| {
            svc.add_tenant(TenantProfile {
                name: name.into(),
                weight,
                max_in_flight: 1,
                queue_cap: 2,
            })
        })
        .collect();
    // Five rounds of round-robin submissions against queue caps of two:
    // round 1 launches or queues, rounds 2-3 defer, rounds 4-5 reject.
    for _ in 0..5 {
        for &tenant in &tenants {
            let _ = svc.submit(
                tenant,
                "SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.99 LIMIT 10",
            );
        }
    }
    svc.run_until_idle();
    let events: Vec<TraceEvent> = svc
        .runtime_mut()
        .take_trace()
        .into_iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceKind::QueryAdmitted { .. }
                    | TraceKind::QueryRejected { .. }
                    | TraceKind::QuotaDeferred { .. }
                    | TraceKind::JobSubmitted { .. }
                    | TraceKind::JobCompleted { .. }
            )
        })
        .collect();
    encode_trace(&events)
}

#[test]
fn admission_trace_matches_golden_file_at_every_thread_count() {
    let runs: Vec<String> = [1u32, 4, 8].iter().map(|&t| render_run_at(t)).collect();
    for (run, threads) in runs.iter().zip([1, 4, 8]).skip(1) {
        assert_eq!(
            &runs[0], run,
            "admission trace differs at {threads} data-plane threads"
        );
    }
    let got = &runs[0];
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, got).expect("write golden service trace");
        return;
    }
    let want = fs::read_to_string(&path)
        .expect("tests/golden/service_trace.txt missing — generate it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, &want,
        "admission trace diverged from tests/golden/service_trace.txt; \
         if the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// Coverage guard: the golden schedule must keep exercising every
/// admission event kind — a "matching" trace that stopped rejecting or
/// deferring would pin nothing.
#[test]
fn golden_schedule_covers_every_admission_event_kind() {
    let got = render_run_at(1);
    let events = parse_trace(&got).expect("golden trace is valid JSONL");
    let admitted = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::QueryAdmitted { .. }))
        .count();
    let rejected = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::QueryRejected { .. }))
        .count();
    let deferred = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::QuotaDeferred { .. }))
        .count();
    let completed = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::JobCompleted { .. }))
        .count();
    assert!(admitted > 0, "no admissions in the golden schedule");
    assert!(rejected > 0, "no rejections in the golden schedule");
    assert!(deferred > 0, "no deferrals in the golden schedule");
    assert_eq!(
        admitted, completed,
        "every admitted query must complete in the golden schedule"
    );
    // Every tenant appears among the admissions (the weighted release
    // serves all three), and rejections hit the tight-quota tenants.
    let mut tenants_admitted: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::QueryAdmitted { tenant, .. } => Some(tenant),
            _ => None,
        })
        .collect();
    tenants_admitted.sort_unstable();
    tenants_admitted.dedup();
    assert_eq!(tenants_admitted, vec![0, 1, 2]);
}
