//! Incremental recomputation over evolving data, pinned by byte-equality
//! replay.
//!
//! The contract under test: with memoization enabled, re-submitting a job
//! after the dataset evolved (appends, in-place mutations) re-executes
//! **only** the new and dirty splits — every unchanged split is satisfied
//! from the memo store — and yet the warm re-run is *indistinguishable*
//! from a cold run against the final dataset state:
//!
//! * identical reduce output, byte for byte;
//! * identical simulated response time;
//! * an identical normalized event timeline (job id rewritten to 0, times
//!   rebased to the job's submission, memo-plane annotations stripped);
//! * and all of the above byte-identical at 1, 4, and 8 data-plane
//!   threads.
//!
//! The accounting is exact, not approximate: over a warm run,
//! `splits_reused + splits_computed == total splits`, with
//! `splits_computed` equal to the appended-plus-dirtied count derived
//! independently from the evolve schedule.

use std::collections::BTreeSet;
use std::sync::Arc;

use incmr::core::ContinuousSampling;
use incmr::mapreduce::{keys, MemoMetrics};
use incmr::prelude::*;

/// Initial dataset size for the replay matrix.
const INITIAL_SPLITS: u32 = 24;
const RECORDS: u64 = 3_000;

/// A sample target far above anything the datasets here can hold, so the
/// requery job consumes **every** split (the Hadoop policy grabs the
/// whole pool upfront) and materialises **every** matching row — a scan
/// whose output actually reflects split content, which is what the
/// byte-equality and stale-cache assertions bite on.
const EVERYTHING: u64 = 1 << 40;

/// The job the replay suite re-submits: a full-consumption sampling job,
/// byte-deterministic and signature-stable across submissions.
fn requery(ds: &Arc<Dataset>) -> (JobSpec, Box<dyn incmr::mapreduce::GrowthDriver>) {
    let (job, driver) = build_sampling_job(
        ds,
        EVERYTHING,
        Policy::hadoop(),
        ScanMode::Planted,
        SampleMode::FirstK,
        23,
    );
    (job, driver)
}

/// One evolve step of a schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Append this many fresh splits.
    Append(u32),
    /// Rewrite these splits in place (indices into the dataset's split
    /// snapshot, which lists initial splits first, appends after).
    Mutate(Vec<usize>),
}

/// A runtime plus the evolving dataset and the placement/content streams
/// that must be replayed identically for a cold world to reproduce a warm
/// world's final state.
struct World {
    rt: MrRuntime,
    ds: Arc<Dataset>,
    placement: EvenRoundRobin,
    rng: DetRng,
}

fn world(threads: u32) -> World {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(17);
    let mut placement = EvenRoundRobin::new();
    let spec = DatasetSpec::small("t", INITIAL_SPLITS, RECORDS, SkewLevel::Moderate, 17);
    let ds = Arc::new(Dataset::build(&mut ns, spec, &mut placement, &mut rng));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_tracing();
    World {
        rt,
        ds,
        placement,
        rng,
    }
}

/// Apply an evolve schedule through the runtime (so live standing queries
/// would be woken and `InputArrived` is traced).
fn apply(w: &mut World, ops: &[Op]) {
    let World {
        rt,
        ds,
        placement,
        rng,
    } = w;
    for op in ops {
        match op {
            Op::Append(n) => {
                rt.evolve(|ns| ds.append(ns, *n, placement, rng));
            }
            Op::Mutate(indices) => {
                let splits = ds.splits();
                let blocks: Vec<BlockId> = indices.iter().map(|&i| splits[i].block).collect();
                rt.evolve(|ns| ds.mutate(ns, &blocks, placement, rng));
            }
        }
    }
}

/// splitmix64: independent schedule knobs from one seed, without touching
/// the simulation's own rng streams.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive an arbitrary evolve schedule from a seed: 1–3 steps, each an
/// append of 1–3 splits or an in-place mutation of up to 3 distinct
/// splits drawn from whatever exists at that point of the schedule.
fn schedule(seed: u64) -> Vec<Op> {
    let h = |i: u64| mix(seed.wrapping_mul(1_000_003).wrapping_add(i));
    let steps = 1 + h(0) % 3;
    let mut ops = Vec::new();
    let mut count = INITIAL_SPLITS as usize;
    for s in 0..steps {
        if h(10 + s) % 2 == 0 {
            let n = 1 + (h(20 + s) % 3) as u32;
            ops.push(Op::Append(n));
            count += n as usize;
        } else {
            let m = 1 + h(30 + s) % 3;
            let set: BTreeSet<usize> = (0..m)
                .map(|j| (h(40 + 7 * s + j) as usize) % count)
                .collect();
            ops.push(Op::Mutate(set.into_iter().collect()));
        }
    }
    ops
}

/// What the memo plane must do for a schedule, derived independently of
/// the runtime: appended splits (never memoized) and dirtied *initial*
/// splits recompute; every other initial split is reused. A mutation of a
/// split appended earlier in the same schedule stays a plain computation
/// — there is no memo entry to dirty.
struct Expect {
    total: u32,
    appended: u32,
    dirty: u32,
}

fn expect(ops: &[Op]) -> Expect {
    let mut appended = 0u32;
    let mut dirty: BTreeSet<usize> = BTreeSet::new();
    for op in ops {
        match op {
            Op::Append(n) => appended += n,
            Op::Mutate(indices) => {
                dirty.extend(indices.iter().filter(|&&i| i < INITIAL_SPLITS as usize));
            }
        }
    }
    Expect {
        total: INITIAL_SPLITS + appended,
        appended,
        dirty: dirty.len() as u32,
    }
}

/// Normalize one job's slice of a trace for warm-vs-cold comparison:
/// keep only that job's events, rebase times to its first event, rewrite
/// the job id to 0, and strip the memo-plane annotations (`SplitReused` /
/// `SplitDirty`) — those *describe* how the run was produced, while
/// everything left *is* the run.
fn fingerprint(events: &[TraceEvent], job: JobId) -> String {
    let filtered: Vec<TraceEvent> = events
        .iter()
        .filter(|e| e.kind.job() == Some(job))
        .filter(|e| {
            !matches!(
                e.kind,
                TraceKind::SplitReused { .. } | TraceKind::SplitDirty { .. }
            )
        })
        .cloned()
        .collect();
    let base = filtered.first().map(|e| e.time).unwrap_or(SimTime::ZERO);
    let rebased: Vec<TraceEvent> = filtered
        .into_iter()
        .map(|e| TraceEvent {
            time: SimTime::ZERO + (e.time - base),
            kind: e.kind,
        })
        .collect();
    // Every "job" field in the filtered slice carries this job's id, so a
    // plain textual rewrite is exact.
    encode_trace(&rebased).replace(&format!("\"job\":{}", job.0), &format!("\"job\":{}", 0))
}

/// Deltas between two memo counter snapshots.
fn delta(before: MemoMetrics, after: MemoMetrics) -> MemoMetrics {
    MemoMetrics {
        splits_reused: after.splits_reused - before.splits_reused,
        splits_dirty: after.splits_dirty - before.splits_dirty,
        splits_computed: after.splits_computed - before.splits_computed,
        input_arrivals: after.input_arrivals - before.input_arrivals,
        records_saved: after.records_saved - before.records_saved,
        entries_invalidated: after.entries_invalidated - before.entries_invalidated,
    }
}

/// Cold world: build, replay the schedule, run the scan once (no
/// memoization anywhere). Returns the result and the normalized timeline.
fn cold_run(threads: u32, ops: &[Op]) -> (JobResult, String) {
    let mut w = world(threads);
    apply(&mut w, ops);
    let (job, driver) = requery(&w.ds);
    let id = w.rt.submit(job, driver);
    w.rt.run_until_idle();
    let result = w.rt.job_result(id).clone();
    let events = w.rt.take_trace();
    (result, fingerprint(&events, id))
}

/// Warm world: run the scan cold to populate the memo store, replay the
/// schedule, re-submit the identical scan. Returns the warm result, its
/// normalized timeline, and the warm run's memo-counter deltas.
fn warm_run(threads: u32, ops: &[Op]) -> (JobResult, String, MemoMetrics) {
    let mut w = world(threads);
    w.rt.enable_memoization();
    let (job, driver) = requery(&w.ds);
    let cold_id = w.rt.submit(job, driver);
    w.rt.run_until_idle();
    assert!(
        !w.rt.job_result(cold_id).failed,
        "the priming run must pass"
    );
    apply(&mut w, ops);
    let before = w.rt.metrics().memo();
    let (job, driver) = requery(&w.ds);
    let warm_id = w.rt.submit(job, driver);
    w.rt.run_until_idle();
    let result = w.rt.job_result(warm_id).clone();
    let events = w.rt.take_trace();
    let fp = fingerprint(&events, warm_id);
    (result, fp, delta(before, w.rt.metrics().memo()))
}

/// The replay matrix: arbitrary append/mutate schedules, warm re-runs at
/// 1, 4, and 8 threads, each compared byte-for-byte against a cold run on
/// the final dataset state — plus the exact reuse arithmetic.
#[test]
fn warm_reruns_replay_cold_runs_byte_for_byte() {
    let (mut reused, mut dirtied, mut appended) = (0u64, 0u64, 0u64);
    for seed in 0..8u64 {
        let ops = schedule(seed);
        let exp = expect(&ops);
        let (cold, cold_fp) = cold_run(1, &ops);
        assert!(!cold.failed, "cold run must pass (schedule {seed})");
        let mut first: Option<(JobResult, String, MemoMetrics)> = None;
        for threads in [1u32, 4, 8] {
            let (r, fp, d) = warm_run(threads, &ops);
            assert!(!r.failed, "warm run must pass (schedule {seed})");
            assert_eq!(
                r.output, cold.output,
                "warm output != cold output (schedule {seed}, {threads} threads)"
            );
            assert_eq!(
                r.response_time(),
                cold.response_time(),
                "warm response time != cold (schedule {seed}, {threads} threads)"
            );
            assert_eq!(
                fp, cold_fp,
                "normalized warm timeline != cold (schedule {seed}, {threads} threads)"
            );
            assert_eq!(
                d.splits_reused,
                (INITIAL_SPLITS - exp.dirty) as u64,
                "every untouched initial split must be reused (schedule {seed})"
            );
            assert_eq!(d.splits_dirty, exp.dirty as u64, "schedule {seed}");
            assert_eq!(
                d.splits_computed,
                (exp.appended + exp.dirty) as u64,
                "only new and dirty splits may recompute (schedule {seed})"
            );
            assert_eq!(
                d.splits_reused + d.splits_computed,
                exp.total as u64,
                "reused + recomputed must cover every split exactly (schedule {seed})"
            );
            if let Some((r0, fp0, d0)) = &first {
                assert_eq!(&r.output, &r0.output, "thread divergence ({seed})");
                assert_eq!(&fp, fp0, "thread divergence ({seed})");
                assert_eq!(&d, d0, "thread divergence ({seed})");
            } else {
                first = Some((r, fp, d));
            }
        }
        reused += (INITIAL_SPLITS - exp.dirty) as u64;
        dirtied += exp.dirty as u64;
        appended += exp.appended as u64;
    }
    assert!(
        reused > 0 && dirtied > 0 && appended > 0,
        "the schedule pool must exercise reuse ({reused}), dirtiness ({dirtied}), \
         and arrival ({appended}) or the matrix proves nothing"
    );
}

/// An unchanged dataset is the degenerate schedule: the warm re-run
/// reuses every split, computes none, and skips every input record.
#[test]
fn unchanged_dataset_reuses_every_split() {
    let (r, _, d) = warm_run(1, &[]);
    assert!(!r.failed);
    assert_eq!(d.splits_reused, INITIAL_SPLITS as u64);
    assert_eq!(d.splits_computed, 0);
    assert_eq!(d.splits_dirty, 0);
    assert_eq!(
        d.records_saved,
        INITIAL_SPLITS as u64 * RECORDS,
        "a full-reuse run must skip exactly the whole dataset's records"
    );
}

/// Mutation visibility: rewriting splits re-seeds their content, so the
/// warm output must *differ* from the pre-mutation output (stale cache
/// was provably not served) while still matching the cold run.
#[test]
fn stale_cache_is_never_served_after_mutation() {
    let ops = vec![Op::Mutate(vec![0, 5, 11])];
    let mut w = world(1);
    w.rt.enable_memoization();
    let (job, driver) = requery(&w.ds);
    let id0 = w.rt.submit(job, driver);
    w.rt.run_until_idle();
    let before = w.rt.job_result(id0).output.clone();
    apply(&mut w, &ops);
    let (job, driver) = requery(&w.ds);
    let id1 = w.rt.submit(job, driver);
    w.rt.run_until_idle();
    let warm = w.rt.job_result(id1).output.clone();
    let (cold, _) = cold_run(1, &ops);
    assert_eq!(warm, cold.output, "warm must equal cold on the new data");
    assert_ne!(
        warm, before,
        "mutated splits generate different rows — identical output would \
         mean stale memoized map output was served"
    );
    let m = w.rt.metrics().memo();
    assert_eq!(m.splits_dirty, 3, "exactly the three rewritten splits");
}

/// The memo key is (job signature, block): a job with a different
/// signature shares nothing, even over an identical dataset.
#[test]
fn a_different_signature_shares_no_cached_output() {
    let mut w = world(1);
    w.rt.enable_memoization();
    let (job, driver) = requery(&w.ds);
    let id0 = w.rt.submit(job, driver);
    w.rt.run_until_idle();
    let before = w.rt.metrics().memo();
    let (mut job, driver) = requery(&w.ds);
    job.conf.set(keys::JOB_SIGNATURE, 12_345u64);
    let id1 = w.rt.submit(job, driver);
    w.rt.run_until_idle();
    let d = delta(before, w.rt.metrics().memo());
    assert_eq!(d.splits_reused, 0, "foreign signature must never hit");
    assert_eq!(d.splits_computed, INITIAL_SPLITS as u64);
    assert_eq!(
        w.rt.job_result(id1).output,
        w.rt.job_result(id0).output,
        "same computation either way"
    );
}

/// Growth is traced and counted once per evolve step, and the memo store
/// holds exactly one entry per (signature, block).
#[test]
fn arrivals_are_traced_and_counted_once() {
    let mut w = world(1);
    w.rt.enable_memoization();
    let (job, driver) = requery(&w.ds);
    let id = w.rt.submit(job, driver);
    w.rt.run_until_idle();
    assert!(!w.rt.job_result(id).failed);
    apply(&mut w, &[Op::Append(2), Op::Append(3)]);
    let events = w.rt.take_trace();
    let arrivals: Vec<u32> = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::InputArrived { splits } => Some(splits),
            _ => None,
        })
        .collect();
    assert_eq!(arrivals, vec![2, 3], "one event per evolve step");
    assert_eq!(w.rt.metrics().memo().input_arrivals, 2);
    assert_eq!(
        w.rt.memo_store().expect("memoization enabled").len(),
        INITIAL_SPLITS as usize,
        "one entry per computed split, none for blocks no job has read"
    );
}

/// The standing-query protocol end to end: a continuous sampling job
/// whose pool drains below `k` parks (the runtime goes idle without
/// completing it), is woken by arriving data, folds the new blocks into
/// its pool, and completes with the full sample — identically at every
/// thread count.
#[test]
fn a_standing_query_parks_and_is_woken_by_arriving_data() {
    let outputs: Vec<(Vec<(Key, Record)>, String)> = [1u32, 4, 8]
        .iter()
        .map(|&threads| {
            let mut ns = Namespace::new(ClusterTopology::paper_cluster());
            let mut rng = DetRng::seed_from(7);
            let mut placement = EvenRoundRobin::new();
            let spec = DatasetSpec::small("s", 8, RECORDS, SkewLevel::Zero, 7);
            let ds = Arc::new(Dataset::build(&mut ns, spec, &mut placement, &mut rng));
            let mut rt = MrRuntime::new(
                ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
                CostModel::paper_default(),
                ns,
                Box::new(FifoScheduler::new()),
            );
            rt.enable_tracing();
            // One more match than the whole initial dataset holds: the
            // query *cannot* complete until data arrives.
            let k = ds.total_matching() + 1;
            let (mut job, _) = build_sampling_job(
                &ds,
                k,
                Policy::ma(),
                ScanMode::Planted,
                SampleMode::FirstK,
                23,
            );
            job.conf.set(keys::CONTINUOUS, true);
            let blocks: Vec<BlockId> = ds.splits().iter().map(|p| p.block).collect();
            let total = blocks.len() as u32;
            let driver = Box::new(DynamicDriver::new(
                Box::new(ContinuousSampling::new(blocks, k, 23)),
                Policy::ma(),
                total,
            ));
            let id = rt.submit(job, driver);
            rt.run_until_idle();
            assert!(
                !rt.is_complete(id),
                "pool exhausted below k: the standing query must park, not finish"
            );
            rt.evolve(|ns| ds.append(ns, 4, &mut placement, &mut rng));
            rt.run_until_idle();
            assert!(rt.is_complete(id), "arriving data must wake the query");
            let r = rt.job_result(id).clone();
            assert!(!r.failed);
            assert_eq!(r.output.len() as u64, k, "the full sample, eventually");
            let events = rt.take_trace();
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e.kind, TraceKind::InputArrived { splits: 4 })),
                "the wakeup must be traced"
            );
            (r.output.clone(), encode_trace(&events))
        })
        .collect();
    for (i, other) in outputs.iter().enumerate().skip(1) {
        assert_eq!(
            outputs[0],
            *other,
            "standing query diverged at {} threads",
            [1, 4, 8][i]
        );
    }
}
