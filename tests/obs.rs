//! Observability-plane invariants: lossless trace round-trips, histogram
//! algebra, and byte-identical output across data-plane thread counts.
//!
//! The round-trip suite leans on two build-time exhaustiveness guards:
//! `obs::kind_name`/`obs::encode_event` match every [`TraceKind`] without
//! a wildcard arm (encoder side), and [`kind_index`] below does the same
//! (generator side) — adding a variant without extending both the codec
//! and this suite's generator refuses to compile.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

use incmr::mapreduce::{encode_event, kind_name, parse_event, TaskId, TraceParseError};
use incmr::prelude::*;
use incmr::simkit::stats::LogHistogram;

use incmr::dfs::DiskId;

/// Keep in sync with [`kind_index`]'s exhaustive match (which is what
/// actually enforces the count at build time).
const NUM_KINDS: usize = 34;

/// Generator-side build guard: exhaustive, no wildcard. A new `TraceKind`
/// variant fails compilation here until [`kind_from`] can produce it.
fn kind_index(kind: &TraceKind) -> usize {
    match kind {
        TraceKind::JobSubmitted { .. } => 0,
        TraceKind::InputAdded { .. } => 1,
        TraceKind::EndOfInput { .. } => 2,
        TraceKind::MapStarted { .. } => 3,
        TraceKind::MapFinished { .. } => 4,
        TraceKind::MapFailed { .. } => 5,
        TraceKind::ShuffleReady { .. } => 6,
        TraceKind::ReduceStarted { .. } => 7,
        TraceKind::ReduceFinished { .. } => 8,
        TraceKind::JobCompleted { .. } => 9,
        TraceKind::ReduceFailed { .. } => 10,
        TraceKind::NodeLost { .. } => 11,
        TraceKind::NodeRejoined { .. } => 12,
        TraceKind::SpeculativeLaunch { .. } => 13,
        TraceKind::AttemptKilled { .. } => 14,
        TraceKind::NodeBlacklisted { .. } => 15,
        TraceKind::ProviderFault { .. } => 16,
        TraceKind::GrabLimitClamped { .. } => 17,
        TraceKind::DuplicateInputDropped { .. } => 18,
        TraceKind::JobWedged { .. } => 19,
        TraceKind::DeadlineExceeded { .. } => 20,
        TraceKind::PartialSample { .. } => 21,
        TraceKind::QueryAdmitted { .. } => 22,
        TraceKind::QueryRejected { .. } => 23,
        TraceKind::QuotaDeferred { .. } => 24,
        TraceKind::SplitReused { .. } => 25,
        TraceKind::SplitDirty { .. } => 26,
        TraceKind::InputArrived { .. } => 27,
        TraceKind::ReplicaLost { .. } => 28,
        TraceKind::ReplicaRestored { .. } => 29,
        TraceKind::ReadFailover { .. } => 30,
        TraceKind::InputLost { .. } => 31,
        TraceKind::ErrorBoundProbe { .. } => 32,
        TraceKind::BoundMet { .. } => 33,
    }
}

/// Build the `which`-th kind with payloads drawn from four arbitrary
/// words, covering every field's full width.
fn kind_from(which: usize, a: u64, b: u64, c: u64, d: u64) -> TraceKind {
    let job = JobId(a as u32);
    let task = TaskId(b as u32);
    let node = NodeId(c as u16);
    let flag = d.is_multiple_of(2);
    match which % NUM_KINDS {
        0 => TraceKind::JobSubmitted { job },
        1 => TraceKind::InputAdded {
            job,
            splits: b as u32,
        },
        2 => TraceKind::EndOfInput { job },
        3 => TraceKind::MapStarted {
            job,
            task,
            node,
            local: flag,
        },
        4 => TraceKind::MapFinished { job, task },
        5 => TraceKind::MapFailed {
            job,
            task,
            attempt: c as u32,
        },
        6 => TraceKind::ShuffleReady {
            job,
            partitions: b as u32,
            combiner_in: c,
            combiner_out: d,
            max_partition_bytes: a ^ b,
            min_partition_bytes: c ^ d,
        },
        7 => TraceKind::ReduceStarted {
            job,
            reduce: b as u32,
            node,
        },
        8 => TraceKind::ReduceFinished {
            job,
            reduce: b as u32,
        },
        9 => TraceKind::JobCompleted { job, failed: flag },
        10 => TraceKind::ReduceFailed {
            job,
            reduce: b as u32,
            attempt: c as u32,
        },
        11 => TraceKind::NodeLost { node },
        12 => TraceKind::NodeRejoined { node },
        13 => TraceKind::SpeculativeLaunch { job, task, node },
        14 => TraceKind::AttemptKilled { job, task, node },
        15 => TraceKind::NodeBlacklisted { job, node },
        16 => TraceKind::ProviderFault { job, fatal: flag },
        17 => TraceKind::GrabLimitClamped {
            job,
            requested: b as u32,
            granted: c as u32,
        },
        18 => TraceKind::DuplicateInputDropped {
            job,
            splits: b as u32,
        },
        19 => TraceKind::JobWedged {
            job,
            idle_evaluations: b as u32,
        },
        20 => TraceKind::DeadlineExceeded {
            job,
            graceful: flag,
        },
        21 => TraceKind::PartialSample {
            job,
            found: c,
            requested: d,
        },
        22 => TraceKind::QueryAdmitted {
            tenant: b as u32,
            job,
        },
        23 => TraceKind::QueryRejected {
            tenant: b as u32,
            queued: c as u32,
        },
        24 => TraceKind::QuotaDeferred {
            tenant: b as u32,
            depth: c as u32,
        },
        25 => TraceKind::SplitReused { job, task },
        26 => TraceKind::SplitDirty { job, task },
        27 => TraceKind::InputArrived { splits: b as u32 },
        28 => TraceKind::ReplicaLost {
            block: BlockId(b as u32),
            node,
        },
        29 => TraceKind::ReplicaRestored {
            block: BlockId(b as u32),
            node,
        },
        30 => TraceKind::ReadFailover {
            job,
            task,
            from: DiskId(c as u32),
            to: DiskId(d as u32),
        },
        31 => TraceKind::InputLost {
            job,
            blocks: b as u32,
            graceful: flag,
        },
        32 => TraceKind::ErrorBoundProbe {
            job,
            completed: b as u32,
            groups: c as u32,
            worst_ppm: d,
            bound_met: flag,
        },
        33 => TraceKind::BoundMet {
            job,
            completed: b as u32,
            total: c as u32,
        },
        _ => unreachable!(),
    }
}

#[test]
fn all_kinds_are_generated_distinct_and_round_trip() {
    let mut names = HashSet::new();
    for which in 0..NUM_KINDS {
        let kind = kind_from(which, 7, 11, 3, 2);
        assert_eq!(kind_index(&kind), which, "generator covers index {which}");
        assert!(
            names.insert(kind_name(&kind)),
            "duplicate wire name {}",
            kind_name(&kind)
        );
        let event = TraceEvent {
            time: SimTime::from_millis(1_000 * which as u64 + 1),
            kind,
        };
        let line = encode_event(&event);
        assert_eq!(parse_event(&line).unwrap(), event, "kind {which}: {line}");
    }
    assert_eq!(names.len(), NUM_KINDS);
}

#[test]
fn parse_rejects_garbage_and_unknown_kinds() {
    assert!(matches!(
        parse_event("not json at all"),
        Err(TraceParseError::Malformed(_))
    ));
    assert!(matches!(
        parse_event("{\"t\":3,\"kind\":\"NoSuchKind\",\"job\":1}"),
        Err(TraceParseError::UnknownKind(_))
    ));
    // A known kind with a missing payload field.
    assert!(parse_event("{\"t\":3,\"kind\":\"InputAdded\",\"job\":1}").is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// TraceEvent → JSONL line → TraceEvent is the identity for every
    /// kind and arbitrary payloads.
    #[test]
    fn any_event_round_trips(
        which in 0usize..NUM_KINDS,
        t in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        d in any::<u64>(),
    ) {
        let event = TraceEvent {
            time: SimTime::from_millis(t),
            kind: kind_from(which, a, b, c, d),
        };
        prop_assert_eq!(parse_event(&encode_event(&event)).unwrap(), event);
    }

    /// Whole traces survive encode → parse with ordering intact.
    #[test]
    fn whole_traces_round_trip(
        raws in prop::collection::vec(
            (0usize..NUM_KINDS, any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            0..64,
        ),
    ) {
        let events: Vec<TraceEvent> = raws
            .iter()
            .map(|&(w, t, a, b, c, d)| TraceEvent {
                time: SimTime::from_millis(t),
                kind: kind_from(w, a, b, c, d),
            })
            .collect();
        prop_assert_eq!(parse_trace(&encode_trace(&events)).unwrap(), events);
    }

    /// Merging histograms is exact (same multiset as recording everything
    /// into one) and commutative, bucket for bucket.
    #[test]
    fn histogram_merge_is_exact_and_commutative(
        xs in prop::collection::vec(any::<u64>(), 0..200),
        ys in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let fill = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            vals.iter().for_each(|&v| h.record(v));
            h
        };
        let (a, b) = (fill(&xs), fill(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge order must not matter");
        let all: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(&ab, &fill(&all), "merge must equal one-shot recording");
        prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
    }

    /// Quantiles never decrease in `p`, every quantile is bounded by the
    /// observed maximum, and p100 *is* the exact maximum.
    #[test]
    fn histogram_quantiles_are_monotone(xs in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut h = LogHistogram::new();
        xs.iter().for_each(|&v| h.record(v));
        let ps = [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];
        let qs: Vec<u64> = ps.iter().map(|&p| h.quantile(p).unwrap()).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        prop_assert!(qs.iter().all(|&q| q <= h.max()));
        prop_assert_eq!(h.quantile(100.0), Some(h.max()));
        prop_assert_eq!(h.p50(), h.quantile(50.0));
        // Merging an empty histogram is the identity.
        let before = h.clone();
        h.merge(&LogHistogram::new());
        prop_assert_eq!(h, before);
    }

    /// Registry merging commutes across all seven families, including the
    /// scheduler-keyed queue-wait map.
    #[test]
    fn registry_merge_is_commutative(
        xs in prop::collection::vec((0u8..7, any::<u64>(), any::<bool>()), 0..120),
        ys in prop::collection::vec((0u8..7, any::<u64>(), any::<bool>()), 0..120),
    ) {
        let fill = |entries: &[(u8, u64, bool)]| {
            let mut r = MetricsRegistry::new();
            for &(family, v, sched) in entries {
                match family {
                    0 => r.record_map_attempt(v),
                    1 => r.record_shuffle_merge(v),
                    2 => r.record_reduce(v),
                    3 => r.record_provider_eval_interval(v),
                    4 => r.record_queue_wait(if sched { "fifo" } else { "fair" }, v),
                    5 => r.record_agg_probe(v),
                    _ => r.record_split_wait(v),
                }
            }
            r
        };
        let (a, b) = (fill(&xs), fill(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.render(), ba.render(), "rendered snapshots agree too");
        let count = |r: &MetricsRegistry| -> u64 {
            r.families().iter().map(|(_, h)| h.count()).sum()
        };
        prop_assert_eq!(count(&ab), count(&a) + count(&b));
    }
}

// ---------------------------------------------------------------------------
// Integration: sinks and determinism on a real run
// ---------------------------------------------------------------------------

fn sampling_world(threads: u32) -> (MrRuntime, Arc<Dataset>) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(29);
    let spec = DatasetSpec::small("obs", 24, 20_000, SkewLevel::Moderate, 29);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    (rt, ds)
}

fn run_sampling(rt: &mut MrRuntime, ds: &Arc<Dataset>, sink: Option<&str>) -> JobId {
    let (mut job, driver) = incmr::core::build_sampling_job(
        ds,
        40,
        Policy::ma(),
        ScanMode::Planted,
        SampleMode::FirstK,
        5,
    );
    if let Some(s) = sink {
        job.conf.set(incmr::mapreduce::keys::TRACE_SINK, s);
    }
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed);
    id
}

/// The conf-selected JSONL sink streams exactly what the in-memory trace
/// records, and the text parses back into the identical event sequence.
#[test]
fn jsonl_sink_agrees_with_memory_trace() {
    let (mut rt, ds) = sampling_world(1);
    rt.enable_tracing(); // memory path
    run_sampling(&mut rt, &ds, Some("jsonl")); // installs JsonlSink via conf
    let events = rt.take_trace();
    assert!(!events.is_empty());
    let jsonl = rt
        .take_trace_sink()
        .expect("conf installed a sink")
        .drain_jsonl();
    assert_eq!(jsonl, encode_trace(&events));
    assert_eq!(parse_trace(&jsonl).unwrap(), events);
}

/// Every error-bound probe leaves exactly one trace event and one
/// `agg_probe_ms` observation — and the pair survives the JSONL codec.
#[test]
fn probe_trace_events_reconcile_with_the_metrics_registry() {
    use incmr::hiveql::{Session, Submitted};

    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(31);
    let mut spec = DatasetSpec::small("lineitem", 24, 1_000, SkewLevel::Moderate, 31);
    spec.selectivity = 0.05;
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    let mut s = Session::builder()
        .runtime(rt)
        .table("lineitem", ds)
        .scan_mode(ScanMode::Full)
        .try_build()
        .expect("session");
    s.runtime_mut().enable_tracing();
    let Submitted::Pending(handle) = s
        .submit(
            "SELECT SUM(L_QUANTITY) FROM lineitem GROUP BY L_RETURNFLAG \
             WITH ERROR 0.05 CONFIDENCE 0.95",
        )
        .expect("estimating plan")
    else {
        panic!("estimating plan must submit a job")
    };
    let result = handle.wait(&mut s);
    assert!(!result.failed);

    let events = s.runtime_mut().take_trace();
    let probes = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::ErrorBoundProbe { .. }))
        .count();
    let met = events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::BoundMet { .. }))
        .count();
    assert!(probes > 0, "an estimating run must probe at least once");
    assert_eq!(
        s.runtime().histograms().agg_probe().count(),
        probes as u64,
        "one agg_probe_ms observation per probe event"
    );
    assert!(met <= 1, "the bound is met at most once");
    // The new kinds also survive the JSONL codec on a real trace.
    assert_eq!(parse_trace(&encode_trace(&events)).unwrap(), events);
}

/// Traces, histogram quantiles, and the audit log are byte-identical at
/// 1, 4, and 8 data-plane threads.
#[test]
fn obs_output_is_byte_identical_across_thread_counts() {
    let outputs: Vec<(String, String, String)> = [1u32, 4, 8]
        .iter()
        .map(|&threads| {
            let (mut rt, ds) = sampling_world(threads);
            rt.enable_tracing();
            rt.enable_audit();
            run_sampling(&mut rt, &ds, None);
            let trace = encode_trace(&rt.take_trace());
            let hist = rt.histograms().render();
            let audit = incmr::mapreduce::render_audit(rt.audit_log());
            (trace, hist, audit)
        })
        .collect();
    assert!(!outputs[0].0.is_empty() && !outputs[0].2.is_empty());
    assert!(outputs[0].1.contains("map_attempt_ms"));
    for (i, other) in outputs.iter().enumerate().skip(1) {
        assert_eq!(
            outputs[0].0,
            other.0,
            "trace differs at {} threads",
            [1, 4, 8][i]
        );
        assert_eq!(
            outputs[0].1,
            other.1,
            "histograms differ at {} threads",
            [1, 4, 8][i]
        );
        assert_eq!(
            outputs[0].2,
            other.2,
            "audit differs at {} threads",
            [1, 4, 8][i]
        );
    }
}
