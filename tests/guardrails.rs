//! The guard-rail plane end-to-end: configuration validation, deadlines,
//! graceful partial-sample degradation, and their determinism across
//! data-plane thread counts and fault schedules.

use std::sync::Arc;

use incmr::mapreduce::{
    keys, ClusterFaultPlan, GuardrailMetrics, JobConfigError, NodeOutage, TraceEvent, TraceKind,
};
use incmr::prelude::*;

fn world(threads: u32, partitions: u32, records: u64) -> (MrRuntime, Arc<Dataset>) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(31);
    let spec = DatasetSpec::small("gr", partitions, records, SkewLevel::Zero, 31);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    (rt, ds)
}

// ---------------------------------------------------------------------------
// Configuration validation
// ---------------------------------------------------------------------------

#[test]
fn try_submit_rejects_bad_guardrail_configuration() {
    let (mut rt, ds) = world(1, 4, 500);
    // A zero deadline is a config error, not "no deadline".
    let (mut spec, driver) = build_sampling_job(
        &ds,
        5,
        Policy::ha(),
        ScanMode::Planted,
        SampleMode::FirstK,
        1,
    );
    spec.conf.set(keys::JOB_DEADLINE_MS, 0u64);
    assert!(matches!(
        rt.try_submit(spec, driver),
        Err(JobConfigError::ZeroDeadline)
    ));

    // A non-numeric retry budget is rejected with the offending key/value.
    let (mut spec, driver) = build_sampling_job(
        &ds,
        5,
        Policy::ha(),
        ScanMode::Planted,
        SampleMode::FirstK,
        1,
    );
    spec.conf.set(keys::PROVIDER_RETRY_BUDGET, "lots");
    match rt.try_submit(spec, driver) {
        Err(JobConfigError::BadConf(e)) => {
            assert_eq!(e.key, keys::PROVIDER_RETRY_BUDGET);
            assert_eq!(e.value, "lots");
        }
        other => panic!("expected BadConf, got {other:?}"),
    }

    // Rejection leaves the runtime reusable: a valid job still runs.
    let (spec, driver) = build_sampling_job(
        &ds,
        5,
        Policy::ha(),
        ScanMode::Planted,
        SampleMode::FirstK,
        1,
    );
    let id = rt.try_submit(spec, driver).expect("valid spec submits");
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

/// Fault-free response time of the full sampling job, for sizing deadlines.
fn horizon_ms(partitions: u32, records: u64, k: u64) -> u64 {
    let (mut rt, ds) = world(1, partitions, records);
    let (spec, driver) = build_sampling_job(
        &ds,
        k,
        Policy::la(),
        ScanMode::Planted,
        SampleMode::FirstK,
        8,
    );
    let id = rt.submit(spec, driver);
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed);
    rt.job_result(id).response_time().as_millis()
}

type Observation = (JobResult, Vec<TraceEvent>, GuardrailMetrics);

/// One deadline-bearing sampling run. `k` is set to the dataset's total
/// match count so the job genuinely needs every split — a mid-run deadline
/// always cuts it short.
fn deadline_run(
    threads: u32,
    deadline_ms: u64,
    allow_partial: bool,
    plan: Option<&ClusterFaultPlan>,
) -> Observation {
    let (mut rt, ds) = world(threads, 40, 10_000);
    rt.enable_tracing();
    if let Some(plan) = plan {
        rt.inject_cluster_faults(plan.clone()).expect("valid plan");
    }
    let k = ds.total_matching();
    let (mut spec, driver) = build_sampling_job(
        &ds,
        k,
        Policy::la(),
        ScanMode::Planted,
        SampleMode::FirstK,
        8,
    );
    spec.conf.set(keys::JOB_DEADLINE_MS, deadline_ms);
    spec.conf.set(keys::ALLOW_PARTIAL, allow_partial);
    let id = rt.submit(spec, driver);
    rt.run_until_idle();
    (
        rt.job_result(id).clone(),
        rt.take_trace(),
        rt.metrics().guardrails(),
    )
}

#[test]
fn hard_deadline_fails_the_job_with_a_typed_error() {
    let deadline = horizon_ms(40, 10_000, 200) / 2;
    let (r, trace, g) = deadline_run(1, deadline, false, None);
    assert!(r.failed);
    assert_eq!(r.error, Some(JobError::DeadlineExceeded));
    assert_eq!(g.deadlines_exceeded, 1);
    assert!(trace.iter().any(|e| matches!(
        e.kind,
        TraceKind::DeadlineExceeded {
            graceful: false,
            ..
        }
    )));
}

#[test]
fn graceful_deadline_completes_with_a_partial_sample() {
    let full = horizon_ms(40, 10_000, 200);
    let (r, trace, g) = deadline_run(1, full / 2, true, None);
    assert!(
        !r.failed,
        "allow_partial turns the deadline into completion"
    );
    assert_eq!(r.error, None);
    assert!(
        !r.output.is_empty() && (r.output.len() as u64) < 200,
        "a mid-run cut yields a nonempty partial sample: {}",
        r.output.len()
    );
    assert!(r.splits_processed < 40, "input intake was cut short");
    assert_eq!(g.deadlines_exceeded, 1);
    assert_eq!(g.partial_samples, 1);
    assert!(trace
        .iter()
        .any(|e| matches!(e.kind, TraceKind::DeadlineExceeded { graceful: true, .. })));
    let found = r.output.len() as u64;
    assert!(trace.iter().any(|e| matches!(
        e.kind,
        TraceKind::PartialSample { found: f, requested: 200, .. } if f == found
    )));
}

#[test]
fn partial_sample_is_byte_identical_across_thread_counts() {
    let deadline = horizon_ms(40, 10_000, 200) / 2;
    let (r1, t1, g1) = deadline_run(1, deadline, true, None);
    for threads in [4, 8] {
        let (r, t, g) = deadline_run(threads, deadline, true, None);
        assert_eq!(
            r.output, r1.output,
            "partial rows diverged at {threads} threads"
        );
        assert_eq!(
            r.response_time(),
            r1.response_time(),
            "simulated time diverged at {threads} threads"
        );
        assert_eq!(t, t1, "trace diverged at {threads} threads");
        assert_eq!(g, g1, "guard-rail counters diverged at {threads} threads");
    }
}

#[test]
fn partial_sample_is_thread_invariant_under_fault_schedules_too() {
    let full = horizon_ms(40, 10_000, 200);
    for seed in [2u64, 9] {
        let plan = ClusterFaultPlan {
            outages: vec![NodeOutage {
                node: NodeId((seed % 10) as u16),
                down_at: SimTime::from_millis(full / 8),
                up_at: (seed % 2 == 0).then(|| SimTime::from_millis(full / 2)),
            }],
            map_fault_probability: 0.05,
            max_attempts: 4,
            seed,
            ..ClusterFaultPlan::default()
        };
        let (r1, t1, g1) = deadline_run(1, full / 2, true, Some(&plan));
        assert!(!r1.failed, "graceful deadline survives schedule {seed}");
        for threads in [4, 8] {
            let (r, t, g) = deadline_run(threads, full / 2, true, Some(&plan));
            assert_eq!(
                r.output, r1.output,
                "partial rows diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(
                t, t1,
                "trace diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(g, g1, "counters diverged (schedule {seed})");
        }
    }
}

// ---------------------------------------------------------------------------
// SampleOutcome classification
// ---------------------------------------------------------------------------

#[test]
fn sample_outcome_classifies_full_partial_failed_and_non_sampling() {
    // Full: k is comfortably available.
    let (mut rt, ds) = world(1, 40, 10_000);
    let (spec, driver) = build_sampling_job(
        &ds,
        60,
        Policy::la(),
        ScanMode::Planted,
        SampleMode::FirstK,
        7,
    );
    let conf = spec.conf.clone();
    let id = rt.submit(spec, driver);
    rt.run_until_idle();
    assert_eq!(
        sample_outcome(&conf, rt.job_result(id)),
        Some(SampleOutcome::Full { requested: 60 })
    );

    // Partial by input exhaustion: only 10 matches exist, k = 500 — the
    // job *completes* (this is not an error) with a small sample, and the
    // runtime still counts and traces it.
    let (mut rt, ds) = world(1, 10, 2_000);
    rt.enable_tracing();
    assert_eq!(ds.total_matching(), 10);
    let (spec, driver) = build_sampling_job(
        &ds,
        500,
        Policy::ha(),
        ScanMode::Planted,
        SampleMode::FirstK,
        3,
    );
    let conf = spec.conf.clone();
    let id = rt.submit(spec, driver);
    rt.run_until_idle();
    let r = rt.job_result(id);
    assert!(!r.failed);
    assert_eq!(
        sample_outcome(&conf, r),
        Some(SampleOutcome::Partial {
            found: 10,
            requested: 500
        })
    );
    assert_eq!(rt.metrics().guardrails().partial_samples, 1);
    assert!(rt.take_trace().iter().any(|e| matches!(
        e.kind,
        TraceKind::PartialSample {
            found: 10,
            requested: 500,
            ..
        }
    )));

    // Failed jobs classify as None regardless of k.
    let (mut rt, ds) = world(1, 4, 500);
    let (mut spec, driver) = build_sampling_job(
        &ds,
        5,
        Policy::ha(),
        ScanMode::Planted,
        SampleMode::FirstK,
        1,
    );
    spec.conf.set(keys::JOB_DEADLINE_MS, 1u64); // expires before anything runs
    let conf = spec.conf.clone();
    let id = rt.submit(spec, driver);
    rt.run_until_idle();
    assert!(rt.job_result(id).failed);
    assert_eq!(sample_outcome(&conf, rt.job_result(id)), None);

    // Non-sampling jobs (no SAMPLING_K) classify as None.
    let (mut rt, ds) = world(1, 8, 1_000);
    let (spec, driver) = build_scan_job(&ds, ScanMode::Planted);
    let conf = spec.conf.clone();
    let id = rt.submit(spec, driver);
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed);
    assert_eq!(sample_outcome(&conf, rt.job_result(id)), None);
}
