//! Golden-trace regression for the error-bounded aggregation plane:
//! one fixed-seed grow–probe–stop timeline, committed to the repository.
//!
//! The scenario runs two estimating jobs on one traced runtime:
//!
//! * a **bulk** `SUM/COUNT … GROUP BY` whose uniform per-split totals let
//!   the CLT bound resolve early — the trace ends in a `bound met` event
//!   and the job classifies `BoundMet`;
//! * a **budget-starved** run (`SET mapred.agg.rounds = 1`) over a
//!   Zipf-placed predicate whose split-total variance cannot resolve in
//!   one growth round — the probes never report `(met)` and the job
//!   classifies `BudgetExhausted` (there is deliberately no trace event
//!   for exhaustion: the classification lives in the job's report).
//!
//! Any change to the growth schedule, the probe cadence, or the
//! estimator's stopping rule shows up here as a readable diff. After an
//! *intentional* behaviour change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_agg
//! ```
//!
//! and review the diff like any other code change.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use incmr::hiveql::{Session, Submitted};
use incmr::mapreduce::{AggOutcome, AggReport};
use incmr::prelude::*;
use incmr_data::queries::PaperPredicate;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/agg_trace.txt")
}

fn session_over(skew: SkewLevel, seed: u64) -> Session {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(seed);
    let mut spec = DatasetSpec::small("lineitem", 24, 1_000, skew, seed);
    // Well-populated groups: far above the paper's 0.05% selectivity.
    spec.selectivity = 0.05;
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    Session::builder()
        .runtime(rt)
        .table("lineitem", ds)
        .scan_mode(ScanMode::Full)
        .try_build()
        .expect("golden session")
}

fn submit_and_wait(s: &mut Session, sql: &str) -> AggReport {
    let Submitted::Pending(handle) = s.submit(sql).expect("estimating plan") else {
        panic!("estimating plan must submit a job: {sql}")
    };
    let result = handle.wait(s);
    assert!(!result.failed, "golden run failed: {sql}");
    result.agg.expect("estimating plans attach a report")
}

/// One traced session, two estimating jobs: a bound-met finish and a
/// budget-exhausted one.
fn render_run() -> String {
    let mut s = session_over(SkewLevel::High, 41);
    s.runtime_mut().enable_tracing();

    // Job 0: bulk group totals are near-uniform across splits — the
    // stopping rule fires well before the full scan.
    let met = submit_and_wait(
        &mut s,
        "SELECT SUM(L_QUANTITY), COUNT(*) FROM lineitem GROUP BY L_RETURNFLAG \
         WITH ERROR 0.05 CONFIDENCE 0.95",
    );
    assert!(
        matches!(met.outcome, AggOutcome::BoundMet),
        "the golden bulk run must classify BoundMet: {met:?}"
    );
    assert!(
        met.completed < met.total,
        "the golden bulk run must stop early: {met:?}"
    );

    // Job 1: one growth round against Zipf-placed matches cannot resolve
    // a 5% bound — the budget runs dry first.
    s.execute("SET mapred.agg.rounds = 1").expect("SET rounds");
    let starved = submit_and_wait(
        &mut s,
        &format!(
            "SELECT SUM(L_QUANTITY) FROM lineitem WHERE {} GROUP BY L_RETURNFLAG \
             WITH ERROR 0.05 CONFIDENCE 0.95",
            PaperPredicate::for_skew(SkewLevel::High).sql
        ),
    );
    assert!(
        matches!(starved.outcome, AggOutcome::BudgetExhausted),
        "the golden starved run must classify BudgetExhausted: {starved:?}"
    );

    let mut out = String::new();
    for event in s.runtime_mut().take_trace() {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn agg_trace_matches_golden_file() {
    let got = render_run();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &got).expect("write agg golden trace");
        return;
    }
    let want = fs::read_to_string(&path)
        .expect("tests/golden/agg_trace.txt missing — generate it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "error-bound trace diverged from tests/golden/agg_trace.txt; \
         if the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// The golden scenario must keep exercising the whole grow–probe–stop
/// cycle: if a future change quietly stops probing (or stops meeting the
/// bound), the trace would still "match" while guarding nothing.
#[test]
fn golden_schedule_exercises_every_agg_event_kind() {
    let got = render_run();
    for needle in ["error-bound probe:", "ppm (met)", "bound met at"] {
        assert!(
            got.contains(needle),
            "golden agg schedule no longer produces a \"{needle}\" event"
        );
    }
    // The starved job probes without ever meeting the bound: at least one
    // probe line must report an unmet bound (no "(met)" suffix).
    assert!(
        got.lines()
            .any(|l| l.contains("error-bound probe:") && !l.ends_with("(met)")),
        "golden agg schedule no longer produces an unmet probe"
    );
}
