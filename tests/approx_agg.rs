//! Statistical-correctness suite for error-bounded approximate
//! aggregation (EARL-style early results).
//!
//! 1. **Coverage** — across ≥30 seeded datasets, the scaled estimate of
//!    every (group, aggregate) lands within the requested relative error
//!    for at least the requested confidence fraction of runs.
//! 2. **Determinism** — an estimating run is byte-identical at 1, 4, and
//!    8 data-plane threads, and under a PR-3 fault schedule.
//! 3. **Incrementality** — a warm re-run of a bound-met job replays map
//!    output from the memo store and stays byte-identical to the cold
//!    run.

use std::sync::Arc;

use incmr::hiveql::{QueryOutput, Session, Submitted};
use incmr::mapreduce::{AggOutcome, AggReport, FaultPlan, Parallelism};
use incmr::prelude::*;
use incmr_data::Value;

const ERROR: f64 = 0.05;
const CONFIDENCE: f64 = 0.95;

/// Build a session over a fresh world. `threads` sets data-plane
/// parallelism; `memo` arms the memoization plane.
fn session_over(
    skew: SkewLevel,
    seed: u64,
    threads: u32,
    memo: bool,
    faults: Option<FaultPlan>,
) -> Session {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(seed);
    let mut spec = DatasetSpec::small("lineitem", 32, 1_000, skew, seed);
    // Well-populated groups: far above the paper's 0.05% selectivity.
    spec.selectivity = 0.05;
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    if memo {
        rt.enable_memoization();
    }
    if let Some(plan) = faults {
        rt.inject_faults(plan).expect("valid fault plan");
    }
    Session::builder()
        .runtime(rt)
        .table("lineitem", ds)
        .scan_mode(ScanMode::Full)
        .try_build()
        .expect("session")
}

const TRUTH_SQL: &str =
    "SELECT SUM(L_QUANTITY), COUNT(*), AVG(L_EXTENDEDPRICE) FROM lineitem GROUP BY L_RETURNFLAG";

fn estimate_sql() -> String {
    format!("{TRUTH_SQL} WITH ERROR {ERROR} CONFIDENCE {CONFIDENCE}")
}

/// Group key → (sum, count, avg) from a grouped three-aggregate result.
fn by_group(rows: &[incmr_data::Record]) -> Vec<(String, f64, f64, f64)> {
    rows.iter()
        .map(|row| {
            let Value::Str(g) = row.get(0) else {
                panic!("grouped rows lead with the group value: {row:?}")
            };
            let Value::Float(sum) = row.get(1) else {
                panic!("SUM is a float: {row:?}")
            };
            let Value::Int(n) = row.get(2) else {
                panic!("COUNT is an integer: {row:?}")
            };
            let Value::Float(avg) = row.get(3) else {
                panic!("AVG is a float: {row:?}")
            };
            (g.clone(), *sum, *n as f64, *avg)
        })
        .collect()
}

/// Run truth + estimate on one seeded world; returns per-(group, agg)
/// relative errors and the estimator's report.
fn one_run(seed: u64) -> (Vec<f64>, AggReport, u32, u32) {
    let skew = SkewLevel::all()[(seed % 3) as usize];
    let mut s = session_over(skew, seed, 1, false, None);
    let QueryOutput::Rows { rows: truth, .. } = s.execute(TRUTH_SQL).expect("exact plan") else {
        panic!("exact plan must return rows")
    };
    let Submitted::Pending(handle) = s.submit(&estimate_sql()).expect("estimating plan") else {
        panic!("estimating plan must submit")
    };
    let result = handle.wait(&mut s);
    assert!(!result.failed, "seed {seed}: estimating job failed");
    let report = result.agg.expect("estimating plans attach a report");

    let t = by_group(&truth);
    let e = by_group(&result.rows);
    assert_eq!(
        t.iter().map(|(g, ..)| g).collect::<Vec<_>>(),
        e.iter().map(|(g, ..)| g).collect::<Vec<_>>(),
        "seed {seed}: estimate must cover the same groups in the same order"
    );
    let mut errs = Vec::new();
    for ((_, ts, tn, ta), (_, es, en, ea)) in t.iter().zip(e.iter()) {
        for (truth_v, est_v) in [(ts, es), (tn, en), (ta, ea)] {
            assert!(*truth_v != 0.0, "seed {seed}: degenerate ground truth");
            errs.push((est_v - truth_v).abs() / truth_v.abs());
        }
    }
    (errs, report, result.splits_processed, 32)
}

#[test]
fn coverage_holds_across_thirty_seeded_datasets() {
    let mut within = 0u32;
    let mut total = 0u32;
    let mut early_stops = 0u32;
    let mut runs = 0u32;
    for seed in 0..30u64 {
        let (errs, report, splits, total_splits) = one_run(seed);
        // Only bound-met finishes promise the bound; exact finishes are
        // trivially covered. Neither class may be silently absent.
        match report.outcome {
            AggOutcome::BoundMet | AggOutcome::Exact => {}
            AggOutcome::BudgetExhausted => panic!(
                "seed {seed}: uniform group totals must resolve within the \
                 default round budget, got {report:?}"
            ),
        }
        if splits < total_splits {
            early_stops += 1;
        }
        for err in errs {
            total += 1;
            if err <= ERROR {
                within += 1;
            }
        }
        runs += 1;
    }
    let coverage = within as f64 / total as f64;
    assert!(
        coverage >= CONFIDENCE,
        "{within}/{total} (group, aggregate) estimates within e={ERROR}: \
         coverage {coverage:.3} < c={CONFIDENCE}"
    );
    assert!(
        early_stops * 2 > runs,
        "early stopping must be the norm on uniform group totals: \
         only {early_stops}/{runs} runs stopped before the full scan"
    );
}

/// Everything observable about one estimating run, rendered to bytes.
fn run_fingerprint(threads: u32, faults: Option<FaultPlan>) -> (String, AggReport, u32) {
    let mut s = session_over(SkewLevel::Moderate, 77, threads, false, faults);
    let Submitted::Pending(handle) = s.submit(&estimate_sql()).expect("plan") else {
        panic!()
    };
    let result = handle.wait(&mut s);
    assert!(!result.failed);
    (
        format!("{:?}", result.rows),
        result.agg.expect("report"),
        result.splits_processed,
    )
}

#[test]
fn estimating_runs_are_byte_identical_across_data_plane_threads() {
    let baseline = run_fingerprint(1, None);
    for threads in [4, 8] {
        let run = run_fingerprint(threads, None);
        assert_eq!(
            baseline, run,
            "estimating run diverged at {threads} data-plane threads"
        );
    }
}

#[test]
fn fault_schedules_do_not_change_estimating_output() {
    let clean = run_fingerprint(1, None);
    for fault_seed in [11, 12, 13] {
        let faulted = run_fingerprint(
            4,
            Some(FaultPlan {
                probability: 0.3,
                max_attempts: 10,
                seed: fault_seed,
            }),
        );
        assert_eq!(
            clean, faulted,
            "fault schedule {fault_seed} leaked into the estimate"
        );
    }
}

#[test]
fn warm_rerun_of_a_bound_met_job_is_byte_identical_to_cold() {
    let mut s = session_over(SkewLevel::Moderate, 55, 1, true, None);
    let run = |s: &mut Session| {
        // Pin the session's per-query seed so both submissions draw the
        // same split sequence — the memo identity requires it.
        s.state_mut().set_seed(9);
        let Submitted::Pending(handle) = s.submit(&estimate_sql()).expect("plan") else {
            panic!()
        };
        let result = handle.wait(s);
        assert!(!result.failed);
        let report = result.agg.expect("report");
        assert!(
            matches!(report.outcome, AggOutcome::BoundMet),
            "this configuration meets its bound early: {report:?}"
        );
        (
            format!("{:?}", result.rows),
            report,
            result.splits_processed,
        )
    };
    let cold = run(&mut s);
    let reused_before = s.runtime().metrics().memo().splits_reused;
    let warm = run(&mut s);
    let reused = s.runtime().metrics().memo().splits_reused - reused_before;
    assert_eq!(cold, warm, "warm re-run diverged from the cold run");
    assert_eq!(
        reused,
        u64::from(cold.2),
        "every split of the warm run must replay from the memo store"
    );
}
