//! Golden-trace regression: one fixed seed and one fixed fault schedule
//! produce one exact event timeline, committed to the repository.
//!
//! Any change to scheduling, the cost model, the fault plane, or event
//! ordering shows up here as a readable diff instead of a silent drift.
//! After an *intentional* behaviour change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and review the diff like any other code change.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use incmr::mapreduce::{ClusterFaultPlan, NodeOutage, SpeculationConfig};
use incmr::prelude::*;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fault_trace.txt")
}

/// A schedule chosen to exercise every event kind the fault plane emits:
/// a mid-run outage with rejoin, a straggler slow enough to speculate,
/// map faults frequent enough to blacklist a node, and reduce faults.
fn eventful_plan() -> ClusterFaultPlan {
    ClusterFaultPlan {
        outages: vec![NodeOutage {
            node: NodeId(5),
            down_at: SimTime::from_secs(10),
            up_at: Some(SimTime::from_secs(25)),
        }],
        node_speed: vec![1.0, 1.0, 0.3],
        map_fault_probability: 0.18,
        reduce_fault_probability: 0.7,
        max_attempts: 8,
        speculation: Some(SpeculationConfig::default()),
        blacklist_threshold: Some(2),
        seed: 9,
    }
}

fn render_run() -> String {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(17);
    // CPU-bound maps (~5 s of CPU per split) so the 0.3-speed node lags
    // far enough past the slowdown threshold to draw speculation.
    let spec = DatasetSpec::small("t", 48, 200_000, SkewLevel::Moderate, 17);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_tracing();
    rt.inject_cluster_faults(eventful_plan())
        .expect("valid plan");
    let (job, driver) = build_scan_job(&ds, ScanMode::Planted);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed, "the golden run must complete");
    let mut out = String::new();
    for event in rt.take_trace() {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn fault_trace_matches_golden_file() {
    let got = render_run();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &got).expect("write golden trace");
        return;
    }
    let want = fs::read_to_string(&path)
        .expect("tests/golden/fault_trace.txt missing — generate it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "fault-plane trace diverged from tests/golden/fault_trace.txt; \
         if the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// The golden schedule must keep exercising the whole fault plane: if a
/// future change makes it quietly stop (no deaths, no speculation, no
/// blacklisting), the trace would still "match" while guarding nothing.
#[test]
fn golden_schedule_exercises_every_event_kind() {
    let got = render_run();
    for needle in [
        "LOST",
        "rejoined",
        "FAILED (attempt",
        "speculative ->",
        "killed on",
        "blacklists",
    ] {
        assert!(
            got.contains(needle),
            "golden schedule no longer produces a \"{needle}\" event"
        );
    }
    assert!(
        got.lines()
            .any(|l| l.contains("/r") && l.contains("FAILED (attempt")),
        "golden schedule no longer produces a failed reduce attempt"
    );
}

// ---------------------------------------------------------------------------
// Guard-rail plane golden trace
// ---------------------------------------------------------------------------

use incmr::mapreduce::keys;

fn guardrail_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/guardrail_trace.txt")
}

/// Ignores its grab limit and repeats splits across batches.
struct OverGrabDup {
    blocks: Vec<BlockId>,
    calls: u32,
}

impl InputProvider for OverGrabDup {
    fn initial_input(&mut self, _c: &ClusterStatus, _grab: u64) -> Vec<BlockId> {
        self.blocks.clone() // the whole candidate set, limit be damned
    }

    fn next_input(&mut self, _ctx: EvalContext<'_>) -> InputResponse {
        self.calls += 1;
        match self.calls {
            1 => InputResponse::InputAvailable(self.blocks[2..8].to_vec()),
            _ => InputResponse::EndOfInput,
        }
    }

    fn remaining(&self) -> usize {
        self.blocks.len()
    }
}

/// Answers `NoInputAvailable` forever.
struct Stonewall;

impl InputProvider for Stonewall {
    fn initial_input(&mut self, _c: &ClusterStatus, _grab: u64) -> Vec<BlockId> {
        Vec::new()
    }

    fn next_input(&mut self, _ctx: EvalContext<'_>) -> InputResponse {
        InputResponse::NoInputAvailable
    }

    fn remaining(&self) -> usize {
        1
    }
}

/// Panics on one specific call (0 = `initial_input`), then behaves.
struct PanicOn {
    blocks: Vec<BlockId>,
    calls: u32,
    panic_on: u32,
}

impl InputProvider for PanicOn {
    fn initial_input(&mut self, _c: &ClusterStatus, grab: u64) -> Vec<BlockId> {
        let call = self.calls;
        self.calls += 1;
        if call == self.panic_on {
            panic!("golden provider panic (call {call})");
        }
        let n = (grab as usize).min(self.blocks.len());
        self.blocks.drain(..n).collect()
    }

    fn next_input(&mut self, ctx: EvalContext<'_>) -> InputResponse {
        let call = self.calls;
        self.calls += 1;
        if call == self.panic_on {
            panic!("golden provider panic (call {call})");
        }
        if self.blocks.is_empty() {
            return InputResponse::EndOfInput;
        }
        let n = (ctx.grab_limit as usize).min(self.blocks.len());
        InputResponse::InputAvailable(self.blocks.drain(..n).collect())
    }

    fn remaining(&self) -> usize {
        self.blocks.len()
    }
}

/// One deterministic runtime, six jobs, every guard-rail event kind:
/// grab-limit clamping, duplicate dropping, the wedge watchdog, retried
/// and fatal provider faults, and graceful/fatal deadlines with a
/// partial sample.
fn render_guardrail_run() -> String {
    let make_world = || {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(23);
        let spec = DatasetSpec::small("g", 20, 5_000, SkewLevel::Zero, 23);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            spec,
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        (rt, ds)
    };
    let k = 50; // == total matches: the full job needs every split
    let sampling_spec = |ds: &Arc<Dataset>| {
        build_sampling_job(
            ds,
            k,
            Policy::conservative(),
            ScanMode::Planted,
            SampleMode::FirstK,
            23,
        )
    };
    // Fault-free horizon of the full sampling job, to size the deadlines.
    let horizon = {
        let (mut rt, ds) = make_world();
        let (job, driver) = sampling_spec(&ds);
        let id = rt.submit(job, driver);
        rt.run_until_idle();
        assert!(!rt.job_result(id).failed);
        rt.job_result(id).response_time().as_millis()
    };

    let (mut rt, ds) = make_world();
    rt.enable_tracing();
    let blocks: Vec<_> = ds.splits().iter().map(|p| p.block).collect();
    let dyn_driver = |provider: Box<dyn InputProvider>| {
        Box::new(DynamicDriver::new(provider, Policy::conservative(), 20))
    };

    // Job 0: over-grabs and repeats splits — clamped and deduplicated.
    let (job, _) = sampling_spec(&ds);
    let id = rt.submit(
        job,
        dyn_driver(Box::new(OverGrabDup {
            blocks: blocks.clone(),
            calls: 0,
        })),
    );
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed);

    // Job 1: stonewalls until the wedge watchdog fires.
    let (mut job, _) = sampling_spec(&ds);
    job.conf.set(keys::MAX_IDLE_EVALUATIONS, 3u32);
    let id = rt.submit(job, dyn_driver(Box::new(Stonewall)));
    rt.run_until_idle();
    assert!(rt.job_result(id).failed);

    // Job 2: panics at submission with no retry budget — fatal.
    let (job, _) = sampling_spec(&ds);
    let id = rt.submit(
        job,
        dyn_driver(Box::new(PanicOn {
            blocks: blocks.clone(),
            calls: 0,
            panic_on: 0,
        })),
    );
    rt.run_until_idle();
    assert!(rt.job_result(id).failed);

    // Job 3: panics once mid-flight, inside a retry budget — recovers.
    let (mut job, _) = sampling_spec(&ds);
    job.conf.set(keys::PROVIDER_RETRY_BUDGET, 1u32);
    let id = rt.submit(
        job,
        dyn_driver(Box::new(PanicOn {
            blocks: blocks.clone(),
            calls: 0,
            panic_on: 1,
        })),
    );
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed);

    // Job 4: graceful deadline at half the fault-free horizon — completes
    // with a partial sample.
    let (mut job, driver) = sampling_spec(&ds);
    job.conf.set(keys::JOB_DEADLINE_MS, horizon / 2);
    job.conf.set(keys::ALLOW_PARTIAL, true);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let r = rt.job_result(id);
    assert!(!r.failed && (r.output.len() as u64) < k);

    // Job 5: the same deadline without allow_partial — fatal.
    let (mut job, driver) = sampling_spec(&ds);
    job.conf.set(keys::JOB_DEADLINE_MS, horizon / 2);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    assert!(rt.job_result(id).failed);

    let mut out = String::new();
    for event in rt.take_trace() {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn guardrail_trace_matches_golden_file() {
    let got = render_guardrail_run();
    let path = guardrail_golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &got).expect("write guardrail golden trace");
        return;
    }
    let want = fs::read_to_string(&path)
        .expect("tests/golden/guardrail_trace.txt missing — generate it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "guard-rail trace diverged from tests/golden/guardrail_trace.txt; \
         if the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// Coverage guard for the guard-rail plane: the golden scenario must keep
/// producing every one of its event kinds.
#[test]
fn guardrail_schedule_exercises_every_guardrail_event_kind() {
    let got = render_guardrail_run();
    for needle in [
        "grab clamped",
        "duplicate splits",
        "WEDGED",
        "provider fault (FATAL)",
        "provider fault (retrying)",
        "deadline exceeded (partial)",
        "deadline exceeded (FATAL)",
        "partial sample",
    ] {
        assert!(
            got.contains(needle),
            "guardrail golden scenario no longer produces a \"{needle}\" event"
        );
    }
}
