//! Golden-trace regression: one fixed seed and one fixed fault schedule
//! produce one exact event timeline, committed to the repository.
//!
//! Any change to scheduling, the cost model, the fault plane, or event
//! ordering shows up here as a readable diff instead of a silent drift.
//! After an *intentional* behaviour change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and review the diff like any other code change.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use incmr::mapreduce::{ClusterFaultPlan, NodeOutage, SpeculationConfig};
use incmr::prelude::*;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fault_trace.txt")
}

/// A schedule chosen to exercise every event kind the fault plane emits:
/// a mid-run outage with rejoin, a straggler slow enough to speculate,
/// map faults frequent enough to blacklist a node, and reduce faults.
fn eventful_plan() -> ClusterFaultPlan {
    ClusterFaultPlan {
        outages: vec![NodeOutage {
            node: NodeId(5),
            down_at: SimTime::from_secs(10),
            up_at: Some(SimTime::from_secs(25)),
        }],
        node_speed: vec![1.0, 1.0, 0.3],
        map_fault_probability: 0.18,
        reduce_fault_probability: 0.7,
        max_attempts: 8,
        speculation: Some(SpeculationConfig::default()),
        blacklist_threshold: Some(2),
        seed: 9,
    }
}

fn render_run() -> String {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(17);
    // CPU-bound maps (~5 s of CPU per split) so the 0.3-speed node lags
    // far enough past the slowdown threshold to draw speculation.
    let spec = DatasetSpec::small("t", 48, 200_000, SkewLevel::Moderate, 17);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_tracing();
    rt.inject_cluster_faults(eventful_plan())
        .expect("valid plan");
    let (job, driver) = build_scan_job(&ds, ScanMode::Planted);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed, "the golden run must complete");
    let mut out = String::new();
    for event in rt.take_trace() {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn fault_trace_matches_golden_file() {
    let got = render_run();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &got).expect("write golden trace");
        return;
    }
    let want = fs::read_to_string(&path)
        .expect("tests/golden/fault_trace.txt missing — generate it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "fault-plane trace diverged from tests/golden/fault_trace.txt; \
         if the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// The golden schedule must keep exercising the whole fault plane: if a
/// future change makes it quietly stop (no deaths, no speculation, no
/// blacklisting), the trace would still "match" while guarding nothing.
#[test]
fn golden_schedule_exercises_every_event_kind() {
    let got = render_run();
    for needle in [
        "LOST",
        "rejoined",
        "FAILED (attempt",
        "speculative ->",
        "killed on",
        "blacklists",
    ] {
        assert!(
            got.contains(needle),
            "golden schedule no longer produces a \"{needle}\" event"
        );
    }
    assert!(
        got.lines()
            .any(|l| l.contains("/r") && l.contains("FAILED (attempt")),
        "golden schedule no longer produces a failed reduce attempt"
    );
}
