//! Property-based tests of the stack's core invariants.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use incmr::core::policy_file::{parse_grab_limit, parse_policy_file};
use incmr::data::generator::{RecordFactory, SplitGenerator, SplitSpec};
use incmr::data::lineitem::{col, LineItemFactory};
use incmr::data::skew::assign_matching;
use incmr::mapreduce::{TaskScheduler, TraceEvent, TraceKind};
use incmr::prelude::*;
use incmr::simkit::dist::Zipf;
use incmr::simkit::resource::PsResource;
use incmr::simkit::Sim;

/// Run one fault-free dynamic sampling job with tracing on; the exported
/// trace is the oracle for the scheduler properties below.
fn traced_sampling_run(
    partitions: u32,
    records: u64,
    k: u64,
    policy_idx: usize,
    fair: bool,
    seed: u64,
) -> (Vec<TraceEvent>, JobResult) {
    let policy = Policy::table1()[policy_idx].clone();
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(seed);
    let spec = DatasetSpec::small("t", partitions, records, SkewLevel::Moderate, seed);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let scheduler: Box<dyn TaskScheduler> = if fair {
        Box::new(FairScheduler::paper_default())
    } else {
        Box::new(FifoScheduler::new())
    };
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        scheduler,
    );
    rt.enable_tracing();
    let (job, driver) = build_sampling_job(
        &ds,
        k,
        policy,
        ScanMode::Planted,
        SampleMode::FirstK,
        seed ^ 1,
    );
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let result = rt.job_result(id).clone();
    (rt.take_trace(), result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The planted fast path is exactly the predicate-filtered full scan.
    #[test]
    fn planted_equals_filtered_full_scan(
        records in 1u64..2_000,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let matching = (records as f64 * frac) as u64;
        let factory = LineItemFactory::new(col::QUANTITY, Value::Int(200));
        let gen = SplitGenerator::new(&factory, SplitSpec::new(records, matching, seed));
        let predicate = factory.predicate();
        let filtered: Vec<Record> = gen.full_iter().filter(|r| predicate.eval(r)).collect();
        prop_assert_eq!(filtered.len() as u64, matching);
        prop_assert_eq!(filtered, gen.planted_matches());
    }

    /// Zipf planting conserves the total and covers every partition index.
    #[test]
    fn skew_assignment_conserves_total(
        total in 0u64..30_000,
        partitions in 1usize..200,
        z in 0.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::seed_from(seed);
        let counts = assign_matching(total, partitions, z, &mut rng);
        prop_assert_eq!(counts.len(), partitions);
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
    }

    /// Zipf pmf is a probability distribution for any exponent.
    #[test]
    fn zipf_pmf_sums_to_one(n in 1usize..500, z in 0.0f64..4.0) {
        let d = Zipf::new(n, z);
        let total: f64 = (1..=n).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// The event queue delivers in nondecreasing time order, FIFO within a
    /// timestamp, regardless of the schedule.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut sim: Sim<usize> = Sim::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_millis(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = sim.pop() {
            if let Some((prev_at, prev_idx)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(idx > prev_idx, "FIFO within a timestamp");
                }
            }
            prop_assert_eq!(SimTime::from_millis(times[idx]), at);
            last = Some((at, idx));
        }
    }

    /// Processor sharing conserves work: injected = drained + remaining.
    #[test]
    fn ps_resource_conserves_work(
        flows in prop::collection::vec((0u64..5_000, 1.0f64..10_000.0), 1..40),
        horizon in 1u64..20_000,
    ) {
        let mut r = PsResource::new(1_000.0);
        let mut injected = 0.0;
        let mut ids = Vec::new();
        let mut sorted = flows.clone();
        sorted.sort_by_key(|(t, _)| *t);
        for (t, amount) in &sorted {
            ids.push(r.add_flow(SimTime::from_millis(*t), *amount));
            injected += amount;
        }
        let end = SimTime::from_millis(10_000_000.min(sorted.last().unwrap().0 + horizon));
        r.advance(end);
        let remaining: f64 = ids.iter().filter_map(|&id| r.remaining(id)).sum();
        let drained = r.drained_total(end);
        prop_assert!(
            (injected - remaining - drained).abs() < 1e-3 * injected.max(1.0),
            "injected {injected} != drained {drained} + remaining {remaining}"
        );
    }

    /// Grab-limit expressions round-trip through render → parse.
    #[test]
    fn grab_limit_display_parses_back(ts in 1u32..1000, avail in 0u32..1000) {
        for policy in Policy::table1() {
            let rendered = policy.grab_limit.to_string();
            let reparsed = parse_grab_limit(&rendered).unwrap();
            prop_assert_eq!(
                reparsed.evaluate(ts, avail.min(ts)),
                policy.grab_limit.evaluate(ts, avail.min(ts))
            );
        }
    }

    /// A sampling job returns exactly min(k, planted matches), never
    /// anything else, across sizes, skews, and policies.
    #[test]
    fn sample_size_invariant(
        partitions in 2u32..24,
        records in 500u64..4_000,
        k in 1u64..200,
        skew_idx in 0usize..3,
        policy_idx in 0usize..5,
        seed in any::<u64>(),
    ) {
        let skew = SkewLevel::all()[skew_idx];
        let policy = Policy::table1()[policy_idx].clone();
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(seed);
        let spec = DatasetSpec::small("t", partitions, records, skew, seed);
        let ds = Arc::new(Dataset::build(&mut ns, spec, &mut EvenRoundRobin::new(), &mut rng));
        let total_matches = ds.total_matching();
        let mut rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        let (job, driver) = build_sampling_job(&ds, k, policy, ScanMode::Planted, SampleMode::FirstK, seed ^ 1);
        let id = rt.submit(job, driver);
        rt.run_until_idle();
        let result = rt.job_result(id);
        prop_assert_eq!(result.output.len() as u64, k.min(total_matches));
        // Every output satisfies the predicate.
        let predicate = ds.factory().predicate();
        prop_assert!(result.output.iter().all(|(_, r)| predicate.eval(r)));
        // No partition is processed twice and none are invented.
        prop_assert!(result.splits_processed <= partitions);
    }

    /// Policy files render → parse → identical policies (full round trip).
    #[test]
    fn policy_file_round_trip(wt in 0.0f64..50.0, frac in 0.01f64..1.0, interval in 100u64..60_000) {
        let text = format!(
            "<policies><policy name=\"p\"><workThreshold>{wt}</workThreshold>\
             <grabLimit>{frac}*AS</grabLimit><evaluationInterval>{interval}</evaluationInterval>\
             </policy></policies>"
        );
        let parsed = parse_policy_file(&text).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].work_threshold_pct, wt);
        prop_assert_eq!(parsed[0].evaluation_interval.as_millis(), interval);
    }

    /// The exported trace as a causal oracle: whatever the dataset, policy,
    /// or scheduler, no event precedes its cause — tasks only start after
    /// the provider added their splits, the shuffle only closes once every
    /// started map committed, reduces only run after the shuffle, and the
    /// job completes exactly once, at the very end.
    #[test]
    fn trace_has_no_event_before_its_cause(
        partitions in 2u32..20,
        records in 500u64..3_000,
        k in 1u64..120,
        policy_idx in 0usize..5,
        fair in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (trace, _) = traced_sampling_run(partitions, records, k, policy_idx, fair, seed);
        prop_assert!(matches!(trace.first().map(|e| &e.kind), Some(TraceKind::JobSubmitted { .. })));
        prop_assert!(matches!(trace.last().map(|e| &e.kind), Some(TraceKind::JobCompleted { .. })));
        let mut splits_added = 0u64;
        let mut started = BTreeSet::new();
        let mut finished = BTreeSet::new();
        let mut reduces_started = BTreeSet::new();
        let mut shuffle_ready_at: Option<SimTime> = None;
        let mut completions = 0usize;
        for w in trace.windows(2) {
            prop_assert!(w[0].time <= w[1].time, "timestamps must be nondecreasing");
        }
        for e in &trace {
            prop_assert_eq!(completions, 0, "no event may follow JobCompleted");
            match e.kind {
                TraceKind::InputAdded { splits, .. } => {
                    prop_assert!(
                        shuffle_ready_at.is_none(),
                        "input added after the shuffle closed"
                    );
                    splits_added += splits as u64;
                }
                TraceKind::MapStarted { task, .. } => {
                    prop_assert!(
                        (task.0 as u64) < splits_added,
                        "task {} started before its split was added ({} known)",
                        task.0,
                        splits_added
                    );
                    started.insert(task);
                }
                TraceKind::MapFinished { task, .. } => {
                    prop_assert!(started.contains(&task), "finish before start");
                    finished.insert(task);
                }
                TraceKind::ShuffleReady { .. } => {
                    prop_assert_eq!(
                        &started, &finished,
                        "the shuffle closed with maps still in flight"
                    );
                    prop_assert!(!finished.is_empty());
                    shuffle_ready_at = Some(e.time);
                }
                TraceKind::ReduceStarted { reduce, .. } => {
                    let ready = shuffle_ready_at.expect("reduce before ShuffleReady");
                    prop_assert!(e.time >= ready);
                    reduces_started.insert(reduce);
                }
                TraceKind::ReduceFinished { reduce, .. } => {
                    prop_assert!(reduces_started.contains(&reduce), "commit before start");
                }
                TraceKind::JobCompleted { .. } => completions += 1,
                _ => {}
            }
        }
        prop_assert_eq!(completions, 1);
    }

    /// Slot discipline, with the trace as the oracle: at no simulated
    /// instant does a node host more concurrent map attempts than its map
    /// slots or more reduces than its reduce slots — attempt spans never
    /// overlap on one slot — and the per-job queue-wait histogram carries
    /// exactly one sample per dispatch, keyed by the scheduler that made it.
    #[test]
    fn no_node_overcommits_its_slots(
        partitions in 2u32..20,
        records in 500u64..3_000,
        k in 1u64..120,
        policy_idx in 0usize..5,
        fair in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (trace, result) = traced_sampling_run(partitions, records, k, policy_idx, fair, seed);
        // `paper_single_user()`: 4 map + 2 reduce slots per node; a clean
        // run has exactly one attempt per task (asserted below), so spans
        // are delimited by Started/Finished pairs.
        let mut maps_on: BTreeMap<u16, u32> = BTreeMap::new();
        let mut task_node = BTreeMap::new();
        let mut reduces_on: BTreeMap<u16, u32> = BTreeMap::new();
        let mut reduce_node = BTreeMap::new();
        let mut dispatches = 0u64;
        for e in &trace {
            match e.kind {
                TraceKind::MapStarted { task, node, .. } => {
                    dispatches += 1;
                    prop_assert!(
                        task_node.insert(task, node).is_none(),
                        "a fault-free run re-ran task {}",
                        task.0
                    );
                    let n = maps_on.entry(node.0).or_insert(0);
                    *n += 1;
                    prop_assert!(*n <= 4, "node {} over its 4 map slots", node.0);
                }
                TraceKind::MapFinished { task, .. } => {
                    let node = task_node.get(&task).expect("finish before start");
                    *maps_on.get_mut(&node.0).unwrap() -= 1;
                }
                TraceKind::ReduceStarted { reduce, node, .. } => {
                    prop_assert!(reduce_node.insert(reduce, node).is_none());
                    let n = reduces_on.entry(node.0).or_insert(0);
                    *n += 1;
                    prop_assert!(*n <= 2, "node {} over its 2 reduce slots", node.0);
                }
                TraceKind::ReduceFinished { reduce, .. } => {
                    let node = reduce_node.get(&reduce).expect("commit before start");
                    *reduces_on.get_mut(&node.0).unwrap() -= 1;
                }
                TraceKind::MapFailed { .. }
                | TraceKind::ReduceFailed { .. }
                | TraceKind::AttemptKilled { .. }
                | TraceKind::SpeculativeLaunch { .. }
                | TraceKind::NodeLost { .. } => {
                    prop_assert!(false, "fault event in a fault-free run: {:?}", e.kind);
                }
                _ => {}
            }
        }
        prop_assert!(maps_on.values().all(|&n| n == 0), "a map span never closed");
        prop_assert!(reduces_on.values().all(|&n| n == 0), "a reduce span never closed");
        let expected = if fair { "fair" } else { "fifo" };
        let waits = result.histograms.queue_wait(expected).expect("scheduler-keyed waits");
        prop_assert_eq!(waits.count(), dispatches, "one queue-wait sample per dispatch");
        prop_assert_eq!(result.histograms.queue_wait_total().count(), dispatches);
    }
}
