//! Property-based tests of the stack's core invariants.

use proptest::prelude::*;
use std::sync::Arc;

use incmr::core::policy_file::{parse_grab_limit, parse_policy_file};
use incmr::data::generator::{RecordFactory, SplitGenerator, SplitSpec};
use incmr::data::lineitem::{col, LineItemFactory};
use incmr::data::skew::assign_matching;
use incmr::prelude::*;
use incmr::simkit::dist::Zipf;
use incmr::simkit::resource::PsResource;
use incmr::simkit::Sim;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The planted fast path is exactly the predicate-filtered full scan.
    #[test]
    fn planted_equals_filtered_full_scan(
        records in 1u64..2_000,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let matching = (records as f64 * frac) as u64;
        let factory = LineItemFactory::new(col::QUANTITY, Value::Int(200));
        let gen = SplitGenerator::new(&factory, SplitSpec::new(records, matching, seed));
        let predicate = factory.predicate();
        let filtered: Vec<Record> = gen.full_iter().filter(|r| predicate.eval(r)).collect();
        prop_assert_eq!(filtered.len() as u64, matching);
        prop_assert_eq!(filtered, gen.planted_matches());
    }

    /// Zipf planting conserves the total and covers every partition index.
    #[test]
    fn skew_assignment_conserves_total(
        total in 0u64..30_000,
        partitions in 1usize..200,
        z in 0.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::seed_from(seed);
        let counts = assign_matching(total, partitions, z, &mut rng);
        prop_assert_eq!(counts.len(), partitions);
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
    }

    /// Zipf pmf is a probability distribution for any exponent.
    #[test]
    fn zipf_pmf_sums_to_one(n in 1usize..500, z in 0.0f64..4.0) {
        let d = Zipf::new(n, z);
        let total: f64 = (1..=n).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// The event queue delivers in nondecreasing time order, FIFO within a
    /// timestamp, regardless of the schedule.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut sim: Sim<usize> = Sim::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_millis(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = sim.pop() {
            if let Some((prev_at, prev_idx)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(idx > prev_idx, "FIFO within a timestamp");
                }
            }
            prop_assert_eq!(SimTime::from_millis(times[idx]), at);
            last = Some((at, idx));
        }
    }

    /// Processor sharing conserves work: injected = drained + remaining.
    #[test]
    fn ps_resource_conserves_work(
        flows in prop::collection::vec((0u64..5_000, 1.0f64..10_000.0), 1..40),
        horizon in 1u64..20_000,
    ) {
        let mut r = PsResource::new(1_000.0);
        let mut injected = 0.0;
        let mut ids = Vec::new();
        let mut sorted = flows.clone();
        sorted.sort_by_key(|(t, _)| *t);
        for (t, amount) in &sorted {
            ids.push(r.add_flow(SimTime::from_millis(*t), *amount));
            injected += amount;
        }
        let end = SimTime::from_millis(10_000_000.min(sorted.last().unwrap().0 + horizon));
        r.advance(end);
        let remaining: f64 = ids.iter().filter_map(|&id| r.remaining(id)).sum();
        let drained = r.drained_total(end);
        prop_assert!(
            (injected - remaining - drained).abs() < 1e-3 * injected.max(1.0),
            "injected {injected} != drained {drained} + remaining {remaining}"
        );
    }

    /// Grab-limit expressions round-trip through render → parse.
    #[test]
    fn grab_limit_display_parses_back(ts in 1u32..1000, avail in 0u32..1000) {
        for policy in Policy::table1() {
            let rendered = policy.grab_limit.to_string();
            let reparsed = parse_grab_limit(&rendered).unwrap();
            prop_assert_eq!(
                reparsed.evaluate(ts, avail.min(ts)),
                policy.grab_limit.evaluate(ts, avail.min(ts))
            );
        }
    }

    /// A sampling job returns exactly min(k, planted matches), never
    /// anything else, across sizes, skews, and policies.
    #[test]
    fn sample_size_invariant(
        partitions in 2u32..24,
        records in 500u64..4_000,
        k in 1u64..200,
        skew_idx in 0usize..3,
        policy_idx in 0usize..5,
        seed in any::<u64>(),
    ) {
        let skew = SkewLevel::all()[skew_idx];
        let policy = Policy::table1()[policy_idx].clone();
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(seed);
        let spec = DatasetSpec::small("t", partitions, records, skew, seed);
        let ds = Arc::new(Dataset::build(&mut ns, spec, &mut EvenRoundRobin::new(), &mut rng));
        let total_matches = ds.total_matching();
        let mut rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        let (job, driver) = build_sampling_job(&ds, k, policy, ScanMode::Planted, SampleMode::FirstK, seed ^ 1);
        let id = rt.submit(job, driver);
        rt.run_until_idle();
        let result = rt.job_result(id);
        prop_assert_eq!(result.output.len() as u64, k.min(total_matches));
        // Every output satisfies the predicate.
        let predicate = ds.factory().predicate();
        prop_assert!(result.output.iter().all(|(_, r)| predicate.eval(r)));
        // No partition is processed twice and none are invented.
        prop_assert!(result.splits_processed <= partitions);
    }

    /// Policy files render → parse → identical policies (full round trip).
    #[test]
    fn policy_file_round_trip(wt in 0.0f64..50.0, frac in 0.01f64..1.0, interval in 100u64..60_000) {
        let text = format!(
            "<policies><policy name=\"p\"><workThreshold>{wt}</workThreshold>\
             <grabLimit>{frac}*AS</grabLimit><evaluationInterval>{interval}</evaluationInterval>\
             </policy></policies>"
        );
        let parsed = parse_policy_file(&text).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(parsed[0].work_threshold_pct, wt);
        prop_assert_eq!(parsed[0].evaluation_interval.as_millis(), interval);
    }
}
