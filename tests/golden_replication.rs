//! Golden-trace regression for the replication plane: one fixed world,
//! one fixed DataNode death + rejoin, one exact event timeline committed
//! to the repository.
//!
//! The scenario exercises every replication event kind:
//!
//! * **ReplicaLost** — node 0 dies with data-loss semantics armed, so
//!   every replica it hosted is stripped from the namespace;
//! * **ReadFailover** — dataset A is pinned to node 0's first disk with a
//!   hand-placed second replica on node 1, so the death catches remote
//!   map attempts mid-startup and their reads fail over;
//! * **ReplicaRestored** — dataset C is rack-aware r = 2, so the death
//!   leaves it under-replicated and the repair daemon recreates copies;
//! * **InputLost (FATAL / partial)** — dataset B is unreplicated; a job
//!   needing it after the death fails typed, and the same job with
//!   `mapred.job.allow.partial` degrades to a partial sample.
//!
//! After an *intentional* behaviour change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_replication
//! ```
//!
//! and review the diff like any other code change.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use incmr::dfs::{DiskId, PinnedPlacement, ReplicatedPlacement};
use incmr::mapreduce::{keys, ClusterFaultPlan, NodeOutage};
use incmr::prelude::*;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/replication_trace.txt")
}

fn render_run() -> String {
    let topology = ClusterTopology::paper_cluster().with_racks(2);
    let mut ns = Namespace::new(topology);
    let mut rng = DetRng::seed_from(31);

    // Dataset A: every block pinned to node 0's first disk, with a second
    // replica hand-placed on node 1 — so node 0's death catches remote
    // readers mid-startup and forces read failover, while the block
    // itself survives.
    let spec_a = DatasetSpec::small("a", 24, 2_000, SkewLevel::Moderate, 31);
    let ds_a = Arc::new(Dataset::build(
        &mut ns,
        spec_a,
        &mut PinnedPlacement::new(DiskId(0)),
        &mut rng,
    ));
    let node1_disk = topology
        .disks_of(NodeId(1))
        .next()
        .expect("node 1 has disks");
    for split in ds_a.splits() {
        ns.add_replica(split.block, node1_disk);
    }

    // Dataset B: unreplicated, spread across the cluster — the death
    // takes its node-0 blocks' only copies with it.
    let spec_b = DatasetSpec::small("b", 12, 2_000, SkewLevel::Moderate, 32);
    let ds_b = Arc::new(Dataset::build(
        &mut ns,
        spec_b,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));

    // Dataset C: rack-aware r = 2 — the death leaves it under-replicated
    // with a live copy to repair from.
    let spec_c = DatasetSpec::small("c", 20, 2_000, SkewLevel::Moderate, 33);
    let ds_c = Arc::new(Dataset::build(
        &mut ns,
        spec_c,
        &mut ReplicatedPlacement::try_rack_aware(2, &topology).expect("2 fits"),
        &mut rng,
    ));
    drop(ds_c); // no job reads C; only the repair daemon touches it

    let mut cfg = ClusterConfig::paper_single_user();
    cfg.topology = topology;
    let mut rt = MrRuntime::new(
        cfg,
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_data_loss();
    rt.enable_re_replication(SimDuration::from_secs(5))
        .expect("nonzero interval");
    rt.enable_tracing();
    rt.inject_cluster_faults(ClusterFaultPlan {
        // Heartbeats are staggered 0.3 s per node, so by 1.3 s nodes 2–3
        // host remote attempts still inside task startup whose intended
        // read disk is node 0's — the death makes them fail over.
        outages: vec![NodeOutage {
            node: NodeId(0),
            down_at: SimTime::from_millis(1_300),
            up_at: Some(SimTime::from_secs(15)),
        }],
        seed: 13,
        ..ClusterFaultPlan::default()
    })
    .expect("valid plan");

    let sampling = |ds: &Arc<Dataset>| {
        build_sampling_job(
            ds,
            ds.total_matching(),
            Policy::hadoop(),
            ScanMode::Planted,
            SampleMode::FirstK,
            31,
        )
    };

    // Job 0: dataset A, spanning the death — survives via read failover.
    let (job, driver) = sampling(&ds_a);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed, "job 0 must survive the death");

    // Job 1: dataset B after the death — its lost blocks are fatal.
    let (job, driver) = sampling(&ds_b);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let r = rt.job_result(id);
    assert!(r.failed, "job 1 must lose input");
    assert!(matches!(r.error, Some(JobError::InputLost { .. })));

    // Job 2: dataset B again with allow_partial — degrades gracefully.
    let (mut job, driver) = sampling(&ds_b);
    job.conf.set(keys::ALLOW_PARTIAL, true);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    assert!(!rt.job_result(id).failed, "job 2 must degrade, not fail");

    let mut out = String::new();
    for event in rt.take_trace() {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn replication_trace_matches_golden_file() {
    let got = render_run();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &got).expect("write golden replication trace");
        return;
    }
    let want = fs::read_to_string(&path)
        .expect("tests/golden/replication_trace.txt missing — generate it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, want,
        "replication trace diverged from tests/golden/replication_trace.txt; \
         if the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// Coverage guard: the golden scenario must keep producing every
/// replication event kind — a schedule that quietly stops exercising the
/// plane would still "match" while guarding nothing.
#[test]
fn golden_schedule_exercises_every_replication_event_kind() {
    let got = render_run();
    for needle in [
        "replica on node0 LOST",
        "read failover",
        "re-replicated ->",
        "input lost:",
        "(FATAL)",
        "(partial)",
        "node0 rejoined",
    ] {
        assert!(
            got.contains(needle),
            "golden replication scenario no longer produces a \"{needle}\" event"
        );
    }
}
