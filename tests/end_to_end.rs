//! Cross-crate integration: the full pipeline from SQL text to a sample,
//! exercised through the public facade.

use std::sync::Arc;

use incmr::core::parse_policy_file;
use incmr::prelude::*;

fn make_session(partitions: u32, records: u64, skew: SkewLevel, full_scan: bool) -> Session {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(404);
    let spec = DatasetSpec::small("lineitem", partitions, records, skew, 404);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    let mut builder = Session::builder().runtime(rt).table("lineitem", ds);
    if full_scan {
        builder = builder.scan_mode(ScanMode::Full);
    }
    builder.try_build().unwrap()
}

#[test]
fn sql_to_sample_through_every_layer() {
    let mut session = make_session(30, 4_000, SkewLevel::High, false);
    session.execute("SET dynamic.job.policy = MA").unwrap();
    let out = session
        .execute(
            "SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM lineitem WHERE L_TAX = 0.77 LIMIT 25",
        )
        .unwrap();
    let QueryOutput::Rows {
        rows,
        splits_processed,
        records_processed,
        response_time,
        ..
    } = out
    else {
        panic!("expected rows")
    };
    assert_eq!(rows.len(), 25);
    assert!(rows.iter().all(|r| r.arity() == 3));
    assert!(
        splits_processed < 30,
        "stopped early: {splits_processed} splits"
    );
    assert!(records_processed > 0);
    assert!(response_time > SimDuration::ZERO);
}

#[test]
fn policy_file_drives_query_execution() {
    let mut session = make_session(20, 3_000, SkewLevel::Zero, false);
    session
        .load_policies(&incmr::core::policy_file::builtin_policy_file())
        .unwrap();
    session.execute("SET dynamic.job.policy = C").unwrap();
    assert_eq!(session.active_policy().name, "C");
    let out = session
        .execute("SELECT * FROM lineitem WHERE L_QUANTITY = 200 LIMIT 5")
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    assert_eq!(rows.len(), 5);
}

#[test]
fn custom_policy_round_trips_from_text_to_execution() {
    let policies = parse_policy_file(
        r#"<policies>
             <policy name="drip">
               <workThreshold>0</workThreshold>
               <grabLimit>2</grabLimit>
               <evaluationInterval>4000</evaluationInterval>
             </policy>
           </policies>"#,
    )
    .unwrap();

    // Run a sampling job under the custom policy directly.
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(9);
    let spec = DatasetSpec::small("t", 16, 3_000, SkewLevel::Zero, 9);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    let (job, driver) = build_sampling_job(
        &ds,
        10,
        policies[0].clone(),
        ScanMode::Planted,
        SampleMode::FirstK,
        2,
    );
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let r = rt.job_result(id);
    assert_eq!(r.output.len(), 10);
    // A grab limit of 2 means the job can never have grown faster than two
    // partitions per evaluation.
    assert!(r.splits_processed <= 16);
}

#[test]
fn full_scan_mode_supports_ad_hoc_analysis() {
    let mut session = make_session(10, 2_000, SkewLevel::Zero, true);
    let out = session
        .execute(
            "SELECT L_ORDERKEY FROM lineitem WHERE L_SHIPMODE = 'RAIL' AND L_QUANTITY < 10 LIMIT 8",
        )
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    assert_eq!(rows.len(), 8, "natural data has plenty of RAIL shipments");
}

#[test]
fn dynamic_job_beats_hadoop_policy_on_work() {
    let run = |policy: Policy| {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(55);
        let spec = DatasetSpec::small("t", 40, 5_000, SkewLevel::Zero, 55);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            spec,
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let mut rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        let (job, driver) =
            build_sampling_job(&ds, 30, policy, ScanMode::Planted, SampleMode::FirstK, 5);
        let id = rt.submit(job, driver);
        rt.run_until_idle();
        (
            rt.job_result(id).output.len(),
            rt.job_result(id).records_processed,
        )
    };
    let (hadoop_n, hadoop_records) = run(Policy::hadoop());
    let (la_n, la_records) = run(Policy::la());
    assert_eq!(hadoop_n, la_n, "same sample size either way");
    assert!(
        la_records < hadoop_records,
        "dynamic read {la_records} records vs Hadoop's {hadoop_records}"
    );
}

#[test]
fn fair_scheduler_runs_the_same_pipeline() {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(66);
    let spec = DatasetSpec::small("t", 20, 2_000, SkewLevel::Moderate, 66);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FairScheduler::paper_default()),
    );
    let (job, driver) = build_sampling_job(
        &ds,
        15,
        Policy::ha(),
        ScanMode::Planted,
        SampleMode::FirstK,
        3,
    );
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    assert_eq!(rt.job_result(id).output.len(), 15);
}

#[test]
fn workload_and_metrics_compose_through_the_facade() {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let root = DetRng::seed_from(88);
    let datasets: Vec<Arc<Dataset>> = (0..3)
        .map(|u| {
            let mut rng = root.fork(u);
            let spec = DatasetSpec::small(&format!("c{u}"), 24, 100_000, SkewLevel::Zero, 88 + u);
            Arc::new(Dataset::build(
                &mut ns,
                spec,
                &mut EvenRoundRobin::starting_at(u as u32 * 5),
                &mut rng,
            ))
        })
        .collect();
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_multi_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    let spec = WorkloadSpec::homogeneous(
        datasets,
        3_000,
        Policy::la(),
        SimDuration::from_mins(3),
        SimDuration::from_mins(15),
        2,
    );
    let report = run_workload(&mut rt, &spec);
    assert!(report.sampling_completed > 0);
    assert!(report.metrics.cpu_util_pct > 0.0);
    assert!(report.metrics.locality_pct > 0.0);
}
