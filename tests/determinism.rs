//! Whole-stack determinism: simulation results are pure functions of their
//! seeds. This is load-bearing — the experiment harness reproduces the
//! paper's "averages over 5 runs" as averages over 5 seeds, which is only
//! meaningful if nothing else varies.

use std::sync::Arc;

use incmr::mapreduce::{
    DatasetInputFormat, FaultPlan, MapResult, Mapper, ShuffleMetrics, SplitData, StaticDriver,
    TraceEvent,
};
use incmr::prelude::*;

fn single_job_fingerprint(seed: u64, policy: Policy) -> (u64, u32, u64, usize) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(seed);
    let spec = DatasetSpec::small("t", 24, 3_000, SkewLevel::Moderate, seed);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    let (job, driver) = build_sampling_job(
        &ds,
        12,
        policy,
        ScanMode::Planted,
        SampleMode::FirstK,
        seed ^ 7,
    );
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let r = rt.job_result(id);
    (
        r.response_time().as_millis(),
        r.splits_processed,
        r.records_processed,
        r.output.len(),
    )
}

#[test]
fn identical_seeds_identical_runs() {
    for policy in Policy::table1() {
        let a = single_job_fingerprint(41, policy.clone());
        let b = single_job_fingerprint(41, policy.clone());
        assert_eq!(
            a, b,
            "policy {} diverged across identical runs",
            policy.name
        );
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    // Not every field must differ, but the fingerprints should not be
    // universally identical across seeds for a dynamic policy (random
    // split selection must matter).
    let fingerprints: Vec<_> = (0..5)
        .map(|s| single_job_fingerprint(s, Policy::la()))
        .collect();
    let all_same = fingerprints.windows(2).all(|w| w[0] == w[1]);
    assert!(
        !all_same,
        "five different seeds produced identical dynamics: {fingerprints:?}"
    );
}

#[test]
fn workload_runs_are_reproducible() {
    let run = || {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let root = DetRng::seed_from(3);
        let datasets: Vec<Arc<Dataset>> = (0..3)
            .map(|u| {
                let mut rng = root.fork(u);
                let spec = DatasetSpec::small(&format!("c{u}"), 16, 50_000, SkewLevel::Zero, 3 + u);
                Arc::new(Dataset::build(
                    &mut ns,
                    spec,
                    &mut EvenRoundRobin::starting_at(u as u32),
                    &mut rng,
                ))
            })
            .collect();
        let mut rt = MrRuntime::new(
            ClusterConfig::paper_multi_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FairScheduler::paper_default()),
        );
        let spec = WorkloadSpec::heterogeneous(
            datasets,
            1,
            1_000,
            Policy::ma(),
            SimDuration::from_mins(2),
            SimDuration::from_mins(10),
            9,
        );
        let report = run_workload(&mut rt, &spec);
        (
            report.sampling_completed,
            report.non_sampling_completed,
            report.metrics.locality_pct.to_bits(),
            report.metrics.slot_occupancy_pct.to_bits(),
        )
    };
    assert_eq!(run(), run(), "bit-identical workload reports across runs");
}

/// Run the same dynamic sampling job with a given data-plane thread count
/// and scan mode; return everything observable about the simulated run:
/// the result scalars, the full reduce output, and the complete trace
/// timeline.
fn scan_mode_fingerprint(
    threads: u32,
    faults: Option<FaultPlan>,
    mode: ScanMode,
) -> (JobResult, Vec<TraceEvent>) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(17);
    let spec = DatasetSpec::small("t", 32, 4_000, SkewLevel::Moderate, 17);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_tracing();
    if let Some(plan) = faults {
        rt.inject_faults(plan).expect("valid plan");
    }
    let (job, driver) = build_sampling_job(&ds, 15, Policy::ma(), mode, SampleMode::FirstK, 23);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    (rt.job_result(id).clone(), rt.take_trace())
}

fn parallel_fingerprint(threads: u32, faults: Option<FaultPlan>) -> (JobResult, Vec<TraceEvent>) {
    scan_mode_fingerprint(threads, faults, ScanMode::Planted)
}

/// The columnar scan path is an *implementation* of the same scan, not a
/// different scan: switching a job from the row reference modes to the
/// batch modes must leave every observable — sampled output, counters,
/// and the full trace timeline — byte-identical, at every thread count.
/// Batch boundaries must not leak into sampling decisions.
#[test]
fn columnar_scan_modes_reproduce_row_reference_modes() {
    for (batch, rows) in [
        (ScanMode::Planted, ScanMode::PlantedRows),
        (ScanMode::Full, ScanMode::FullRows),
    ] {
        let (ref_result, ref_trace) = scan_mode_fingerprint(1, None, rows);
        assert!(!ref_trace.is_empty());
        for threads in [1, 4, 8] {
            let (result, trace) = scan_mode_fingerprint(threads, None, batch);
            assert_eq!(
                result.output, ref_result.output,
                "{batch:?}@{threads} threads diverged from {rows:?}"
            );
            assert_eq!(result.response_time(), ref_result.response_time());
            assert_eq!(result.records_processed, ref_result.records_processed);
            assert_eq!(result.splits_processed, ref_result.splits_processed);
            assert_eq!(
                trace, ref_trace,
                "{batch:?}@{threads} threads: timeline diverged from {rows:?}"
            );
        }
    }
}

/// The two-plane contract: data-plane parallelism must never leak into
/// simulated behaviour. Serial execution is the reference; 4- and 8-thread
/// pools must reproduce it byte for byte — same response time, same splits,
/// same sampled records, same event timeline.
#[test]
fn parallel_data_plane_reproduces_serial_results_exactly() {
    let (serial_result, serial_trace) = parallel_fingerprint(1, None);
    assert!(!serial_trace.is_empty());
    for threads in [4, 8] {
        let (result, trace) = parallel_fingerprint(threads, None);
        assert_eq!(
            result.response_time(),
            serial_result.response_time(),
            "simulated time diverged at {threads} threads"
        );
        assert_eq!(result.splits_processed, serial_result.splits_processed);
        assert_eq!(result.records_processed, serial_result.records_processed);
        assert_eq!(result.local_tasks, serial_result.local_tasks);
        assert_eq!(
            result.output, serial_result.output,
            "sampled records diverged at {threads} threads"
        );
        assert_eq!(
            trace, serial_trace,
            "event timeline diverged at {threads} threads"
        );
    }
}

/// Fault injection draws from a deterministic stream keyed by dispatch
/// order; the worker pool must not perturb it.
#[test]
fn fault_injection_is_thread_count_invariant() {
    let plan = FaultPlan {
        probability: 0.25,
        max_attempts: 10,
        seed: 99,
    };
    let (serial_result, serial_trace) = parallel_fingerprint(1, Some(plan));
    assert!(
        serial_result.task_failures > 0,
        "the plan must actually inject failures"
    );
    for threads in [4, 8] {
        let (result, trace) = parallel_fingerprint(threads, Some(plan));
        assert_eq!(result.task_failures, serial_result.task_failures);
        assert_eq!(result.response_time(), serial_result.response_time());
        assert_eq!(result.output, serial_result.output);
        assert_eq!(trace, serial_trace);
    }
}

/// A mapper that fans records out across five keys, so multi-partition
/// shuffle and several reduce tasks all carry real data.
struct FanOutMapper;

impl Mapper for FanOutMapper {
    fn run(&self, data: SplitData) -> MapResult {
        let total_records = data.total_records();
        let (SplitData::Planted { matches, .. } | SplitData::Records(matches)) = data.into_rows()
        else {
            unreachable!()
        };
        MapResult {
            pairs: matches
                .into_iter()
                .enumerate()
                .map(|(i, r)| (Key::from(format!("g{}", i % 5)), r))
                .collect(),
            records_read: total_records,
            ..MapResult::default()
        }
    }
}

/// A combiner with a visible effect: drop every third pair of a map task's
/// output. Deterministic per task, so simulated results must still be
/// thread-count invariant.
struct DropEveryThird;

impl Combiner for DropEveryThird {
    fn combine(&self, pairs: Vec<(Key, incmr::data::Record)>) -> Vec<(Key, incmr::data::Record)> {
        pairs
            .into_iter()
            .enumerate()
            .filter_map(|(i, p)| (i % 3 != 2).then_some(p))
            .collect()
    }
}

/// Like [`parallel_fingerprint`], but exercising the paths the sampling job
/// does not: a combiner that actually removes records, three reduce tasks
/// (so the reduce plane runs multiple `ReduceUnit`s), and the shuffle
/// counters.
fn reduce_plane_fingerprint(
    threads: u32,
    faults: Option<FaultPlan>,
) -> (JobResult, Vec<TraceEvent>, ShuffleMetrics) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(29);
    let spec = DatasetSpec::small("t", 24, 4_000, SkewLevel::Moderate, 29);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_tracing();
    if let Some(plan) = faults {
        rt.inject_faults(plan).expect("valid plan");
    }
    let job = JobSpec::builder()
        .reduces(3)
        .input(DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Planted))
        .mapper(FanOutMapper)
        .combiner(DropEveryThird)
        .build();
    let blocks = ds.splits().iter().map(|p| p.block).collect();
    let id = rt.submit(job, Box::new(StaticDriver::new(blocks)));
    rt.run_until_idle();
    let shuffle = rt.metrics().shuffle();
    (rt.job_result(id).clone(), rt.take_trace(), shuffle)
}

/// The reduce plane and the combiner run on the worker pool too; their
/// results, traces, and shuffle counters must be identical at any thread
/// count, with and without fault injection.
#[test]
fn reduce_plane_and_combiner_are_thread_count_invariant() {
    for faults in [
        None,
        Some(FaultPlan {
            probability: 0.2,
            max_attempts: 10,
            seed: 31,
        }),
    ] {
        let (serial_result, serial_trace, serial_shuffle) = reduce_plane_fingerprint(1, faults);
        assert!(
            serial_shuffle.combined_away() > 0,
            "the combiner must actually drop records"
        );
        assert!(
            !serial_result.output.is_empty(),
            "reduce output must be materialised"
        );
        if faults.is_some() {
            assert!(serial_result.task_failures > 0);
        }
        for threads in [4, 8] {
            let (result, trace, shuffle) = reduce_plane_fingerprint(threads, faults);
            assert_eq!(
                result.output,
                serial_result.output,
                "reduce output diverged at {threads} threads (faults: {})",
                faults.is_some()
            );
            assert_eq!(result.response_time(), serial_result.response_time());
            assert_eq!(result.map_output_records, serial_result.map_output_records);
            assert_eq!(result.task_failures, serial_result.task_failures);
            assert_eq!(trace, serial_trace);
            assert_eq!(shuffle, serial_shuffle, "shuffle counters diverged");
        }
    }
}

#[test]
fn dataset_content_is_stable_across_processes() {
    // A pinned fingerprint guards against silent generator changes that
    // would invalidate recorded experiment numbers. If this fails after an
    // intentional generator change, update EXPERIMENTS.md alongside it.
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(1234);
    let spec = DatasetSpec::small("t", 8, 100, SkewLevel::High, 1234);
    let ds = Dataset::build(&mut ns, spec, &mut EvenRoundRobin::new(), &mut rng);
    let counts = ds.matching_counts();
    assert_eq!(
        counts.iter().sum::<u64>(),
        0,
        "8×100 records at 0.05% rounds to zero matches"
    );
    let spec = DatasetSpec::small("u", 8, 10_000, SkewLevel::High, 1234);
    let ds = Dataset::build(&mut ns, spec, &mut EvenRoundRobin::new(), &mut rng);
    assert_eq!(ds.total_matching(), 40, "0.05% of 80k records");
}
