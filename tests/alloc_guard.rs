//! Allocation guard for the columnar scan hot path.
//!
//! The point of record batches is that a repeated scan read is an `Arc`
//! bump plus a couple of working vectors — not a per-record allocation
//! storm. This test pins that property with a counting global allocator:
//! if someone reintroduces per-record `Record` construction (or per-value
//! string interning) into the batch path, the count jumps by four orders
//! of magnitude and the guard trips.
//!
//! The file holds exactly one `#[test]` so no concurrent test can perturb
//! the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use incmr::data::{Dataset, DatasetSpec, RecordFactory, SkewLevel};
use incmr::mapreduce::{DatasetInputFormat, InputFormat, Mapper, ScanMode};
use incmr::prelude::*;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations performed by `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn batched_scan_reads_allocate_orders_of_magnitude_less_than_row_reads() {
    const RECORDS: u64 = 20_000;
    const ITERS: u64 = 10;

    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(11);
    let spec = DatasetSpec::small("alloc", 1, RECORDS, SkewLevel::Zero, 11);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let block = ds.splits()[0].block;
    let mapper = incmr::core::SamplingMapper::new(ds.factory().predicate(), 100);

    let batch_input = DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Full);
    let row_input = DatasetInputFormat::new(Arc::clone(&ds), ScanMode::FullRows);

    // Warm the batch cache (first read generates the batch) and page in
    // any lazily-initialised state on both paths.
    let warm = mapper.run(batch_input.read(block));
    assert_eq!(warm.records_read, RECORDS);
    let warm = mapper.run(row_input.read(block));
    assert_eq!(warm.records_read, RECORDS);

    let batch_allocs = allocations_during(|| {
        for _ in 0..ITERS {
            std::hint::black_box(mapper.run(batch_input.read(block)));
        }
    });
    let row_allocs = allocations_during(|| {
        for _ in 0..ITERS {
            std::hint::black_box(mapper.run(row_input.read(block)));
        }
    });

    // Row reads materialise 20k records per iteration, so they sit in the
    // hundreds of thousands of allocations. A cached batch read plus a
    // vectorised map is a handful of working vectors.
    assert!(
        batch_allocs <= 100 * ITERS,
        "batched scan allocated {batch_allocs} times in {ITERS} reads \
         (expected ≤ {} — per-record work crept back into the hot path?)",
        100 * ITERS
    );
    assert!(
        row_allocs >= RECORDS * ITERS,
        "row reference path allocated only {row_allocs} times — did the \
         comparison baseline change?"
    );
    assert!(
        batch_allocs * 50 <= row_allocs,
        "batched scan ({batch_allocs}) is not meaningfully cheaper than \
         row scan ({row_allocs})"
    );
}
