//! The multi-tenant query service, end to end: open-loop populations in
//! the thousands of users flow through admission control and weighted-
//! fair dispatch onto one shared cluster, and everything observable —
//! per-tenant queue-wait histograms, rejection counters, the admission
//! trace, sampled records — is a pure function of the seeds.

use std::sync::Arc;

use incmr::prelude::*;
use incmr::simkit::stats::LogHistogram;
use incmr::workload::{run_open_loop, OpenLoopClass, OpenLoopReport, OpenLoopSpec};

/// Build a cluster plus per-class dataset copies: one heavyweight copy
/// for the scan class (it reads everything) and lighter copies for the
/// sampling classes, all with planted Moderate-skew matches.
fn open_loop_world(
    scheduler: Box<dyn incmr::mapreduce::TaskScheduler>,
) -> (MrRuntime, Vec<Arc<Dataset>>) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(41);
    let specs = [
        DatasetSpec::small("interactive", 12, 100_000, SkewLevel::Moderate, 41),
        DatasetSpec::small("reporting", 12, 100_000, SkewLevel::Moderate, 43),
        DatasetSpec::small("batch", 8, 200_000, SkewLevel::Moderate, 47),
    ];
    let datasets = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            Arc::new(Dataset::build(
                &mut ns,
                spec,
                &mut EvenRoundRobin::starting_at(i as u32),
                &mut rng,
            ))
        })
        .collect();
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        scheduler,
    );
    (rt, datasets)
}

/// The acceptance-scale scenario: 1,100 heterogeneous open-loop users in
/// three tenant classes (interactive samplers, a weighted reporting
/// class, and full-table batch scans) against a 40-slot cluster.
fn run_at_scale(scheduler: Box<dyn incmr::mapreduce::TaskScheduler>) -> OpenLoopReport {
    let (rt, ds) = open_loop_world(scheduler);
    let spec = OpenLoopSpec {
        classes: vec![
            OpenLoopClass::sampling(
                "interactive",
                Arc::clone(&ds[0]),
                SkewLevel::Moderate,
                8,
                700,
                SimDuration::from_secs(1_400),
            )
            .with_quota(8, 32),
            OpenLoopClass::sampling(
                "reporting",
                Arc::clone(&ds[1]),
                SkewLevel::Moderate,
                25,
                300,
                SimDuration::from_secs(3_000),
            )
            .with_policy("C")
            .with_weight(3)
            .with_quota(4, 16),
            OpenLoopClass::scanning(
                "batch",
                Arc::clone(&ds[2]),
                SkewLevel::Moderate,
                100,
                SimDuration::from_secs(2_000),
            )
            .with_quota(2, 8),
        ],
        horizon: SimDuration::from_secs(300),
        service_cap: 12,
        seed: 4242,
    };
    run_open_loop(&spec, rt)
}

/// Aggregate data-locality fraction across every tenant's completed
/// queries (splits weighted, so the scan class counts at its true size).
fn aggregate_locality(report: &OpenLoopReport) -> f64 {
    let (mut local, mut total) = (0.0, 0.0);
    for t in &report.tenants {
        let splits = t.splits_per_query.mean() * t.completed as f64;
        local += t.locality * splits;
        total += splits;
    }
    assert!(total > 0.0, "no splits processed at all");
    local / total
}

/// ≥1000 heterogeneous open-loop users complete through the service with
/// per-tenant queue-wait histograms, and the paper's FIFO-vs-Fair trade
/// (Section V-F: delay scheduling buys locality) reproduces at a scale
/// the 10-user testbed could not reach.
#[test]
fn thousand_user_open_loop_reproduces_the_fifo_vs_fair_trade() {
    let fifo = run_at_scale(Box::new(FifoScheduler::new()));
    let fair = run_at_scale(Box::new(FairScheduler::paper_default()));

    for report in [&fifo, &fair] {
        assert_eq!(report.total_users(), 1_100);
        assert!(report.total_completed() > 0);
        assert_eq!(report.tenants.len(), 3);
        for t in &report.tenants {
            assert!(t.completed > 0, "class {} completed nothing", t.name);
            assert_eq!(
                t.queue_wait.count(),
                t.completed,
                "class {} queue-wait histogram must cover every launch",
                t.name
            );
            assert!(t.response_secs.mean() > 0.0);
            assert_eq!(t.completed + t.rejected, t.submitted);
        }
        // The scan class reads its whole 8-partition copy every time.
        assert_eq!(report.tenants[2].splits_per_query.mean(), 8.0);
        // Sampling classes stop early: k records need < the full copy.
        assert!(report.tenants[0].splits_per_query.mean() < 12.0);
    }

    // Determinism at scale: the same seeds give the same report.
    let again = run_at_scale(Box::new(FairScheduler::paper_default()));
    for (a, b) in fair.tenants.iter().zip(&again.tenants) {
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.deferred, b.deferred);
        assert_eq!(
            a.response_secs.mean().to_bits(),
            b.response_secs.mean().to_bits()
        );
    }

    // The trade: the Fair Scheduler's delay scheduling achieves higher
    // data locality than FIFO's greedy slot-filling under contention.
    let (fifo_loc, fair_loc) = (aggregate_locality(&fifo), aggregate_locality(&fair));
    assert!(
        fair_loc > fifo_loc,
        "fair locality {:.3} !> fifo locality {:.3}",
        fair_loc,
        fifo_loc
    );
}

fn small_world(threads: u32) -> (MrRuntime, Arc<Dataset>) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(7);
    let spec = DatasetSpec::small("lineitem", 10, 5_000, SkewLevel::Moderate, 7);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_multi_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FairScheduler::paper_default()),
    );
    (rt, ds)
}

const SAMPLE: &str = "SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.99 LIMIT 12";

/// Admission control rejects at the queue-depth cap with a typed error
/// carrying the tenant, the observed depth, and the cap — and the
/// rejection lands on the trace plane.
#[test]
fn queue_depth_cap_rejects_with_typed_error_and_trace_event() {
    let (rt, ds) = small_world(1);
    let mut svc = QueryService::new(
        rt,
        ServiceConfig {
            max_in_flight_jobs: 1,
        },
    );
    svc.runtime_mut().enable_tracing();
    svc.register_table("lineitem", Arc::clone(&ds));
    let tenant = svc.add_tenant(TenantProfile {
        name: "capped".into(),
        max_in_flight: 1,
        queue_cap: 3,
        ..TenantProfile::default()
    });
    // 1 launches, 3 fill the queue to its cap, the 5th must bounce.
    for _ in 0..4 {
        assert!(matches!(
            svc.submit(tenant, SAMPLE),
            Ok(ServiceReply::Admitted(_))
        ));
    }
    let err = svc.submit(tenant, SAMPLE).unwrap_err();
    match err {
        ServiceError::Rejected {
            tenant: t,
            queued,
            cap,
        } => {
            assert_eq!(t, tenant);
            assert_eq!(queued, 3);
            assert_eq!(cap, 3);
        }
        other => panic!("expected Rejected, got {other}"),
    }
    assert_eq!(svc.tenant_stats(tenant).rejected, 1);
    svc.run_until_idle();
    let trace = svc.runtime_mut().take_trace();
    assert!(trace.iter().any(|e| matches!(
        e.kind,
        TraceKind::QueryRejected {
            tenant: 0,
            queued: 3
        }
    )));
    assert_eq!(svc.tenant_stats(tenant).completed, 4);
}

/// Under saturation the weighted-fair release converges to the
/// configured 3:1 share: of the first 24 admissions, the weight-3 tenant
/// gets 18 and the weight-1 tenant 6, in virtual-pass order.
#[test]
fn weighted_share_converges_to_three_to_one_under_saturation() {
    let (rt, ds) = small_world(1);
    let mut svc = QueryService::new(
        rt,
        ServiceConfig {
            max_in_flight_jobs: 1,
        },
    );
    svc.runtime_mut().enable_tracing();
    svc.register_table("lineitem", Arc::clone(&ds));
    let heavy = svc.add_tenant(TenantProfile {
        name: "heavy".into(),
        weight: 3,
        max_in_flight: 64,
        queue_cap: 64,
    });
    let light = svc.add_tenant(TenantProfile {
        name: "light".into(),
        weight: 1,
        max_in_flight: 64,
        queue_cap: 64,
    });
    // Saturate both backlogs before anything beyond the first job runs.
    for _ in 0..30 {
        svc.submit(heavy, SAMPLE).unwrap();
        svc.submit(light, SAMPLE).unwrap();
    }
    assert_eq!(svc.backlog(), 59); // one launched immediately
    svc.run_until_idle();
    let admitted: Vec<u32> = svc
        .runtime_mut()
        .take_trace()
        .into_iter()
        .filter_map(|e| match e.kind {
            TraceKind::QueryAdmitted { tenant, .. } => Some(tenant),
            _ => None,
        })
        .collect();
    assert_eq!(admitted.len(), 60, "every admitted query launches");
    let heavy_share = admitted
        .iter()
        .take(24)
        .filter(|&&t| t == heavy.0 as u32)
        .count();
    assert_eq!(
        heavy_share, 18,
        "weight 3:1 must admit 18 of the first 24 from the heavy tenant, got {heavy_share}"
    );
    // Once the heavy backlog drains the light tenant gets everything.
    assert_eq!(svc.tenant_stats(heavy).completed, 30);
    assert_eq!(svc.tenant_stats(light).completed, 30);
    // Queue waits were recorded under each tenant's own key.
    let mean = |h: &LogHistogram| h.sum() as f64 / h.count() as f64;
    let heavy_wait = svc.metrics().queue_wait("heavy").expect("heavy family");
    let light_wait = svc.metrics().queue_wait("light").expect("light family");
    assert_eq!(heavy_wait.count() + light_wait.count(), 60);
    assert!(
        mean(light_wait) > mean(heavy_wait),
        "the weight-1 tenant queues longer: {:.0}ms !> {:.0}ms",
        mean(light_wait),
        mean(heavy_wait)
    );
}

/// Everything observable about a multi-tenant service run at a given
/// data-plane thread count: results in ticket order, final counters, and
/// the full trace encoded to bytes.
fn service_fingerprint(threads: u32) -> (String, Vec<(u64, u64, u64)>, Vec<String>) {
    let (rt, ds) = small_world(threads);
    let mut svc = QueryService::new(
        rt,
        ServiceConfig {
            max_in_flight_jobs: 2,
        },
    );
    svc.runtime_mut().enable_tracing();
    svc.register_table("lineitem", Arc::clone(&ds));
    let a = svc.add_tenant(TenantProfile {
        name: "a".into(),
        weight: 2,
        max_in_flight: 2,
        queue_cap: 4,
    });
    let b = svc.add_tenant(TenantProfile {
        name: "b".into(),
        max_in_flight: 1,
        queue_cap: 2,
        ..TenantProfile::default()
    });
    let scan = "SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.99";
    let mut tickets = Vec::new();
    for _ in 0..4 {
        if let Ok(ServiceReply::Admitted(t)) = svc.submit(a, SAMPLE) {
            tickets.push(t);
        }
        if let Ok(ServiceReply::Admitted(t)) = svc.submit(b, scan) {
            tickets.push(t);
        }
    }
    // Tenant b's cap is 2: at least one of its submissions was rejected.
    assert!(svc.tenant_stats(b).rejected > 0);
    svc.run_until_idle();
    let rows: Vec<String> = tickets
        .iter()
        .map(|t| {
            let r = svc.take_result(t).expect("drained service has results");
            assert!(!r.failed);
            format!(
                "{:?}|{}ms|{}splits|{:?}",
                r.rows,
                r.response_time.as_millis(),
                r.splits_processed,
                r.outcome
            )
        })
        .collect();
    let stats: Vec<(u64, u64, u64)> = [a, b]
        .iter()
        .map(|&t| {
            let s = svc.tenant_stats(t);
            (s.completed, s.rejected, s.deferred)
        })
        .collect();
    let trace = encode_trace(&svc.runtime_mut().take_trace());
    (trace, stats, rows)
}

/// The service inherits the runtime's two-plane contract: admitted
/// results, counters, and the byte-encoded trace are identical at 1, 4,
/// and 8 data-plane threads.
#[test]
fn service_runs_are_byte_identical_across_thread_counts() {
    let serial = service_fingerprint(1);
    assert!(!serial.0.is_empty());
    for threads in [4, 8] {
        let run = service_fingerprint(threads);
        assert_eq!(
            run.0, serial.0,
            "service trace bytes diverged at {threads} threads"
        );
        assert_eq!(
            run.1, serial.1,
            "tenant counters diverged at {threads} threads"
        );
        assert_eq!(
            run.2, serial.2,
            "query results diverged at {threads} threads"
        );
    }
}
