//! Deterministic chaos suite: the cluster fault plane under ~50 seeded
//! schedules of node deaths, rejoins, stragglers, map/reduce attempt
//! faults, speculation, and blacklisting.
//!
//! Two properties are pinned for every schedule:
//!
//! 1. **Thread invariance** — the simulated run (result scalars, reduce
//!    output, full event trace, fault counters) is byte-identical at 1, 4,
//!    and 8 data-plane threads.
//! 2. **Fault-schedule invariance of output** — map output is a pure
//!    function of its block and the shuffle merges in task-id order, so
//!    every job that *survives* its schedule produces exactly the
//!    fault-free output; doomed jobs fail identically everywhere.

use std::collections::BTreeSet;
use std::sync::Arc;

use incmr::mapreduce::faults::unresolved_speculations;
use incmr::mapreduce::{
    ClusterFaultPlan, FaultMetrics, GuardrailMetrics, MemoMetrics, NodeOutage, SpeculationConfig,
    TaskId, TraceEvent, TraceKind,
};
use incmr::prelude::*;

/// `ClusterTopology::paper_cluster()` node count.
const NODES: u64 = 10;

#[derive(Clone, Copy)]
enum Kind {
    /// The paper's dynamic sampling job (MA policy, FirstK, k = 15).
    Sampling,
    /// A static full scan of the dataset.
    Scan,
}

/// Run one job under one fault schedule and return everything observable
/// about the simulated run.
fn run_sized(
    kind: Kind,
    threads: u32,
    plan: Option<&ClusterFaultPlan>,
    splits: u32,
    records: u64,
) -> (JobResult, Vec<TraceEvent>, FaultMetrics) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(17);
    let spec = DatasetSpec::small("t", splits, records, SkewLevel::Moderate, 17);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_tracing();
    if let Some(plan) = plan {
        rt.inject_cluster_faults(plan.clone())
            .expect("valid chaos plan");
    }
    let (job, driver): (JobSpec, Box<dyn incmr::mapreduce::GrowthDriver>) = match kind {
        Kind::Sampling => {
            let (job, driver) = build_sampling_job(
                &ds,
                15,
                Policy::ma(),
                ScanMode::Planted,
                SampleMode::FirstK,
                23,
            );
            (job, driver)
        }
        Kind::Scan => {
            let (job, driver) = build_scan_job(&ds, ScanMode::Planted);
            (job, driver)
        }
    };
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let result = rt.job_result(id).clone();
    let events = rt.take_trace();
    let faults = rt.metrics().faults();
    assert_obs_invariants(
        &result,
        &events,
        &faults,
        rt.metrics().guardrails(),
        rt.histograms(),
    );
    (result, events, faults)
}

/// Observability invariants checked on *every* chaos run, whatever the
/// schedule or thread count:
///
/// * trace timestamps never go backwards;
/// * every `SpeculativeLaunch` resolves — an `AttemptKilled` on the task,
///   the task's `MapFinished` commit, or the job's completion;
/// * fault and guard-rail counters recomputed from the exported trace
///   equal the runtime's live counters (restricted to the trace-derivable
///   fields);
/// * histogram sample counts recomputed from the trace equal the
///   `MetricsRegistry` snapshot, and the job's own registry equals the
///   runtime-wide one (these runs hold a single job).
fn assert_obs_invariants(
    result: &JobResult,
    events: &[TraceEvent],
    faults: &FaultMetrics,
    guards: GuardrailMetrics,
    registry: &MetricsRegistry,
) {
    for w in events.windows(2) {
        assert!(
            w[0].time <= w[1].time,
            "trace timestamps must be nondecreasing: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    assert_eq!(
        unresolved_speculations(events),
        Vec::new(),
        "an exported trace must leave no speculative race unresolved"
    );
    assert_eq!(
        FaultMetrics::from_trace(events),
        faults.derivable(),
        "fault counters recomputed from the trace must match the runtime"
    );
    assert_eq!(
        GuardrailMetrics::from_trace(events),
        guards.derivable(),
        "guard-rail counters recomputed from the trace must match the runtime"
    );

    let mut map_started = 0u64;
    let mut map_finished = 0u64;
    let mut speculative = 0u64;
    let mut shuffles = 0u64;
    let mut reduce_finished = 0u64;
    let mut started_tasks: BTreeSet<(JobId, TaskId)> = BTreeSet::new();
    for e in events {
        match e.kind {
            TraceKind::MapStarted { job, task, .. } => {
                map_started += 1;
                started_tasks.insert((job, task));
            }
            TraceKind::MapFinished { .. } => map_finished += 1,
            TraceKind::SpeculativeLaunch { .. } => speculative += 1,
            TraceKind::ShuffleReady { .. } => shuffles += 1,
            TraceKind::ReduceFinished { .. } => reduce_finished += 1,
            _ => {}
        }
    }
    assert_eq!(
        registry.map_attempt().count(),
        map_finished,
        "one map-attempt latency sample per MapFinished commit"
    );
    assert_eq!(
        registry.queue_wait_total().count(),
        map_started - speculative,
        "one queue-wait sample per non-speculative dispatch"
    );
    assert_eq!(
        registry.split_wait().count(),
        started_tasks.len() as u64,
        "one split-wait sample per task's first dispatch"
    );
    assert_eq!(
        registry.shuffle_merge().count(),
        shuffles,
        "one shuffle-merge latency sample per ShuffleReady"
    );
    assert_eq!(
        registry.reduce().count(),
        reduce_finished,
        "one reduce latency sample per ReduceFinished commit"
    );
    assert_eq!(
        &result.histograms, registry,
        "a single-job run's per-job registry must equal the runtime's"
    );
}

fn run(
    kind: Kind,
    threads: u32,
    plan: Option<&ClusterFaultPlan>,
) -> (JobResult, Vec<TraceEvent>, FaultMetrics) {
    run_sized(kind, threads, plan, 24, 3_000)
}

/// splitmix64: independent schedule knobs from one seed, without touching
/// the simulation's own rng streams.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive one fault schedule from a seed: up to two outages timed inside
/// the fault-free run (`horizon_ms`, with a 1-in-4 chance of never
/// rejoining), up to three straggler nodes at 0.4–1.0 speed, and modest
/// map/reduce attempt fault probabilities, with speculation and
/// blacklisting armed throughout.
fn chaos_plan(seed: u64, horizon_ms: u64) -> ClusterFaultPlan {
    let h = |i: u64| mix(seed.wrapping_mul(1_000_003).wrapping_add(i));
    let outages = (0..h(0) % 3)
        .map(|i| {
            let down = horizon_ms / 8 + h(10 + i) % horizon_ms;
            let up = down + horizon_ms / 4 + h(20 + i) % horizon_ms;
            NodeOutage {
                node: NodeId((h(30 + i) % NODES) as u16),
                down_at: SimTime::from_millis(down),
                up_at: (h(40 + i) % 4 != 0).then(|| SimTime::from_millis(up)),
            }
        })
        .collect();
    let node_speed = (0..h(1) % 4)
        .map(|i| 0.4 + (h(50 + i) % 61) as f64 / 100.0)
        .collect();
    ClusterFaultPlan {
        outages,
        node_speed,
        map_fault_probability: (h(2) % 12) as f64 / 100.0,
        reduce_fault_probability: (h(3) % 8) as f64 / 100.0,
        max_attempts: 4,
        speculation: Some(SpeculationConfig::default()),
        blacklist_threshold: Some(3),
        seed,
    }
}

/// The chaos matrix for one job kind: 50 seeded schedules, each at 1, 4,
/// and 8 threads.
fn chaos_matrix(kind: Kind) {
    let (baseline, _, _) = run(kind, 1, None);
    assert!(!baseline.failed, "the fault-free baseline must complete");
    let horizon = baseline.response_time().as_millis();
    let mut survived = 0u32;
    for seed in 0..50u64 {
        let plan = chaos_plan(seed, horizon);
        let (r1, t1, m1) = run(kind, 1, Some(&plan));
        for threads in [4, 8] {
            let (r, t, m) = run(kind, threads, Some(&plan));
            assert_eq!(
                r.failed, r1.failed,
                "job fate diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(
                r.response_time(),
                r1.response_time(),
                "simulated time diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(
                r.output, r1.output,
                "output diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(
                t, t1,
                "event timeline diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(
                m, m1,
                "fault counters diverged at {threads} threads (schedule {seed})"
            );
        }
        if !r1.failed {
            survived += 1;
            assert_eq!(
                r1.output, baseline.output,
                "a surviving job diverged from the fault-free output (schedule {seed})"
            );
        }
    }
    assert!(
        survived > 0,
        "every schedule doomed its job — the matrix proves nothing"
    );
}

#[test]
fn sampling_job_survives_fifty_chaos_schedules_exactly() {
    chaos_matrix(Kind::Sampling);
}

#[test]
fn full_scan_survives_fifty_chaos_schedules_exactly() {
    chaos_matrix(Kind::Scan);
}

/// The headline Hadoop semantic: killing a node *after* its map tasks
/// completed destroys their locally-stored output, so those maps must
/// re-execute — and the job must still produce the fault-free output.
#[test]
fn losing_a_node_after_its_maps_complete_forces_reexecution() {
    // 96 splits over 40 map slots gives several waves, so by mid-run the
    // dead node has completed maps whose output the shuffle still needs.
    let (baseline, _, _) = run_sized(Kind::Scan, 1, None, 96, 2_000);
    assert!(!baseline.failed);
    let plan = ClusterFaultPlan {
        outages: vec![NodeOutage {
            node: NodeId(3),
            down_at: SimTime::from_millis(baseline.response_time().as_millis() / 2),
            up_at: None,
        }],
        seed: 11,
        ..ClusterFaultPlan::default()
    };
    let (r, trace, m) = run_sized(Kind::Scan, 1, Some(&plan), 96, 2_000);
    assert!(!r.failed, "nine surviving nodes must finish the job");
    assert_eq!(m.nodes_lost, 1);
    assert!(
        m.maps_reexecuted > 0,
        "completed maps on the dead node must re-execute: {m:?}"
    );
    assert!(trace
        .iter()
        .any(|e| matches!(e.kind, TraceKind::NodeLost { node } if node == NodeId(3))));
    assert_eq!(
        r.output, baseline.output,
        "re-execution must reproduce the fault-free output exactly"
    );
}

/// A node that rejoins gets fresh slots and hosts new attempts.
#[test]
fn a_rejoined_node_hosts_attempts_again() {
    let (baseline, _, _) = run_sized(Kind::Scan, 1, None, 96, 2_000);
    let half = baseline.response_time().as_millis() / 2;
    let plan = ClusterFaultPlan {
        outages: vec![NodeOutage {
            node: NodeId(7),
            down_at: SimTime::from_millis(half / 2),
            up_at: Some(SimTime::from_millis(half)),
        }],
        seed: 3,
        ..ClusterFaultPlan::default()
    };
    let (r, trace, m) = run_sized(Kind::Scan, 1, Some(&plan), 96, 2_000);
    assert!(!r.failed);
    assert_eq!((m.nodes_lost, m.nodes_rejoined), (1, 1));
    let rejoined_at = trace
        .iter()
        .find(|e| matches!(e.kind, TraceKind::NodeRejoined { .. }))
        .map(|e| e.time)
        .expect("rejoin must be traced");
    assert!(
        trace.iter().any(|e| e.time > rejoined_at
            && matches!(e.kind, TraceKind::MapStarted { node, .. } if node == NodeId(7))),
        "the rejoined node must host map attempts again"
    );
    assert_eq!(r.output, baseline.output);
}

/// A quarter-speed straggler node triggers speculative execution once the
/// pending queue drains, and the backup attempts change nothing about the
/// output.
#[test]
fn a_straggler_node_draws_speculative_attempts() {
    // 200k records per split makes maps CPU-bound (~5 s of CPU against
    // ~1 s of fixed overhead), so a quarter-speed node genuinely lags.
    let (baseline, _, _) = run_sized(Kind::Scan, 1, None, 48, 200_000);
    let plan = ClusterFaultPlan {
        node_speed: vec![0.25],
        speculation: Some(SpeculationConfig::default()),
        seed: 5,
        ..ClusterFaultPlan::default()
    };
    let (r, trace, m) = run_sized(Kind::Scan, 1, Some(&plan), 48, 200_000);
    assert!(!r.failed);
    assert!(
        m.speculative_launched > 0,
        "a quarter-speed node must trip the slowdown threshold: {m:?}"
    );
    assert!(trace
        .iter()
        .any(|e| matches!(e.kind, TraceKind::SpeculativeLaunch { .. })));
    assert_eq!(
        r.output, baseline.output,
        "speculation must never change the output"
    );
}

/// Reduce attempts fault and retry on fresh slots without perturbing the
/// committed output.
#[test]
fn reduce_attempt_faults_retry_without_corrupting_output() {
    let (baseline, _, _) = run(Kind::Scan, 1, None);
    let plan = ClusterFaultPlan {
        reduce_fault_probability: 0.7,
        max_attempts: 10,
        seed: 19,
        ..ClusterFaultPlan::default()
    };
    let (r, trace, m) = run(Kind::Scan, 1, Some(&plan));
    assert!(!r.failed);
    assert!(
        m.reduce_failures > 0,
        "a 0.7 fault rate must fail at least one reduce attempt: {m:?}"
    );
    assert!(trace
        .iter()
        .any(|e| matches!(e.kind, TraceKind::ReduceFailed { .. })));
    assert_eq!(r.output, baseline.output);
}

/// Repeated counted failures on one node blacklist it for the job; the
/// job routes around the ban and still commits the exact output.
#[test]
fn repeated_failures_blacklist_a_node_without_corrupting_output() {
    let (baseline, _, _) = run(Kind::Scan, 1, None);
    let plan = ClusterFaultPlan {
        map_fault_probability: 0.3,
        max_attempts: 20,
        blacklist_threshold: Some(2),
        seed: 13,
        ..ClusterFaultPlan::default()
    };
    let (r, trace, m) = run(Kind::Scan, 1, Some(&plan));
    assert!(!r.failed);
    assert!(
        m.nodes_blacklisted > 0,
        "a 0.3 fault rate against threshold 2 must ban a node: {m:?}"
    );
    assert!(trace
        .iter()
        .any(|e| matches!(e.kind, TraceKind::NodeBlacklisted { .. })));
    assert_eq!(r.output, baseline.output);
}

/// A schedule hostile enough to doom the job fails it deterministically:
/// same fate, same timeline, same counters at every thread count.
#[test]
fn doomed_schedules_fail_identically_at_every_thread_count() {
    let plan = ClusterFaultPlan {
        map_fault_probability: 0.9,
        max_attempts: 2,
        seed: 41,
        ..ClusterFaultPlan::default()
    };
    let (r1, t1, m1) = run(Kind::Scan, 1, Some(&plan));
    assert!(
        r1.failed,
        "0.9 per-attempt faults against a 2-attempt budget must doom the job"
    );
    for threads in [4, 8] {
        let (r, t, m) = run(Kind::Scan, threads, Some(&plan));
        assert!(r.failed);
        assert_eq!(r.response_time(), r1.response_time());
        assert_eq!(t, t1, "failure timeline diverged at {threads} threads");
        assert_eq!(m, m1);
    }
}

/// The observability invariants (`assert_obs_invariants`, run inside every
/// chaos execution above — all 50 schedules at 1/4/8 threads for both job
/// kinds) are only worth their keep if the schedules actually exercise
/// them. This directed schedule guarantees the interesting paths fire:
/// speculation (so the race-resolution scan has races to settle), map and
/// reduce faults (so re-dispatch hits the queue-wait and attempt-latency
/// accounting), and it restates the headline counter equalities visibly.
#[test]
fn obs_invariants_are_not_vacuous_under_an_eventful_schedule() {
    let plan = ClusterFaultPlan {
        node_speed: vec![1.0, 1.0, 0.25],
        map_fault_probability: 0.2,
        reduce_fault_probability: 0.5,
        max_attempts: 8,
        speculation: Some(SpeculationConfig::default()),
        blacklist_threshold: Some(2),
        seed: 9,
        ..ClusterFaultPlan::default()
    };
    let (r, trace, m) = run_sized(Kind::Scan, 1, Some(&plan), 48, 200_000);
    assert!(!r.failed);
    assert!(
        m.speculative_launched > 0,
        "the straggler must draw speculative attempts: {m:?}"
    );
    let count = |f: &dyn Fn(&TraceKind) -> bool| trace.iter().filter(|e| f(&e.kind)).count() as u64;
    assert!(count(&|k| matches!(k, TraceKind::SpeculativeLaunch { .. })) > 0);
    assert!(count(&|k| matches!(k, TraceKind::MapFailed { .. })) > 0);
    assert!(count(&|k| matches!(k, TraceKind::ReduceFailed { .. })) > 0);
    // The headline equalities, restated on the returned per-job registry:
    // latency samples are recomputable from the exported trace alone.
    assert_eq!(
        r.histograms.map_attempt().count(),
        count(&|k| matches!(k, TraceKind::MapFinished { .. }))
    );
    assert_eq!(
        r.histograms.queue_wait_total().count(),
        count(&|k| matches!(k, TraceKind::MapStarted { .. }))
            - count(&|k| matches!(k, TraceKind::SpeculativeLaunch { .. }))
    );
    assert_eq!(
        r.histograms.reduce().count(),
        count(&|k| matches!(k, TraceKind::ReduceFinished { .. }))
    );
}

/// An Input Provider's view of the cluster must track node death: dead
/// nodes drop out of `total_map_slots` entirely (no phantom capacity, no
/// wrap-around from the occupied/total race), and the provider keeps
/// being consulted on the shrunken cluster until it gathers its sample.
#[test]
fn provider_observes_only_alive_node_capacity_after_a_node_dies() {
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Wraps the real sampling provider and records every cluster
    /// snapshot it is shown.
    struct Observing {
        inner: SamplingInputProvider,
        seen: Rc<RefCell<Vec<ClusterStatus>>>,
    }

    impl InputProvider for Observing {
        fn initial_input(&mut self, cluster: &ClusterStatus, grab: u64) -> Vec<BlockId> {
            self.seen.borrow_mut().push(*cluster);
            self.inner.initial_input(cluster, grab)
        }

        fn next_input(&mut self, ctx: EvalContext<'_>) -> InputResponse {
            self.seen.borrow_mut().push(*ctx.cluster);
            self.inner.next_input(ctx)
        }

        fn remaining(&self) -> usize {
            self.inner.remaining()
        }
    }

    // Same seed twice → two identical worlds (the dataset layout is a pure
    // function of the seed); the first gives the fault-free horizon.
    let make_world = || {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(17);
        let spec = DatasetSpec::small("t", 40, 10_000, SkewLevel::Zero, 17);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            spec,
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        (rt, ds)
    };
    let k = 150;
    let horizon = {
        let (mut rt, ds) = make_world();
        let (job, driver) = build_sampling_job(
            &ds,
            k,
            Policy::la(),
            ScanMode::Planted,
            SampleMode::FirstK,
            23,
        );
        let id = rt.submit(job, driver);
        rt.run_until_idle();
        assert!(!rt.job_result(id).failed);
        rt.job_result(id).response_time().as_millis()
    };

    let (mut rt, ds) = make_world();
    rt.inject_cluster_faults(ClusterFaultPlan {
        outages: vec![NodeOutage {
            node: NodeId(4),
            down_at: SimTime::from_millis(horizon / 4),
            up_at: None, // never rejoins: all later snapshots see 9 nodes
        }],
        seed: 29,
        ..ClusterFaultPlan::default()
    })
    .expect("valid plan");
    let (job, _discarded) = build_sampling_job(
        &ds,
        k,
        Policy::la(),
        ScanMode::Planted,
        SampleMode::FirstK,
        23,
    );
    let blocks: Vec<_> = ds.splits().iter().map(|p| p.block).collect();
    let total = blocks.len() as u32;
    let seen = Rc::new(RefCell::new(Vec::new()));
    let driver = Box::new(DynamicDriver::new(
        Box::new(Observing {
            inner: SamplingInputProvider::new(blocks, k, 23),
            seen: Rc::clone(&seen),
        }),
        Policy::la(),
        total,
    ));
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let r = rt.job_result(id);
    assert!(!r.failed, "nine nodes still gather the sample");
    assert_eq!(r.output.len() as u64, k);

    let seen = seen.borrow();
    assert!(seen.len() >= 2, "provider consulted across the outage");
    for s in seen.iter() {
        assert!(
            s.total_map_slots == 40 || s.total_map_slots == 36,
            "TS must be 10 or 9 alive nodes' worth, got {}",
            s.total_map_slots
        );
        assert!(
            s.available_map_slots() <= s.total_map_slots,
            "AS can never exceed TS"
        );
    }
    assert!(
        seen.iter().any(|s| s.total_map_slots == 36),
        "at least one consultation must see the shrunken cluster"
    );
}

// ---------------------------------------------------------------------------
// Incremental mode under chaos
// ---------------------------------------------------------------------------

/// A sample target no dataset here can satisfy, so the requery consumes
/// every split (the Hadoop policy grabs the whole pool upfront) and
/// materialises every matching row — output that actually reflects split
/// content, unlike the unmaterialised scan.
fn sample_everything(ds: &Arc<Dataset>) -> (JobSpec, Box<dyn incmr::mapreduce::GrowthDriver>) {
    let (job, driver) = build_sampling_job(
        ds,
        1 << 40,
        Policy::hadoop(),
        ScanMode::Planted,
        SampleMode::FirstK,
        23,
    );
    (job, driver)
}

/// The fixed evolve schedule for the incremental chaos runs: rewrite a
/// spread of initial splits, then append fresh ones.
fn evolve_world(
    rt: &mut MrRuntime,
    ds: &Arc<Dataset>,
    placement: &mut EvenRoundRobin,
    rng: &mut DetRng,
) {
    let splits = ds.splits();
    let blocks: Vec<BlockId> = [1usize, 5, 9, 14]
        .iter()
        .map(|&i| splits[i].block)
        .collect();
    rt.evolve(|ns| ds.mutate(ns, &blocks, placement, rng));
    rt.evolve(|ns| ds.append(ns, 3, placement, rng));
}

/// One incremental session under one fault schedule: a priming run to
/// populate the memo store, the evolve schedule, then the warm requery.
/// Returns the warm result, whether the priming run survived, and
/// everything observable about the whole session.
fn run_incremental(
    threads: u32,
    plan: Option<&ClusterFaultPlan>,
) -> (JobResult, bool, Vec<TraceEvent>, FaultMetrics, MemoMetrics) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(17);
    let mut placement = EvenRoundRobin::new();
    let spec = DatasetSpec::small("t", 24, 3_000, SkewLevel::Moderate, 17);
    let ds = Arc::new(Dataset::build(&mut ns, spec, &mut placement, &mut rng));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_tracing();
    rt.enable_memoization();
    if let Some(plan) = plan {
        rt.inject_cluster_faults(plan.clone())
            .expect("valid chaos plan");
    }
    let (job, driver) = sample_everything(&ds);
    let prime = rt.submit(job, driver);
    rt.run_until_idle();
    evolve_world(&mut rt, &ds, &mut placement, &mut rng);
    let (job, driver) = sample_everything(&ds);
    let warm = rt.submit(job, driver);
    rt.run_until_idle();
    let result = rt.job_result(warm).clone();
    let primed = !rt.job_result(prime).failed;
    (
        result,
        primed,
        rt.take_trace(),
        rt.metrics().faults(),
        rt.metrics().memo(),
    )
}

/// The fault-free cold truth on the *final* dataset state: same build,
/// same evolve schedule, one job, no memoization anywhere.
fn incremental_baseline() -> JobResult {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(17);
    let mut placement = EvenRoundRobin::new();
    let spec = DatasetSpec::small("t", 24, 3_000, SkewLevel::Moderate, 17);
    let ds = Arc::new(Dataset::build(&mut ns, spec, &mut placement, &mut rng));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    evolve_world(&mut rt, &ds, &mut placement, &mut rng);
    let (job, driver) = sample_everything(&ds);
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    rt.job_result(id).clone()
}

/// Seeded chaos schedules against incremental sessions: the whole session
/// (priming run, evolve, warm requery) is byte-identical at 1/4/8 threads
/// — traces, fault counters, *and memo counters* — and every warm requery
/// that survives its schedule produces exactly the fault-free cold output
/// on the final dataset state, cached entries or not.
#[test]
fn incremental_warm_runs_survive_chaos_schedules_exactly() {
    let baseline = incremental_baseline();
    assert!(!baseline.failed, "the fault-free baseline must complete");
    let (free, _, free_trace, _, free_memo) = run_incremental(1, None);
    assert!(!free.failed);
    assert_eq!(
        free.output, baseline.output,
        "fault-free warm requery must equal the cold baseline"
    );
    assert!(
        free_memo.splits_reused > 0,
        "the fault-free warm run must actually reuse: {free_memo:?}"
    );
    let horizon = (free_trace.last().expect("nonempty trace").time - SimTime::ZERO).as_millis();
    let mut survived = 0u32;
    for seed in 0..10u64 {
        let plan = chaos_plan(seed, horizon);
        let (r1, p1, t1, f1, m1) = run_incremental(1, Some(&plan));
        for threads in [4, 8] {
            let (r, p, t, f, m) = run_incremental(threads, Some(&plan));
            assert_eq!(
                (r.failed, p),
                (r1.failed, p1),
                "job fates diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(
                r.output, r1.output,
                "warm output diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(
                t, t1,
                "event timeline diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(
                f, f1,
                "fault counters diverged at {threads} threads (schedule {seed})"
            );
            assert_eq!(
                m, m1,
                "memo counters diverged at {threads} threads (schedule {seed})"
            );
        }
        if !r1.failed {
            survived += 1;
            assert_eq!(
                r1.output, baseline.output,
                "a surviving warm requery diverged from the fault-free cold \
                 output (schedule {seed})"
            );
        }
    }
    assert!(
        survived > 0,
        "every schedule doomed its warm requery — the matrix proves nothing"
    );
}

/// The headline invalidation semantic: cached map output lives on the
/// node that computed it, so killing that node mid-requery destroys its
/// entries and the affected splits must fall back to real recomputation —
/// and the requery still commits the exact fault-free output.
#[test]
fn node_death_destroys_cached_output_and_the_warm_requery_recomputes() {
    let (free, _, free_trace, _, free_memo) = run_incremental(1, None);
    assert!(!free.failed);
    let at = |pred: &dyn Fn(&TraceKind) -> bool| {
        free_trace
            .iter()
            .find(|e| pred(&e.kind))
            .expect("event present in the fault-free trace")
            .time
    };
    let submit = at(&|k| matches!(k, TraceKind::JobSubmitted { job } if *job == JobId(1)));
    let done = at(&|k| matches!(k, TraceKind::JobCompleted { job, .. } if *job == JobId(1)));
    // A quarter of the way into the warm window: reused splits are still
    // being replayed when the node dies.
    let s_ms = (submit - SimTime::ZERO).as_millis();
    let d_ms = (done - SimTime::ZERO).as_millis();
    let plan = ClusterFaultPlan {
        outages: vec![NodeOutage {
            node: NodeId(3),
            down_at: SimTime::from_millis(s_ms + (d_ms - s_ms) / 4),
            up_at: None,
        }],
        seed: 11,
        ..ClusterFaultPlan::default()
    };
    let (r, primed, _, faults, memo) = run_incremental(1, Some(&plan));
    assert!(primed, "the outage must postdate the priming run");
    assert!(!r.failed, "nine surviving nodes must finish the requery");
    assert_eq!(faults.nodes_lost, 1);
    assert!(
        memo.entries_invalidated > 0,
        "the dead node's cached map output must be discarded: {memo:?}"
    );
    assert!(
        memo.splits_computed > free_memo.splits_computed,
        "invalidated splits must fall back to recomputation \
         (fault-free computed {}, got {:?})",
        free_memo.splits_computed,
        memo
    );
    assert_eq!(
        r.output, free.output,
        "recomputation must reproduce the fault-free output exactly"
    );
}
