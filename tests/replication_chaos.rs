//! Replication chaos suite: DataNode-death semantics under one directed
//! fault schedule, swept across replication factors and thread counts.
//!
//! The property pinned here is the **survival cliff**: with the identical
//! node death,
//!
//! * `r = 1` loses input blocks with the node and fails with the typed
//!   [`JobError::InputLost`] — never a wedge or a panic — after first
//!   re-executing the completed maps it could still hope to recover;
//! * `r >= 2` survives, produces output byte-identical to the fault-free
//!   run at 1, 4, and 8 data-plane threads, and re-executes strictly
//!   fewer maps than `r = 1` because completed maps whose block survives
//!   on another replica are spared.

use std::sync::Arc;

use incmr::dfs::ReplicatedPlacement;
use incmr::mapreduce::{keys, ClusterFaultPlan, FaultMetrics, NodeOutage, ReplicaMetrics};
use incmr::prelude::*;

/// Re-replication daemon period for every armed run.
const REPAIR: SimDuration = SimDuration::from_secs(5);

/// Splits in the chaos dataset — 96 over 40 map slots gives several
/// waves, so a mid-run death finds both completed and pending maps.
const SPLITS: u32 = 96;

/// Run the full scan once on a rack-aware replicated world with data-loss
/// semantics (and the repair daemon) armed, under an optional outage.
fn run_replicated(
    replication: u8,
    threads: u32,
    outage: Option<NodeOutage>,
    allow_partial: bool,
) -> (JobResult, Vec<TraceEvent>, ReplicaMetrics, FaultMetrics) {
    let topology = ClusterTopology::paper_cluster().with_racks(2);
    let mut ns = Namespace::new(topology);
    let mut rng = DetRng::seed_from(17);
    let spec = DatasetSpec::small("t", SPLITS, 2_000, SkewLevel::Moderate, 17);
    let mut placement = ReplicatedPlacement::try_rack_aware(replication, &topology)
        .expect("factor fits the 2-rack paper cluster");
    let ds = Arc::new(Dataset::build(&mut ns, spec, &mut placement, &mut rng));
    let mut cfg =
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads));
    cfg.topology = topology;
    let mut rt = MrRuntime::new(
        cfg,
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_data_loss();
    rt.enable_re_replication(REPAIR).expect("nonzero interval");
    rt.enable_tracing();
    if let Some(outage) = outage {
        rt.inject_cluster_faults(ClusterFaultPlan {
            outages: vec![outage],
            seed: 11,
            ..ClusterFaultPlan::default()
        })
        .expect("valid plan");
    }
    // A sampling job needing every match in the dataset: it must process
    // all splits, and its reduce output is real rows — so fault-free vs
    // chaos output comparisons are byte-meaningful.
    let (mut job, driver) = build_sampling_job(
        &ds,
        ds.total_matching(),
        Policy::hadoop(),
        ScanMode::Planted,
        SampleMode::FirstK,
        23,
    );
    if allow_partial {
        job.conf.set(keys::ALLOW_PARTIAL, true);
    }
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let result = rt.job_result(id).clone();
    let events = rt.take_trace();
    let replica = rt.metrics().replica();
    let faults = rt.metrics().faults();
    for w in events.windows(2) {
        assert!(
            w[0].time <= w[1].time,
            "trace timestamps must be nondecreasing"
        );
    }
    assert_eq!(
        ReplicaMetrics::from_trace(&events),
        replica.derivable(),
        "replica counters recomputed from the trace must match the runtime"
    );
    (result, events, replica, faults)
}

/// The one death every test below injects: node 0 (primary holder of
/// every `block % 10 == 0`) dies at 60% of the r=1 fault-free horizon
/// and never rejoins.
fn directed_outage() -> NodeOutage {
    let (baseline, _, _, _) = run_replicated(1, 1, None, false);
    assert!(!baseline.failed, "fault-free r=1 run must complete");
    NodeOutage {
        node: NodeId(0),
        down_at: SimTime::from_millis(baseline.response_time().as_millis() * 6 / 10),
        up_at: None,
    }
}

#[test]
fn survival_cliff_sits_between_r1_and_r2() {
    let outage = directed_outage();

    // r = 1: the death takes the only copy of pending blocks with it.
    let (r1, trace1, replica1, faults1) = run_replicated(1, 1, Some(outage), false);
    assert!(r1.failed, "r=1 cannot survive losing a DataNode");
    let Some(JobError::InputLost { ref blocks }) = r1.error else {
        panic!("expected the typed InputLost error, got {:?}", r1.error);
    };
    assert!(!blocks.is_empty(), "the error names the lost blocks");
    assert!(r1.output.is_empty(), "a failed job materialises nothing");
    assert_eq!(replica1.input_lost_jobs, 1);
    assert!(replica1.blocks_lost > 0);
    assert!(
        faults1.maps_reexecuted > 0,
        "completed maps on the dead node re-execute before the loss is fatal: {faults1:?}"
    );
    assert!(trace1.iter().any(|e| matches!(
        e.kind,
        TraceKind::InputLost {
            graceful: false,
            ..
        }
    )));

    // r = 2 and r = 3: the same death is survivable, byte-identically to
    // the fault-free run, at every thread count.
    for replication in [2, 3] {
        let (baseline, _, _, _) = run_replicated(replication, 1, None, false);
        assert!(!baseline.failed);
        let (survivor, _, replica, faults) = run_replicated(replication, 1, Some(outage), false);
        assert!(!survivor.failed, "r={replication} must survive the death");
        assert_eq!(
            survivor.output, baseline.output,
            "r={replication}: recovery must reproduce the fault-free output exactly"
        );
        assert_eq!(
            faults.maps_reexecuted, 0,
            "r={replication}: no completed map should re-execute — its block survives"
        );
        assert!(
            faults.maps_reexecuted < faults1.maps_reexecuted,
            "r={replication} must re-execute strictly fewer maps than r=1"
        );
        assert!(
            replica.reexecutions_avoided > 0,
            "r={replication}: the replica fast path must spare completed maps: {replica:?}"
        );
        assert_eq!(replica.blocks_lost, 0, "every block keeps a live copy");
        assert_eq!(replica.input_lost_jobs, 0);
        assert!(
            replica.replicas_restored > 0,
            "the daemon must repair under-replication: {replica:?}"
        );

        // Thread invariance of the chaos run itself.
        let scalars = |r: &JobResult| {
            (
                r.splits_processed,
                r.records_processed,
                r.map_output_records,
                r.failed,
                r.finish_time,
            )
        };
        for threads in [4, 8] {
            let (rt_n, trace_n, replica_n, faults_n) =
                run_replicated(replication, threads, Some(outage), false);
            assert_eq!(
                scalars(&rt_n),
                scalars(&survivor),
                "r={replication}: scalars differ at {threads} threads"
            );
            assert_eq!(rt_n.output, survivor.output);
            assert_eq!(replica_n, replica);
            assert_eq!(faults_n, faults);
            let (_, trace_1, _, _) = run_replicated(replication, 1, Some(outage), false);
            assert_eq!(
                trace_n, trace_1,
                "r={replication}: trace differs at {threads} threads"
            );
        }
    }
}

#[test]
fn r1_with_allow_partial_degrades_instead_of_failing() {
    let outage = directed_outage();
    let (baseline, _, _, _) = run_replicated(1, 1, None, false);
    let (partial, trace, replica, _) = run_replicated(1, 1, Some(outage), true);
    assert!(
        !partial.failed,
        "allow_partial turns input loss into a degraded completion"
    );
    assert!(partial.error.is_none());
    assert!(
        partial.splits_processed < baseline.splits_processed,
        "the lost splits are abandoned, not processed: {} vs {}",
        partial.splits_processed,
        baseline.splits_processed
    );
    assert!(
        !partial.output.is_empty() && partial.output.len() < baseline.output.len(),
        "the surviving splits' matches are kept as a partial sample: {} of {}",
        partial.output.len(),
        baseline.output.len()
    );
    assert_eq!(replica.input_lost_jobs, 1);
    assert!(trace
        .iter()
        .any(|e| matches!(e.kind, TraceKind::InputLost { graceful: true, .. })));
}

/// A rejoined DataNode comes back empty (its replicas died with it): only
/// the re-replication daemon restores copies, and the job still finishes
/// with the fault-free output.
#[test]
fn a_rejoined_datanode_comes_back_empty_and_is_repaired() {
    let mut outage = directed_outage();
    outage.up_at = Some(SimTime::from_millis(outage.down_at.as_millis() * 3 / 2));
    let (baseline, _, _, _) = run_replicated(2, 1, None, false);
    let (r, trace, replica, _) = run_replicated(2, 1, Some(outage), false);
    assert!(!r.failed);
    assert_eq!(r.output, baseline.output);
    assert!(replica.replicas_lost > 0);
    assert!(
        replica.replicas_restored > 0,
        "repair must refill the cluster: {replica:?}"
    );
    let rejoined_at = trace
        .iter()
        .find(|e| matches!(e.kind, TraceKind::NodeRejoined { .. }))
        .map(|e| e.time)
        .expect("rejoin must be traced");
    assert!(
        trace.iter().any(|e| e.time >= rejoined_at
            && matches!(e.kind, TraceKind::ReplicaRestored { node, .. } if node == NodeId(0))),
        "the empty rejoined node is a valid re-replication target"
    );
}
