//! Golden observability report: one fixed-seed *dynamic sampling* job
//! under the eventful cluster-fault schedule produces one exact swimlane
//! timeline, provider-decision audit log, and histogram snapshot,
//! committed to the repository — and the whole report is byte-identical
//! at 1, 4, and 8 data-plane threads.
//!
//! After an *intentional* behaviour change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_obs
//! ```
//!
//! and review the diff like any other code change.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use incmr::mapreduce::{ClusterFaultPlan, NodeOutage, SpeculationConfig};
use incmr::prelude::*;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/obs_timeline.txt")
}

/// The same schedule the fault-plane golden trace pins (node death and
/// rejoin, a 0.3× straggler, frequent map faults, flaky reduces), so the
/// observability report covers retries, speculation, and blacklisting.
fn eventful_plan() -> ClusterFaultPlan {
    ClusterFaultPlan {
        outages: vec![NodeOutage {
            node: NodeId(5),
            down_at: SimTime::from_secs(10),
            up_at: Some(SimTime::from_secs(25)),
        }],
        node_speed: vec![1.0, 1.0, 0.3],
        map_fault_probability: 0.18,
        reduce_fault_probability: 0.7,
        max_attempts: 8,
        speculation: Some(SpeculationConfig::default()),
        blacklist_threshold: Some(2),
        seed: 9,
    }
}

struct GoldenRun {
    report: String,
    audited_splits: u32,
    trace_splits_added: u32,
    splits_processed: u32,
}

/// One dynamic sampling job whose `k` exceeds the planted matches: the
/// provider walks the entire 48-split pool incrementally (many audited
/// evaluations) and the job completes with a partial sample.
fn render_run_at(threads: u32) -> GoldenRun {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(17);
    let spec = DatasetSpec::small("t", 48, 200_000, SkewLevel::Moderate, 17);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let total_matches = ds.total_matching();
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    rt.enable_tracing();
    rt.enable_audit();
    rt.inject_cluster_faults(eventful_plan())
        .expect("valid plan");
    let (job, driver) = incmr::core::build_sampling_job(
        &ds,
        total_matches + 1_000, // unreachable k: the pool must exhaust
        Policy::ma(),
        ScanMode::Planted,
        SampleMode::FirstK,
        17,
    );
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let (failed, output_len, splits_processed) = {
        let result = rt.job_result(id);
        (result.failed, result.output.len(), result.splits_processed)
    };
    assert!(!failed, "the golden run must complete");
    assert!(
        (output_len as u64) < total_matches + 1_000,
        "the golden run must end as a partial sample"
    );

    let events = rt.take_trace();
    let audit = rt.audit_log();
    let report = format!(
        "{}\nPROVIDER DECISIONS ({} evaluations)\n{}\n{}",
        render_swimlanes(&events, 64),
        audit.len(),
        render_audit(audit),
        rt.histograms().render(),
    );
    let trace_splits_added = events
        .iter()
        .map(|e| match e.kind {
            TraceKind::InputAdded { splits, .. } => splits,
            _ => 0,
        })
        .sum();
    GoldenRun {
        report,
        audited_splits: audited_splits_added(audit, id),
        trace_splits_added,
        splits_processed,
    }
}

#[test]
fn obs_report_matches_golden_file_at_every_thread_count() {
    let runs: Vec<GoldenRun> = [1u32, 4, 8].iter().map(|&t| render_run_at(t)).collect();
    for (run, threads) in runs.iter().zip([1, 4, 8]).skip(1) {
        assert_eq!(
            runs[0].report, run.report,
            "observability report differs at {threads} data-plane threads"
        );
    }
    let got = &runs[0].report;
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, got).expect("write golden obs report");
        return;
    }
    let want = fs::read_to_string(&path)
        .expect("tests/golden/obs_timeline.txt missing — generate it with UPDATE_GOLDEN=1");
    assert_eq!(
        got, &want,
        "observability report diverged from tests/golden/obs_timeline.txt; \
         if the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// The audit log is the job's growth history: splits granted per
/// evaluation must sum to exactly what the runtime added (trace view) and
/// processed (result view). A drift here means the audit lies.
#[test]
fn audited_splits_match_runtime_progress_exactly() {
    let run = render_run_at(1);
    assert!(run.audited_splits > 0);
    assert_eq!(run.audited_splits, run.trace_splits_added);
    assert_eq!(run.audited_splits, run.splits_processed);
}

/// Coverage guard: the golden scenario must keep populating every
/// histogram family and every audit-line field — a "matching" golden file
/// that lost its coverage would guard nothing.
#[test]
fn golden_report_covers_every_family_and_audit_field() {
    let got = render_run_at(1).report;
    for family in [
        "map_attempt_ms",
        "shuffle_merge_ms",
        "reduce_ms",
        "provider_eval_interval_ms",
        "queue_wait_ms[fifo]",
        "split_wait_ms",
    ] {
        assert!(got.contains(family), "family {family} missing from report");
        assert!(
            !got.contains(&format!("{family}: count=0")),
            "family {family} recorded nothing"
        );
    }
    for field in [
        "stage=",
        "added=",
        "completed=",
        "running=",
        "pending=",
        "records=",
        "matches=",
        "slots=",
        "busy=",
        "jobs=",
        "queued=",
        "grab_limit=",
        "directive=",
        "requested=",
        "granted=",
        "clamped=",
        "dups=",
        "retried=",
    ] {
        assert!(
            got.contains(field),
            "audit field {field} missing from report"
        );
    }
    // Both provider stages appear: the submission-time initial grab and
    // the periodic evaluations.
    assert!(got.contains("initial_input") || got.contains("InitialInput"));
    assert!(got.contains("evaluate") || got.contains("Evaluate"));
}
