//! Offline vendored subset of the `criterion` API.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors the benchmark surface it uses: `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size` / `throughput` / `bench_with_input` /
//! `finish`), `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a small measurement window, and
//! the mean ns/iter is reported on stdout. There are no statistical
//! comparisons against saved baselines. Results can also be exported as JSON
//! via [`Criterion::write_json`] for benches that track numbers in-repo.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimiser from deleting benchmarked
/// work. Uses a volatile read, like `std::hint::black_box` pre-stabilisation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark name built from a function name and/or a parameter, as in
/// upstream `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkName {
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for &String {
    fn into_name(self) -> String {
        self.clone()
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.id
    }
}

/// Units for a group's throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub mean_ns: f64,
    pub iterations: u64,
}

/// The benchmark driver.
pub struct Criterion {
    results: Vec<BenchResult>,
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(1_500),
        }
    }
}

impl Criterion {
    /// Upstream parses CLI filters here; this shim runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let name = name.into_name();
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            result: None,
        };
        f(&mut b);
        let (mean_ns, iterations) = b.result.unwrap_or((f64::NAN, 0));
        println!(
            "{name:<56} {:>14}/iter ({iterations} iters)",
            format_ns(mean_ns)
        );
        self.results.push(BenchResult {
            name,
            mean_ns,
            iterations,
        });
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serialise results as a JSON array (name, mean_ns, iterations).
    pub fn to_json(&self) -> String {
        let mut s = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "  {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{comma}",
                r.name.replace('"', "\\\""),
                r.mean_ns,
                r.iterations
            );
        }
        s.push_str("]\n");
        s
    }

    /// Write [`Criterion::to_json`] to a file.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// A named benchmark group; settings are accepted for API compatibility.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measure = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into_name());
        self.criterion.bench_function(full, f);
        self
    }

    pub fn bench_with_input<N, I, F>(&mut self, name: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkName,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(name, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Handed to each benchmark closure; `iter` performs the measurement.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    result: Option<(f64, u64)>,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Measure over a batch sized to fill the measurement window.
        let target =
            ((self.measure.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.result = Some((elapsed.as_nanos() as f64 / target as f64, target));
    }
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
        }
    };
}
