//! Case driving and deterministic per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG handed to strategies while generating one test case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying generator (for strategies that use `rand::Rng`).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }

    /// A raw 64-bit draw (for `any::<integer>()`).
    pub fn next_u64_raw(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }
}

/// Runner configuration. Only the case count is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Run `f` once per case with an RNG derived from the test name and case
/// index: deterministic across runs and machines, distinct across tests.
pub fn run_cases(cfg: ProptestConfig, name: &str, mut f: impl FnMut(&mut TestRng)) {
    let name_hash = fnv1a(name.as_bytes());
    for case in 0..cfg.cases {
        let mut rng = TestRng::from_seed(
            name_hash ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)),
        );
        f(&mut rng);
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
