//! Generation of strings matching a small regex subset.
//!
//! Supported syntax (everything this workspace's patterns use):
//! * literal characters;
//! * `[...]` character classes with single chars and `a-z` ranges;
//! * `\PC` — any printable, non-control character (a spread of ASCII plus a
//!   few multi-byte code points to stress parsers);
//! * repetition of the previous atom: `{m}`, `{m,n}`, `*` (0–8), `+` (1–8),
//!   `?`;
//! * `\\`-escaped literals.

use rand::Rng;

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    Printable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Characters `\PC` draws from beyond ASCII, to exercise multi-byte paths.
const EXOTIC: [char; 6] = ['é', 'ß', 'λ', '中', '→', '🦀'];

pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let reps = rng.rng().gen_range(piece.min..=piece.max);
        for _ in 0..reps {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                .sum();
            let mut pick = rng.rng().gen_range(0..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick)
                        .expect("class range within valid chars");
                }
                pick -= span;
            }
            unreachable!("pick bounded by total")
        }
        Atom::Printable => {
            // Mostly printable ASCII, occasionally something multi-byte.
            if rng.rng().gen_range(0u32..10) == 0 {
                EXOTIC[rng.rng().gen_range(0..EXOTIC.len())]
            } else {
                char::from_u32(rng.rng().gen_range(0x20u32..0x7f)).unwrap()
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                let next = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                if next == 'P' || next == 'p' {
                    let class = *chars.get(i + 2).expect("\\P needs a class letter");
                    assert!(
                        class == 'C' || class == 'c',
                        "unsupported unicode class \\P{class} in {pattern:?}"
                    );
                    i += 3;
                    Atom::Printable
                } else {
                    i += 2;
                    Atom::Literal(next)
                }
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(ranges)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional repetition suffix.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repeat in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ident_pattern_generates_idents() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z_][a-zA-Z0-9_]{0,10}", &mut rng);
            assert!((1..=11).contains(&s.chars().count()), "bad length: {s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn printable_pattern_respects_bounds() {
        let mut rng = TestRng::from_seed(6);
        for _ in 0..200 {
            let s = generate_matching("\\PC{0,80}", &mut rng);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn literal_and_exact_repeat() {
        let mut rng = TestRng::from_seed(7);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching("a{3}", &mut rng), "aaa");
    }
}
