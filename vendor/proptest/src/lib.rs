//! Offline vendored subset of the `proptest` API.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors the slice of proptest it uses: the `proptest!` macro, the
//! `Strategy` trait with `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_recursive`, range / tuple / string-pattern strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop_oneof!`, `Just`,
//! `any::<T>()`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * **no shrinking** — a failing case reports its values via the panic
//!   message but is not minimised;
//! * **derived, deterministic seeding** — each test function derives its
//!   case RNG from the test name and case index, so failures reproduce
//!   across runs without a persisted regression file;
//! * string patterns support the subset of regex syntax used by this
//!   workspace: literal chars, `[...]` classes with ranges, `\PC`, and the
//!   `{m}` / `{m,n}` / `*` / `+` / `?` repeaters.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Describes the admissible lengths of a generated collection.
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// A strategy producing `Vec`s of `elem` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }
}

pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64_raw() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64_raw() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().gen_range(-1.0e12f64..1.0e12)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.rng().gen_range(-1.0e6f32..1.0e6)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let printable = 0x20u32..0x7f;
            char::from_u32(rng.rng().gen_range(printable)).unwrap()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }` runs
/// the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(cfg, stringify!($name), |__proptest_rng| {
                    $crate::proptest!(@bind __proptest_rng, $($args)*);
                    $body
                });
            }
        )*
    };
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::proptest!(@bind $rng $(, $($rest)*)?);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}
