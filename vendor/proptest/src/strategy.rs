//! The `Strategy` trait and the combinators this workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::Rng;

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value tree / shrinking: `generate` draws one
/// value directly from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies, built bottom-up to a bounded depth. At each
    /// level the generator picks between a leaf and one more level of
    /// recursion, so expected sizes stay small (the upstream `desired_size`
    /// and `expected_branch_size` hints are accepted but unused).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union::new(vec![leaf.clone(), f(cur).boxed()]).boxed();
        }
        cur
    }
}

/// A reference-counted, type-erased strategy (cloneable, unlike `Box`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The canonical strategy for `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// Uniform choice among same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng().gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Backs `prop::collection::vec`.
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.lo..=self.hi);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Backs `prop::option::of` (≈25% `None`).
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.rng().gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// String literals act as regex-subset generation patterns.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
