//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to a crates.io mirror, so the
//! workspace vendors the small slice of `rand` it actually uses: `RngCore`,
//! `SeedableRng`, the `Rng` extension trait (`gen_range` / `gen_bool`), and
//! `rngs::StdRng`. The generator behind `StdRng` here is xoshiro256++ seeded
//! via SplitMix64 — a different stream than upstream's ChaCha12, which is
//! fine because every determinism guarantee in this repo is *internal*
//! (same binary + same seed ⇒ same run), never a promise about matching
//! upstream `rand` output.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations. The vendored generators are
/// infallible; this exists only so `try_fill_bytes` keeps its upstream
/// signature.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output and byte fill.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64-expand the u64 into the full seed, as upstream does.
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64_next(&mut sm);
            for (b, s) in chunk.iter_mut().zip(v.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can describe a sampleable range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

macro_rules! int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

uint_range!(u8, u16, u32, u64, usize);
int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Unbiased sample in `[0, bound)` via Lemire's widening-multiply rejection.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! float_range {
    ($($t:ty => $bits:expr, $mantissa:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_float(rng.next_u64(), $bits, $mantissa) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard the half-open contract against rounding at the top.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = unit_float(rng.next_u64(), $bits, $mantissa) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range!(f32 => 32, 24, f64 => 64, 53);

/// Uniform float in `[0, 1)` from the top `mantissa` bits of a u64 draw.
fn unit_float(x: u64, _bits: u32, mantissa: u32) -> f64 {
    (x >> (64 - mantissa)) as f64 / (1u64 << mantissa) as f64
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        SampleRange::<f64>::sample_from(0.0..1.0, self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna). Fast, 256-bit
    /// state, passes BigCrush; statistically sound for simulation use.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }
}
