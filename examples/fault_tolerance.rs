//! Fault tolerance and runtime policy adaptation.
//!
//! Two capabilities beyond the paper's evaluation:
//!
//! 1. **Fault injection** — map-task attempts fail with a configurable
//!    probability; Hadoop-style retries (`mapred.map.max.attempts`) keep
//!    the sample exact while the job slows down.
//! 2. **Adaptive policies** — the paper's future work: one driver that
//!    behaves like HA on an idle cluster and backs off toward LA as
//!    co-tenants arrive.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use std::sync::Arc;

use incmr::core::build_adaptive_sampling_job;
use incmr::mapreduce::FaultPlan;
use incmr::prelude::*;

fn world() -> (MrRuntime, Arc<Dataset>) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(61);
    let spec = DatasetSpec::small("lineitem", 60, 200_000, SkewLevel::Zero, 61);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    (rt, ds)
}

fn main() {
    println!("-- fault injection: the same sampling job at rising failure rates --\n");
    println!(
        "{:>10} {:>10} {:>14} {:>12}",
        "fail rate", "retries", "response (s)", "sample"
    );
    for probability in [0.0, 0.1, 0.3, 0.5] {
        let (mut rt, ds) = world();
        if probability > 0.0 {
            rt.inject_faults(FaultPlan {
                probability,
                max_attempts: 10,
                seed: 99,
            })
            .expect("valid plan");
        }
        let (job, driver) = build_sampling_job(
            &ds,
            800,
            Policy::ha(),
            ScanMode::Planted,
            SampleMode::FirstK,
            2,
        );
        let id = rt.submit(job, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert!(!r.failed);
        println!(
            "{:>10} {:>10} {:>14.1} {:>12}",
            format!("{:.0}%", probability * 100.0),
            r.task_failures,
            r.response_time().as_secs_f64(),
            r.output.len(),
        );
    }
    println!("\nretries cost time, never correctness: the sample stays exactly k.\n");

    println!("-- adaptive policy: same job on an idle vs a busy cluster --\n");
    for busy in [false, true] {
        let (mut rt, ds) = world();
        if busy {
            // Occupy the cluster with a competing full scan first.
            let (scan, scan_driver) = incmr::core::build_scan_job(&ds, ScanMode::Planted);
            rt.submit(scan, scan_driver);
            rt.run_until(SimTime::from_secs(8));
        }
        let (job, driver) =
            build_adaptive_sampling_job(&ds, 800, ScanMode::Planted, SampleMode::FirstK, 3);
        let id = rt.submit(job, driver);
        while !rt.is_complete(id) {
            assert!(rt.step(), "runtime drained");
        }
        let r = rt.job_result(id);
        println!(
            "{:<13} -> {:>3} of 60 partitions, {:>7.1}s response",
            if busy { "busy cluster" } else { "idle cluster" },
            r.splits_processed,
            r.response_time().as_secs_f64(),
        );
    }
    println!("\nthe adaptive driver grabs aggressively when slots are free and");
    println!("drip-feeds when they are not — the paper's future-work behaviour.");
}
