//! Quickstart: obtain a fixed-size, predicate-based sample from an
//! un-indexed dataset — without scanning all of it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a LINEITEM-style dataset on a simulated 10-node cluster, then
//! runs the same `SELECT … WHERE p LIMIT k` job twice: once under stock
//! Hadoop semantics (all input up front) and once as a *dynamic* job under
//! the paper's LA policy. Both produce the same-size sample; the dynamic
//! job touches a fraction of the partitions.

use std::sync::Arc;

use incmr::prelude::*;

fn run_once(policy: Policy) -> (JobResult, SimDuration) {
    // 80 partitions x 750k records (the paper's split size — 60M rows
    // total), matching records planted with moderate (z = 1) skew at
    // 0.05% selectivity.
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(7);
    let spec = DatasetSpec::small("lineitem", 80, 750_000, SkewLevel::Moderate, 7);
    let dataset = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));

    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    let policy_name = policy.name.clone();
    let (job, driver) = build_sampling_job(
        &dataset,
        500,
        policy,
        ScanMode::Planted,
        SampleMode::FirstK,
        1,
    );
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let result = rt.job_result(id).clone();
    println!(
        "policy {:<6} -> sample of {:>4} records | {:>3} of 80 partitions scanned | {:>8.1}s response",
        policy_name,
        result.output.len(),
        result.splits_processed,
        result.response_time().as_secs_f64(),
    );
    let rt_time = result.response_time();
    (result, rt_time)
}

fn main() {
    println!(
        "predicate-based sampling: SELECT * FROM lineitem WHERE L_DISCOUNT = 0.99 LIMIT 500\n"
    );
    let (hadoop, t_hadoop) = run_once(Policy::hadoop());
    let (dynamic, t_dynamic) = run_once(Policy::la());

    assert_eq!(hadoop.output.len(), dynamic.output.len());
    println!(
        "\nthe dynamic job read {:.0}% of the data the Hadoop execution read, {:.1}x faster",
        100.0 * dynamic.records_processed as f64 / hadoop.records_processed as f64,
        t_hadoop.as_secs_f64() / t_dynamic.as_secs_f64(),
    );
    println!("\nfirst three sampled records:");
    for (_, record) in dynamic.output.iter().take(3) {
        println!("  {record}");
    }
}
