//! Visualise incremental job expansion: trace one sampling job per policy
//! and print its growth curve and cluster-occupancy timeline.
//!
//! ```text
//! cargo run --release --example job_timeline
//! ```
//!
//! The Hadoop policy's row fills instantly (all input up front); the
//! dynamic policies grow in steps as their Input Provider reacts to
//! arriving statistics.

use std::sync::Arc;

use incmr::mapreduce::{job_timeline, render_timeline};
use incmr::prelude::*;

fn main() {
    for policy in [
        Policy::hadoop(),
        Policy::ha(),
        Policy::la(),
        Policy::conservative(),
    ] {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(9);
        let spec = DatasetSpec::small("lineitem", 80, 750_000, SkewLevel::Moderate, 9);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            spec,
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let mut rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        rt.enable_tracing();
        let name = policy.name.clone();
        let (job, driver) =
            build_sampling_job(&ds, 2_000, policy, ScanMode::Planted, SampleMode::FirstK, 4);
        let id = rt.submit(job, driver);
        rt.run_until_idle();
        let trace = rt.take_trace();
        let t = job_timeline(&trace, id).expect("traced");

        println!("== policy {name} ==");
        let growth: Vec<String> = t
            .growth
            .iter()
            .map(|(at, splits)| format!("+{splits} @ {at}"))
            .collect();
        println!(
            "growth: {}  (end-of-input @ {})",
            growth.join(", "),
            t.end_of_input
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        println!(
            "maps: {} started / {} finished; response {:.1}s; {} of 80 partitions",
            t.maps.0,
            t.maps.1,
            rt.job_result(id).response_time().as_secs_f64(),
            rt.job_result(id).splits_processed,
        );
        print!("{}", render_timeline(&trace, 64));
        println!();
    }
}
