//! Author a custom growth policy — the paper's `policy.xml` workflow —
//! and compare it against the Table I built-ins on one sampling job.
//!
//! ```text
//! cargo run --release --example policy_explorer
//! ```

use std::sync::Arc;

use incmr::core::parse_policy_file;
use incmr::prelude::*;

const CUSTOM_POLICIES: &str = r#"
<policies>
  <policy name="burst-then-sip">
    <workThreshold>2</workThreshold>
    <grabLimit>max(0.25*TS, 0.5*AS)</grabLimit>
    <evaluationInterval>2000</evaluationInterval>
  </policy>
  <policy name="fixed-four">
    <workThreshold>5</workThreshold>
    <grabLimit>min(4, AS)</grabLimit>
    <evaluationInterval>4000</evaluationInterval>
  </policy>
</policies>
"#;

fn measure(policy: &Policy) -> (f64, u32) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(47);
    let spec = DatasetSpec::small("lineitem", 160, 100_000, SkewLevel::Moderate, 47);
    let dataset = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    let (job, driver) = build_sampling_job(
        &dataset,
        1_500,
        policy.clone(),
        ScanMode::Planted,
        SampleMode::FirstK,
        3,
    );
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let r = rt.job_result(id);
    (r.response_time().as_secs_f64(), r.splits_processed)
}

fn main() {
    let custom = parse_policy_file(CUSTOM_POLICIES).expect("valid policy file");
    println!("sampling 1500 records from a 160-partition dataset (idle cluster)\n");
    println!(
        "{:<16} {:>30} {:>14} {:>12}",
        "policy", "grab limit", "response (s)", "partitions"
    );
    for policy in Policy::table1().iter().chain(custom.iter()) {
        let (secs, parts) = measure(policy);
        println!(
            "{:<16} {:>30} {:>14.1} {:>12}",
            policy.name,
            policy.grab_limit.to_string(),
            secs,
            parts
        );
    }
    println!("\ntrade-off: bigger grabs finish sooner on an idle cluster but scan more");
    println!("partitions; the custom 'fixed-four' drip touches the least data.");
}
