//! The statistician scenario from the paper's introduction: estimate an
//! aggregate from a fixed-size predicate-based sample instead of scanning
//! the whole dataset.
//!
//! Here: "what is the mean quantity of line items shipped by AIR with at
//! most a 2% discount?" — answered from a 400-record sample, then checked
//! against the exact full-scan answer the sample is standing in for.
//!
//! ```text
//! cargo run --release --example exploratory_analysis
//! ```

use std::sync::Arc;

use incmr::data::lineitem::col;
use incmr::data::predicate::CmpOp;
use incmr::prelude::*;

fn mean_quantity(rows: &[(Key, Record)]) -> f64 {
    let sum: i64 = rows
        .iter()
        .map(|(_, r)| match r.get(col::QUANTITY) {
            Value::Int(q) => *q,
            other => panic!("unexpected value {other}"),
        })
        .sum();
    sum as f64 / rows.len() as f64
}

fn main() {
    // 60 partitions x 30k records = 1.8M rows of real generated data.
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(23);
    let spec = DatasetSpec::small("lineitem", 60, 30_000, SkewLevel::Zero, 23);
    let dataset = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));

    // An ad-hoc analysis predicate (nothing to do with the planted one),
    // so the job runs in Full mode over real records.
    let predicate = Predicate::And(
        Box::new(Predicate::eq(col::SHIPMODE, Value::Str("AIR".into()))),
        Box::new(Predicate::Compare {
            column: col::DISCOUNT,
            op: CmpOp::Le,
            literal: Value::Float(0.02),
        }),
    );

    let mut rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );

    // The sampling run: 400 records, LA policy, random-k for an unbiased
    // reservoir over the collected candidates.
    let (job, driver) = build_sampling_job_with(
        &dataset,
        predicate.clone(),
        Vec::new(),
        400,
        Policy::la(),
        ScanMode::Full,
        SampleMode::RandomK { seed: 99 },
        5,
    );
    let id = rt.submit(job, driver);
    rt.run_until_idle();
    let sample = rt.job_result(id).clone();
    let estimate = mean_quantity(&sample.output);

    // Ground truth by scanning every record of every split directly.
    use incmr::data::generator::SplitGenerator;
    let factory = dataset.factory();
    let (mut sum, mut count) = (0i64, 0u64);
    for plan in dataset.splits() {
        for record in SplitGenerator::new(&factory, plan.spec).full_iter() {
            if predicate.eval(&record) {
                if let Value::Int(q) = record.get(col::QUANTITY) {
                    sum += q;
                    count += 1;
                }
            }
        }
    }
    let truth = sum as f64 / count as f64;

    println!("analysis: mean L_QUANTITY where L_SHIPMODE='AIR' AND L_DISCOUNT<=0.02\n");
    println!(
        "sample estimate : {estimate:.2}  (from {} records, {} of 60 partitions, {:.1}s simulated)",
        sample.output.len(),
        sample.splits_processed,
        sample.response_time().as_secs_f64()
    );
    println!("exact answer    : {truth:.2}  (from {count} matching records in a full scan)");
    let err_pct = 100.0 * (estimate - truth).abs() / truth;
    println!("relative error  : {err_pct:.2}%");
    assert!(err_pct < 10.0, "a 400-record sample should land within 10%");
}
