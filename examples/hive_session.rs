//! The developer workflow from the paper's introduction: "a developer may
//! just wish to test a new query against the dataset … working with a
//! small subset of data" — through the HiveQL session, exactly as the
//! paper's modified Hive deployment exposes it.
//!
//! ```text
//! cargo run --release --example hive_session
//! ```

use std::sync::Arc;

use incmr::hiveql::SessionError;
use incmr::prelude::*;

fn show(session: &mut Session, sql: &str) {
    println!("hive> {sql}");
    match session.execute(sql) {
        Ok(QueryOutput::Rows {
            rows,
            splits_processed,
            records_processed,
            response_time,
            ..
        }) => {
            for r in rows.iter().take(5) {
                println!("  {r}");
            }
            if rows.len() > 5 {
                println!("  … {} rows total", rows.len());
            }
            println!(
                "  [{} rows; {splits_processed} partitions, {records_processed} records scanned; {:.1}s]\n",
                rows.len(),
                response_time.as_secs_f64()
            );
        }
        Ok(QueryOutput::Explained(plan)) => println!("{}\n", indent(&plan)),
        Ok(QueryOutput::SetOk { key, value }) => println!("  set {key} = {value}\n"),
        Ok(QueryOutput::Listing(items)) => println!("{}\n", indent(&items.join("\n"))),
        Err(e) => println!("  ERROR: {e}\n"),
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    // A small world so Full scan mode (real records, arbitrary predicates)
    // is cheap: 40 partitions x 20k records.
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(11);
    let spec = DatasetSpec::small("lineitem", 40, 20_000, SkewLevel::High, 11);
    let dataset = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    let mut session = Session::builder()
        .runtime(rt)
        .table("lineitem", dataset)
        .scan_mode(ScanMode::Full)
        .build();

    // Inspect the plan first, then pick a policy, then sample.
    show(
        &mut session,
        "EXPLAIN SELECT L_ORDERKEY FROM lineitem WHERE L_TAX = 0.77 LIMIT 100",
    );
    show(&mut session, "SET dynamic.job.policy = HA");
    show(
        &mut session,
        "SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM lineitem WHERE L_TAX = 0.77 LIMIT 100",
    );

    // Ad-hoc predicates work in full-scan mode: test a brand-new query on a
    // small sample before paying for the full run. LA stops after the
    // first increment here — the predicate is permissive, so a handful of
    // partitions already yields the 10 requested rows.
    show(&mut session, "SET dynamic.job.policy = LA");
    show(
        &mut session,
        "SELECT L_ORDERKEY, L_QUANTITY, L_SHIPMODE FROM lineitem \
         WHERE L_QUANTITY BETWEEN 40 AND 50 AND L_SHIPMODE = 'AIR' LIMIT 10",
    );

    // Errors are ordinary session output, not panics.
    let err = session
        .execute("SELECT nope FROM lineitem LIMIT 1")
        .expect_err("unknown column");
    assert!(matches!(err, SessionError::Compile(_)));
    println!("hive> SELECT nope FROM lineitem LIMIT 1\n  ERROR: {err}");
}
