//! The shared-cluster story (paper Sections V-D/V-E): what a sampling
//! user's policy choice does to *everyone else's* throughput.
//!
//! Four closed-loop users share the cluster: two obtain predicate-based
//! samples, two run full select-project scans. The sampling users' policy
//! is swept from `Hadoop` to `C`; watch the scan users' throughput recover
//! as the sampling jobs stop hogging map slots.
//!
//! ```text
//! cargo run --release --example shared_cluster
//! ```

use std::sync::Arc;

use incmr::prelude::*;

fn main() {
    println!("4 users (2 sampling + 2 scanning), 40-slot cluster, per-policy steady state:\n");
    println!(
        "{:<8} {:>18} {:>22} {:>16} {:>14}",
        "policy", "sampling (jobs/h)", "non-sampling (jobs/h)", "cpu util (%)", "locality (%)"
    );

    for policy in Policy::table1() {
        // Fresh world per run: 4 private dataset copies, 48 partitions of
        // 100k records each.
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let root = DetRng::seed_from(31);
        let datasets: Vec<Arc<Dataset>> = (0..4)
            .map(|u| {
                let mut rng = root.fork(u);
                let spec =
                    DatasetSpec::small(&format!("copy{u}"), 48, 100_000, SkewLevel::Zero, 31 + u);
                Arc::new(Dataset::build(
                    &mut ns,
                    spec,
                    &mut EvenRoundRobin::starting_at(u as u32 * 9),
                    &mut rng,
                ))
            })
            .collect();
        let mut rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        let spec = WorkloadSpec::heterogeneous(
            datasets,
            2,
            1_000, // sample size: ~20 of 48 partitions needed at 0.05%
            policy.clone(),
            SimDuration::from_mins(5),
            SimDuration::from_mins(40),
            17,
        );
        let report = run_workload(&mut rt, &spec);
        println!(
            "{:<8} {:>18.1} {:>22.1} {:>16.1} {:>14.1}",
            policy.name,
            report.sampling_jobs_per_hour(),
            report.non_sampling_jobs_per_hour(),
            report.metrics.cpu_util_pct,
            report.metrics.locality_pct,
        );
    }

    println!("\nreading: as the sampling class gets less aggressive, the scan class's");
    println!("throughput climbs — the paper measured 3x-8x going from Hadoop to LA.");
}
