//! `incmr` — an interactive HiveQL shell over a simulated cluster.
//!
//! ```text
//! cargo run --release --bin incmr -- --partitions 40 --records 20000 --skew 2 --full-scan
//! cargo run --release --bin incmr -- -e "SELECT COUNT(*) FROM lineitem WHERE L_TAX = 0.77"
//! ```
//!
//! Builds a LINEITEM-style dataset on the paper's 10-node cluster, registers
//! it as `lineitem`, and executes statements — from `-e` arguments or,
//! without them, a line-oriented REPL on stdin.

use std::io::{BufRead, Write};
use std::sync::Arc;

use incmr::prelude::*;

struct Options {
    partitions: u32,
    records: u64,
    skew: SkewLevel,
    seed: u64,
    full_scan: bool,
    statements: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: incmr [--partitions N] [--records N] [--skew 0|1|2] [--seed N] [--full-scan] [-e SQL]...\n\
         without -e, reads statements from stdin (one per line; 'quit' exits)"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        partitions: 40,
        records: 20_000,
        skew: SkewLevel::High,
        seed: 7,
        full_scan: false,
        statements: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--partitions" => {
                opts.partitions = value("--partitions").parse().unwrap_or_else(|_| usage())
            }
            "--records" => opts.records = value("--records").parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--skew" => {
                opts.skew = match value("--skew").as_str() {
                    "0" => SkewLevel::Zero,
                    "1" => SkewLevel::Moderate,
                    "2" => SkewLevel::High,
                    _ => usage(),
                }
            }
            "--full-scan" => opts.full_scan = true,
            "-e" => opts.statements.push(value("-e")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    opts
}

fn execute(session: &mut Session, sql: &str) -> bool {
    match session.execute(sql) {
        Ok(QueryOutput::Rows {
            rows,
            splits_processed,
            records_processed,
            response_time,
            ..
        }) => {
            for r in rows.iter().take(20) {
                println!("{r}");
            }
            if rows.len() > 20 {
                println!("… {} rows total", rows.len());
            }
            println!(
                "-- {} row(s); {splits_processed} partition(s), {records_processed} record(s) scanned; {:.1}s simulated",
                rows.len(),
                response_time.as_secs_f64()
            );
        }
        Ok(QueryOutput::Explained(plan)) => println!("{plan}"),
        Ok(QueryOutput::Listing(items)) => {
            for item in items {
                println!("{item}");
            }
        }
        Ok(QueryOutput::SetOk { key, value }) => println!("-- set {key} = {value}"),
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    }
    true
}

fn main() {
    let opts = parse_args();
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(opts.seed);
    let spec = DatasetSpec::small(
        "lineitem",
        opts.partitions,
        opts.records,
        opts.skew,
        opts.seed,
    );
    let dataset = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let planted = incmr::data::PaperPredicate::for_skew(opts.skew).sql;
    let mut catalog = Catalog::new();
    catalog.register("lineitem", dataset);
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    let mut builder = Session::builder().runtime(rt).catalog(catalog);
    if opts.full_scan {
        builder = builder.scan_mode(ScanMode::Full);
    }
    let mut session = builder.try_build().expect("valid session configuration");

    if !opts.statements.is_empty() {
        let mut ok = true;
        for sql in &opts.statements {
            ok &= execute(&mut session, sql);
        }
        // Scripted mode: a failed statement fails the invocation.
        std::process::exit(if ok { 0 } else { 1 });
    }

    println!(
        "incmr shell — table `lineitem`: {} partitions x {} records, planted predicate {planted}{}",
        opts.partitions,
        opts.records,
        if opts.full_scan {
            " (full-scan mode: ad-hoc predicates allowed)"
        } else {
            " (planted mode: WHERE must match the planted predicate)"
        }
    );
    println!("policies: Hadoop HA MA LA C — e.g. SET dynamic.job.policy = LA;\n");
    let stdin = std::io::stdin();
    loop {
        print!("incmr> ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        execute(&mut session, line);
    }
}
