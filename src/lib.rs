//! # incmr — Incremental Map-Reduce for Efficient Predicate-Based Sampling
//!
//! A from-scratch Rust reproduction of *"Extending Map-Reduce for Efficient
//! Predicate-Based Sampling"* (Grover & Carey, ICDE 2012): a MapReduce
//! execution model in which a job consumes input **incrementally**, guided
//! by a job-supplied **Input Provider** and a configurable growth
//! **policy**, so that a `SELECT … WHERE p LIMIT k` sampling query's cost
//! depends on `k` — not on the size of the dataset.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`simkit`] — deterministic discrete-event simulation kernel;
//! * [`dfs`] — simulated distributed filesystem (blocks, placement,
//!   locality);
//! * [`data`] — TPC-H LINEITEM-style datasets with Zipf-planted matches;
//! * [`mapreduce`] — the MapReduce framework (jobs, slots, FIFO/Fair
//!   schedulers, cost model, metrics, and the observability plane: trace
//!   export, latency histograms, decision audit, timeline rendering);
//! * [`core`] — the paper's contribution (Input Provider, policies,
//!   selectivity estimation, sampling operators);
//! * [`hiveql`] — a mini HiveQL front end compiling to dynamic jobs;
//! * [`workload`] — closed-loop multi-user workload generation;
//! * [`experiments`] — regenerators for every table and figure of the
//!   paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use incmr::prelude::*;
//!
//! // A small LINEITEM-style dataset on a simulated 10-node cluster.
//! let mut ns = Namespace::new(ClusterTopology::paper_cluster());
//! let mut rng = DetRng::seed_from(7);
//! let spec = DatasetSpec::small("lineitem", 20, 5_000, SkewLevel::Moderate, 7);
//! let dataset = Arc::new(Dataset::build(&mut ns, spec, &mut EvenRoundRobin::new(), &mut rng));
//!
//! // A cluster runtime and a dynamic sampling job under the LA policy.
//! let mut rt = MrRuntime::new(
//!     ClusterConfig::paper_single_user(),
//!     CostModel::paper_default(),
//!     ns,
//!     Box::new(FifoScheduler::new()),
//! );
//! let (job, driver) = build_sampling_job(
//!     &dataset, 25, Policy::la(), ScanMode::Planted, SampleMode::FirstK, 1,
//! );
//! let id = rt.submit(job, driver);
//! rt.run_until_idle();
//!
//! let result = rt.job_result(id);
//! assert_eq!(result.output.len(), 25); // exactly k sampled records
//! assert!(result.splits_processed < 20); // without scanning everything
//! ```

pub use incmr_core as core;
pub use incmr_data as data;
pub use incmr_dfs as dfs;
pub use incmr_experiments as experiments;
pub use incmr_hiveql as hiveql;
pub use incmr_mapreduce as mapreduce;
pub use incmr_service as service;
pub use incmr_simkit as simkit;
pub use incmr_workload as workload;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use incmr_core::{
        build_sampling_job, build_sampling_job_with, build_scan_job, sample_outcome, DynamicDriver,
        GrabLimit, InputProvider, InputResponse, Policy, SampleMode, SampleOutcome,
        SamplingInputProvider, SamplingMapper, SamplingReducer,
    };
    pub use incmr_data::{Dataset, DatasetSpec, Predicate, Record, SkewLevel, Value};
    pub use incmr_dfs::{BlockId, ClusterTopology, EvenRoundRobin, Namespace, NodeId};
    pub use incmr_hiveql::{
        Catalog, QueryHandle, QueryOutput, QueryResult, Session, SessionBuilder, SessionState,
        Submitted, TenantProfile,
    };
    pub use incmr_mapreduce::{
        audited_splits_added, encode_trace, parse_trace, render_audit, render_swimlanes,
        AuditDirective, AuditRecord, ClusterConfig, ClusterStatus, Combiner, CostModel,
        EvalContext, FairScheduler, FifoScheduler, JobConf, JobError, JobId, JobResult, JobSpec,
        JsonlSink, Key, MemorySink, MetricsRegistry, MrRuntime, Parallelism, ProviderError,
        ScanMode, TraceEvent, TraceKind, TraceSink,
    };
    pub use incmr_service::{
        QueryService, ServiceConfig, ServiceError, ServiceReply, TenantId, Ticket,
    };
    pub use incmr_simkit::rng::DetRng;
    pub use incmr_simkit::{SimDuration, SimTime};
    pub use incmr_workload::{run_workload, WorkloadSpec};
}
