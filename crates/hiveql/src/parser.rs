//! Recursive-descent parser for the HiveQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement := select | "SET" ident "=" value | "EXPLAIN" select
//! select    := "SELECT" projection "FROM" ident [ "WHERE" or_expr ]
//!              [ "GROUP" "BY" ident ]
//!              [ "WITH" "ERROR" number [ "CONFIDENCE" number ] ]
//!              [ "LIMIT" int ] [";"]
//! projection:= "*" | ident ("," ident)*
//! or_expr   := and_expr ("OR" and_expr)*
//! and_expr  := not_expr ("AND" not_expr)*
//! not_expr  := "NOT" not_expr | primary
//! primary   := "(" or_expr ")" | ident cmp literal | ident "BETWEEN" literal "AND" literal
//! ```

use std::fmt;

use crate::ast::{
    AggExpr, AggFunc, CmpOp, ErrorBound, Expr, Literal, Projection, Query, ShowKind, Statement,
};
use crate::lexer::{lex, LexError, Token};

enum SelectItem {
    Column(String),
    Aggregate(AggExpr),
}

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description, including what was found.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.to_string())
    }
}

/// Parse one statement.
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_semi();
    if !p.at_end() {
        return Err(ParseError::new(format!(
            "trailing input starting at {}",
            p.peek_desc()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek()
            .map(|t| format!("{t:?}"))
            .unwrap_or_else(|| "end of input".into())
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected {kw}, found {}",
                self.peek_desc()
            )))
        }
    }

    fn eat_semi(&mut self) {
        while self.peek() == Some(&Token::Semi) {
            self.pos += 1;
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!(
                "expected an identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_kw("SET") {
            let key = self.ident()?;
            if self.next() != Some(Token::Eq) {
                return Err(ParseError::new("expected '=' in SET"));
            }
            let value = match self.next() {
                Some(Token::Ident(s)) => s,
                Some(Token::Str(s)) => s,
                Some(Token::Int(v)) => v.to_string(),
                Some(Token::Float(v)) => v.to_string(),
                other => {
                    return Err(ParseError::new(format!(
                        "expected a value in SET, found {other:?}"
                    )))
                }
            };
            return Ok(Statement::Set { key, value });
        }
        if self.eat_kw("EXPLAIN") {
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_kw("SHOW") {
            if self.eat_kw("TABLES") {
                return Ok(Statement::Show(ShowKind::Tables));
            }
            if self.eat_kw("POLICIES") {
                return Ok(Statement::Show(ShowKind::Policies));
            }
            return Err(ParseError::new(format!(
                "expected TABLES or POLICIES after SHOW, found {}",
                self.peek_desc()
            )));
        }
        Ok(Statement::Select(self.select()?))
    }

    fn select(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let projection = if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            Projection::Star
        } else {
            // Either a column list or an aggregate list; the first item
            // decides (mixing is not supported in this subset).
            let first = self.select_item()?;
            match first {
                SelectItem::Column(c) => {
                    let mut cols = vec![c];
                    while self.peek() == Some(&Token::Comma) {
                        self.pos += 1;
                        match self.select_item()? {
                            SelectItem::Column(c) => cols.push(c),
                            SelectItem::Aggregate(a) => {
                                return Err(ParseError::new(format!(
                                    "cannot mix columns and aggregates (saw {a})"
                                )))
                            }
                        }
                    }
                    Projection::Columns(cols)
                }
                SelectItem::Aggregate(a) => {
                    let mut aggs = vec![a];
                    while self.peek() == Some(&Token::Comma) {
                        self.pos += 1;
                        match self.select_item()? {
                            SelectItem::Aggregate(a) => aggs.push(a),
                            SelectItem::Column(c) => {
                                return Err(ParseError::new(format!(
                                    "cannot mix aggregates and columns (saw {c}); group with GROUP BY instead"
                                )))
                            }
                        }
                    }
                    Projection::Aggregates(aggs)
                }
            }
        };
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.or_expr()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            Some(self.ident()?)
        } else {
            None
        };
        let error_bound = if self.eat_kw("WITH") {
            self.expect_kw("ERROR")?;
            let error = self.open_unit_fraction("WITH ERROR")?;
            let confidence = if self.eat_kw("CONFIDENCE") {
                self.open_unit_fraction("CONFIDENCE")?
            } else {
                ErrorBound::DEFAULT_CONFIDENCE
            };
            Some(ErrorBound { error, confidence })
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(v)) if v > 0 => Some(v as u64),
                other => {
                    return Err(ParseError::new(format!(
                        "LIMIT needs a positive integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            projection,
            table,
            predicate,
            group_by,
            error_bound,
            limit,
        })
    }

    /// A numeric literal strictly inside (0, 1) — the shared domain of
    /// `WITH ERROR` and `CONFIDENCE` operands.
    fn open_unit_fraction(&mut self, clause: &str) -> Result<f64, ParseError> {
        let v = match self.next() {
            Some(Token::Float(v)) => v,
            Some(Token::Int(v)) => v as f64,
            other => {
                return Err(ParseError::new(format!(
                    "{clause} needs a number, found {other:?}"
                )))
            }
        };
        if !(v > 0.0 && v < 1.0) {
            return Err(ParseError::new(format!(
                "{clause} must be strictly between 0 and 1, got {v}"
            )));
        }
        Ok(v)
    }

    /// One SELECT-list item: a bare column, or `FUNC(col)` / `COUNT(*)`.
    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        let name = self.ident()?;
        if self.peek() != Some(&Token::LParen) {
            return Ok(SelectItem::Column(name));
        }
        let Some(func) = AggFunc::from_name(&name) else {
            return Err(ParseError::new(format!("unknown function {name:?}")));
        };
        self.pos += 1; // '('
        let column = match self.next() {
            Some(Token::Star) => {
                if func != AggFunc::Count {
                    return Err(ParseError::new(format!(
                        "{func}(*) is not valid; only COUNT(*)"
                    )));
                }
                None
            }
            Some(Token::Ident(c)) => Some(c),
            other => {
                return Err(ParseError::new(format!(
                    "expected a column or * in {func}(), found {other:?}"
                )))
            }
        };
        if self.next() != Some(Token::RParen) {
            return Err(ParseError::new(format!(
                "expected ')' after {func} argument"
            )));
        }
        Ok(SelectItem::Aggregate(AggExpr { func, column }))
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let e = self.or_expr()?;
            if self.next() != Some(Token::RParen) {
                return Err(ParseError::new("expected ')'"));
            }
            return Ok(e);
        }
        let column = self.ident()?;
        if self.eat_kw("BETWEEN") {
            let low = self.literal()?;
            self.expect_kw("AND")?;
            let high = self.literal()?;
            return Ok(Expr::Between { column, low, high });
        }
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(ParseError::new(format!(
                    "expected a comparison operator, found {other:?}"
                )))
            }
        };
        let literal = self.literal()?;
        Ok(Expr::Cmp {
            column,
            op,
            literal,
        })
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Literal::Int(v)),
            Some(Token::Float(v)) => Ok(Literal::Float(v)),
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            other => Err(ParseError::new(format!(
                "expected a literal, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        match parse(sql).unwrap() {
            Statement::Select(q) => q,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_paper_template() {
        let query =
            q("SELECT ORDERKEY, PARTKEY, SUPPKEY FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 10000");
        assert_eq!(
            query.projection,
            Projection::Columns(vec!["ORDERKEY".into(), "PARTKEY".into(), "SUPPKEY".into()])
        );
        assert_eq!(query.table, "LINEITEM");
        assert_eq!(query.limit, Some(10_000));
        assert!(matches!(query.predicate, Some(Expr::Cmp { .. })));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let query = q("select * from t where a = 1 limit 5;");
        assert_eq!(query.projection, Projection::Star);
        assert_eq!(query.limit, Some(5));
    }

    #[test]
    fn boolean_precedence_and_binds_tighter_than_or() {
        let query = q("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        let Some(Expr::Or(_, rhs)) = &query.predicate else {
            panic!("OR at top: {:?}", query.predicate)
        };
        assert!(matches!(**rhs, Expr::And(_, _)));
    }

    #[test]
    fn parens_override_precedence() {
        let query = q("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        assert!(matches!(query.predicate, Some(Expr::And(_, _))));
    }

    #[test]
    fn not_and_between() {
        let query = q("SELECT * FROM t WHERE NOT a BETWEEN 1 AND 5");
        let Some(Expr::Not(inner)) = &query.predicate else {
            panic!()
        };
        assert!(matches!(**inner, Expr::Between { .. }));
    }

    #[test]
    fn set_statement() {
        let s = parse("SET dynamic.job.policy = LA;").unwrap();
        assert_eq!(
            s,
            Statement::Set {
                key: "dynamic.job.policy".into(),
                value: "LA".into()
            }
        );
    }

    #[test]
    fn explain_statement() {
        let s = parse("EXPLAIN SELECT * FROM t LIMIT 3").unwrap();
        assert!(matches!(s, Statement::Explain(_)));
    }

    #[test]
    fn aggregates_parse() {
        use crate::ast::{AggExpr, AggFunc};
        let query =
            q("SELECT COUNT(*), AVG(L_QUANTITY), MAX(L_TAX) FROM lineitem WHERE L_TAX = 0.77");
        assert_eq!(
            query.projection,
            Projection::Aggregates(vec![
                AggExpr {
                    func: AggFunc::Count,
                    column: None
                },
                AggExpr {
                    func: AggFunc::Avg,
                    column: Some("L_QUANTITY".into())
                },
                AggExpr {
                    func: AggFunc::Max,
                    column: Some("L_TAX".into())
                },
            ])
        );
    }

    #[test]
    fn aggregate_errors() {
        assert!(parse("SELECT SUM(*) FROM t").is_err(), "only COUNT takes *");
        assert!(parse("SELECT FROB(x) FROM t").is_err(), "unknown function");
        assert!(parse("SELECT COUNT(*), x FROM t").is_err(), "no mixing");
        assert!(
            parse("SELECT x, COUNT(*) FROM t").is_err(),
            "no mixing either way"
        );
        assert!(parse("SELECT COUNT( FROM t").is_err());
    }

    #[test]
    fn group_by_and_error_bound_parse() {
        let query = q("SELECT SUM(L_QUANTITY) FROM lineitem WHERE L_TAX = 0.77 \
             GROUP BY L_RETURNFLAG WITH ERROR 0.05 CONFIDENCE 0.9");
        assert_eq!(query.group_by.as_deref(), Some("L_RETURNFLAG"));
        assert_eq!(
            query.error_bound,
            Some(ErrorBound {
                error: 0.05,
                confidence: 0.9
            })
        );
    }

    #[test]
    fn confidence_defaults_when_omitted() {
        let query = q("SELECT COUNT(*) FROM t WITH ERROR 0.1");
        assert_eq!(
            query.error_bound,
            Some(ErrorBound {
                error: 0.1,
                confidence: ErrorBound::DEFAULT_CONFIDENCE
            })
        );
        assert_eq!(query.group_by, None);
    }

    #[test]
    fn error_bound_display_round_trips() {
        let sql = "SELECT SUM(q) FROM t GROUP BY g WITH ERROR 0.05 CONFIDENCE 0.95";
        let query = q(sql);
        assert_eq!(query.to_string(), sql);
        assert_eq!(q(&query.to_string()), query);
    }

    #[test]
    fn error_bound_operands_must_be_open_unit_fractions() {
        for bad in [
            "SELECT COUNT(*) FROM t WITH ERROR 0",
            "SELECT COUNT(*) FROM t WITH ERROR 0.0",
            "SELECT COUNT(*) FROM t WITH ERROR 1",
            "SELECT COUNT(*) FROM t WITH ERROR 1.5",
            "SELECT COUNT(*) FROM t WITH ERROR -0.1",
            "SELECT COUNT(*) FROM t WITH ERROR 0.05 CONFIDENCE 0",
            "SELECT COUNT(*) FROM t WITH ERROR 0.05 CONFIDENCE 1",
            "SELECT COUNT(*) FROM t WITH ERROR 0.05 CONFIDENCE 2.5",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(
                err.message.contains("strictly between 0 and 1")
                    || err.message.contains("needs a number"),
                "{bad}: {err}"
            );
        }
        assert!(parse("SELECT COUNT(*) FROM t WITH ERROR").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WITH ERROR x").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WITH 0.05").is_err());
        assert!(parse("SELECT * FROM t GROUP BY").is_err());
        assert!(parse("SELECT * FROM t GROUP x").is_err());
    }

    #[test]
    fn error_cases() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(
            parse("SELECT * FROM t LIMIT 0").is_err(),
            "LIMIT must be positive"
        );
        assert!(parse("SELECT * FROM t LIMIT -5").is_err());
        assert!(
            parse("SELECT * FROM t extra").is_err(),
            "trailing tokens rejected"
        );
        assert!(parse("SET x").is_err());
    }
}
