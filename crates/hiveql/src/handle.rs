//! Non-blocking query submission: [`QueryHandle`] names a submitted job
//! and can be polled or awaited; [`QueryResult`] is the typed completion
//! record, carrying the [`SampleOutcome`] and per-query latency
//! histograms instead of the monolithic blocking `QueryOutput`.

use incmr_core::SampleOutcome;
use incmr_data::{Record, Value};
use incmr_mapreduce::{decode_funcs, keys, AggKind, AggReport, JobId, MetricsRegistry, MrRuntime};
use incmr_simkit::{SimDuration, SimTime};

use crate::session::{QueryOutput, Session};

/// What [`Session::submit`](crate::Session::submit) produced.
#[derive(Debug)]
pub enum Submitted {
    /// A `SELECT` entered the job queue; poll or await the handle.
    Pending(QueryHandle),
    /// The statement completed immediately (`SET` / `SHOW` / `EXPLAIN`).
    Done(QueryOutput),
}

/// A submitted query: a typed name for an in-flight job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryHandle {
    job: JobId,
    requested_k: Option<u64>,
    submitted_at: SimTime,
}

impl QueryHandle {
    pub(crate) fn new(job: JobId, requested_k: Option<u64>, submitted_at: SimTime) -> Self {
        QueryHandle {
            job,
            requested_k,
            submitted_at,
        }
    }

    /// The underlying job.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The requested sample size `k` (dynamic sampling plans only).
    pub fn requested_k(&self) -> Option<u64> {
        self.requested_k
    }

    /// Simulated time at submission.
    pub fn submitted_at(&self) -> SimTime {
        self.submitted_at
    }

    /// Whether the job has completed (does not advance the runtime).
    pub fn poll(&self, session: &Session) -> bool {
        session.job_is_complete(self.job)
    }

    /// The result, if the job has completed (does not advance the
    /// runtime).
    pub fn try_result(&self, session: &Session) -> Option<QueryResult> {
        self.poll(session)
            .then(|| collect_result(session.runtime(), self.job, self.requested_k))
    }

    /// Drive the runtime until this job completes and collect its
    /// result (the awaiting shape of the API).
    pub fn wait(self, session: &mut Session) -> QueryResult {
        session.drive_to_completion(&self)
    }
}

/// Typed completion record for one query.
#[derive(Debug)]
pub struct QueryResult {
    /// The completed job.
    pub job: JobId,
    /// Result rows (values only; the dummy key is dropped).
    pub rows: Vec<Record>,
    /// Input partitions actually processed.
    pub splits_processed: u32,
    /// Records scanned across all map tasks.
    pub records_processed: u64,
    /// Map tasks that read their split from a local disk.
    pub local_tasks: u32,
    /// Submission-to-completion latency in simulated time.
    pub response_time: SimDuration,
    /// Whether the requested sample size was reached (`None` for
    /// non-sampling plans and failed jobs).
    pub outcome: Option<SampleOutcome>,
    /// For aggregate plans: how the estimator classified the finish
    /// (bound met / budget exhausted / exact) plus the coverage counters.
    /// `None` for non-aggregate plans and failed jobs.
    pub agg: Option<AggReport>,
    /// This query's latency histograms (mergeable across queries).
    pub histograms: MetricsRegistry,
    /// True if the job was aborted.
    pub failed: bool,
}

/// Build a [`QueryResult`] from a completed job. Shared by
/// [`QueryHandle`] and the multi-tenant query service (which drives its
/// own runtime).
pub fn collect_result(runtime: &MrRuntime, job: JobId, requested_k: Option<u64>) -> QueryResult {
    let result = runtime.job_result(job);
    let outcome = match requested_k {
        Some(requested) if !result.failed => {
            let found = result.output.len() as u64;
            Some(if found < requested {
                SampleOutcome::Partial { found, requested }
            } else {
                SampleOutcome::Full { requested }
            })
        }
        _ => None,
    };
    let mut rows: Vec<Record> = result.output.iter().map(|(_, r)| r.clone()).collect();
    // Aggregate estimates cover only the sampled splits: expand SUM/COUNT
    // by the report's M/m scale (AVG is a ratio estimate and is already
    // unbiased). Exact finishes have scale 1.0, so this is a no-op there.
    if let Some(report) = &result.agg {
        if let Some(funcs) = runtime
            .job_conf(job)
            .get(keys::AGG_FUNCS)
            .and_then(decode_funcs)
        {
            scale_estimates(&mut rows, report, &funcs);
        }
    }
    QueryResult {
        job,
        rows,
        splits_processed: result.splits_processed,
        records_processed: result.records_processed,
        local_tasks: result.local_tasks,
        response_time: result.response_time(),
        outcome,
        agg: result.agg,
        histograms: result.histograms.clone(),
        failed: result.failed,
    }
}

/// Expand sampled aggregate rows to whole-table estimates: SUM scales by
/// `M/m`, COUNT scales and rounds back to an integer, AVG stays as-is.
/// Grouped rows lead with the group value; the offset is inferred from
/// the row arity against the aggregate list.
fn scale_estimates(rows: &mut [Record], report: &AggReport, funcs: &[AggKind]) {
    let scale = report.scale();
    if scale == 1.0 {
        return;
    }
    for row in rows.iter_mut() {
        let offset = row.arity().saturating_sub(funcs.len());
        let values: Vec<Value> = row
            .values()
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let scaled = i
                    .checked_sub(offset)
                    .and_then(|j| funcs.get(j))
                    .map(|f| matches!(f, AggKind::Count | AggKind::Sum))
                    .unwrap_or(false);
                match (scaled, v) {
                    (true, Value::Float(x)) => Value::Float(x * scale),
                    (true, Value::Int(x)) => Value::Int((*x as f64 * scale).round() as i64),
                    _ => v.clone(),
                }
            })
            .collect();
        *row = Record::new(values);
    }
}
