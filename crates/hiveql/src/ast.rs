//! Abstract syntax for the supported HiveQL subset.

use std::fmt;

/// A literal value in a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Str(v) => write!(f, "'{v}'"),
        }
    }
}

/// Comparison operators in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean expression over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `column <op> literal`
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal operand.
        literal: Literal,
    },
    /// `column BETWEEN low AND high`
    Between {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        low: Literal,
        /// Inclusive upper bound.
        high: Literal,
    },
    /// `a AND b`
    And(Box<Expr>, Box<Expr>),
    /// `a OR b`
    Or(Box<Expr>, Box<Expr>),
    /// `NOT a`
    Not(Box<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Cmp {
                column,
                op,
                literal,
            } => write!(f, "{column} {op} {literal}"),
            Expr::Between { column, low, high } => write!(f, "{column} BETWEEN {low} AND {high}"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "NOT {a}"),
        }
    }
}

/// An aggregate function in the SELECT list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(col)`
    Count,
    /// `SUM(col)`
    Sum,
    /// `AVG(col)`
    Avg,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

impl AggFunc {
    /// Parse a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One aggregate expression: function plus optional column (`None` for
/// `COUNT(*)`).
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// The argument column (`None` only for `COUNT(*)`).
    pub column: Option<String>,
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.column {
            Some(c) => write!(f, "{}({c})", self.func),
            None => write!(f, "{}(*)", self.func),
        }
    }
}

/// The SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// Explicit columns, in order.
    Columns(Vec<String>),
    /// Aggregates (whole-table, or per-group with `GROUP BY`).
    Aggregates(Vec<AggExpr>),
}

/// The `WITH ERROR e CONFIDENCE c` clause: request an approximate answer
/// whose per-group relative error is at most `error` with probability at
/// least `confidence`. Both are in the open interval (0, 1); the parser
/// rejects anything else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBound {
    /// Maximum relative error, e.g. `0.05`.
    pub error: f64,
    /// Confidence level, e.g. `0.95` (the default when the clause omits
    /// `CONFIDENCE`).
    pub confidence: f64,
}

impl ErrorBound {
    /// Confidence used when the clause names only the error.
    pub const DEFAULT_CONFIDENCE: f64 = 0.95;
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// What to project.
    pub projection: Projection,
    /// The table scanned.
    pub table: String,
    /// Optional `WHERE` clause.
    pub predicate: Option<Expr>,
    /// Optional `GROUP BY` column (single-column grouping in this subset).
    pub group_by: Option<String>,
    /// Optional `WITH ERROR e CONFIDENCE c` — the approximate-answer
    /// trigger.
    pub error_bound: Option<ErrorBound>,
    /// Optional `LIMIT k` — the sample size trigger.
    pub limit: Option<u64>,
}

/// What a `SHOW` statement lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowKind {
    /// `SHOW TABLES` — registered catalog tables.
    Tables,
    /// `SHOW POLICIES` — the session's policy registry.
    Policies,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Select(Query),
    /// `SHOW TABLES` / `SHOW POLICIES`.
    Show(ShowKind),
    /// `SET key = value;` — session configuration (e.g. the policy).
    Set {
        /// Configuration key.
        key: String,
        /// Configuration value.
        value: String,
    },
    /// `EXPLAIN <query>` — show the compiled plan without running it.
    Explain(Query),
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        match &self.projection {
            Projection::Star => write!(f, "*")?,
            Projection::Columns(cs) => write!(f, "{}", cs.join(", "))?,
            Projection::Aggregates(aggs) => {
                let parts: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                write!(f, "{}", parts.join(", "))?;
            }
        }
        write!(f, " FROM {}", self.table)?;
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        if let Some(g) = &self.group_by {
            write!(f, " GROUP BY {g}")?;
        }
        if let Some(b) = &self.error_bound {
            write!(f, " WITH ERROR {} CONFIDENCE {}", b.error, b.confidence)?;
        }
        if let Some(k) = self.limit {
            write!(f, " LIMIT {k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_display_round_trip_shape() {
        let q = Query {
            projection: Projection::Columns(vec!["a".into(), "b".into()]),
            table: "t".into(),
            predicate: Some(Expr::And(
                Box::new(Expr::Cmp {
                    column: "a".into(),
                    op: CmpOp::Ge,
                    literal: Literal::Int(3),
                }),
                Box::new(Expr::Not(Box::new(Expr::Cmp {
                    column: "b".into(),
                    op: CmpOp::Eq,
                    literal: Literal::Str("x".into()),
                }))),
            )),
            group_by: None,
            error_bound: None,
            limit: Some(10),
        };
        assert_eq!(
            q.to_string(),
            "SELECT a, b FROM t WHERE (a >= 3 AND NOT b = 'x') LIMIT 10"
        );
    }

    #[test]
    fn star_displays() {
        let q = Query {
            projection: Projection::Star,
            table: "t".into(),
            predicate: None,
            group_by: None,
            error_bound: None,
            limit: None,
        };
        assert_eq!(q.to_string(), "SELECT * FROM t");
    }

    #[test]
    fn grouped_error_bound_displays() {
        let q = Query {
            projection: Projection::Aggregates(vec![AggExpr {
                func: AggFunc::Sum,
                column: Some("qty".into()),
            }]),
            table: "t".into(),
            predicate: None,
            group_by: Some("flag".into()),
            error_bound: Some(ErrorBound {
                error: 0.05,
                confidence: 0.95,
            }),
            limit: None,
        };
        assert_eq!(
            q.to_string(),
            "SELECT SUM(qty) FROM t GROUP BY flag WITH ERROR 0.05 CONFIDENCE 0.95"
        );
    }
}
