//! The table catalog: names → planned datasets.
//!
//! All tables are LINEITEM-shaped (the paper evaluates on LINEITEM copies);
//! what varies per table is the backing dataset — its scale, skew, and seed.

use std::collections::HashMap;
use std::sync::Arc;

use incmr_data::{lineitem, Dataset, Schema};

/// Maps table names (case-insensitive) to datasets.
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Dataset>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table. Replaces any existing registration of the name.
    pub fn register(&mut self, name: &str, dataset: Arc<Dataset>) {
        self.tables.insert(name.to_ascii_lowercase(), dataset);
    }

    /// Resolve a table name.
    pub fn resolve(&self, name: &str) -> Option<&Arc<Dataset>> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// The schema of a table (LINEITEM for all current tables).
    pub fn schema(&self, name: &str) -> Option<Schema> {
        self.resolve(name).map(|_| lineitem::schema())
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::{DatasetSpec, SkewLevel};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_simkit::rng::DetRng;

    fn dataset(name: &str) -> Arc<Dataset> {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(1);
        Arc::new(Dataset::build(
            &mut ns,
            DatasetSpec::small(name, 4, 100, SkewLevel::Zero, 1),
            &mut EvenRoundRobin::new(),
            &mut rng,
        ))
    }

    #[test]
    fn register_and_resolve_case_insensitively() {
        let mut c = Catalog::new();
        c.register("LineItem", dataset("li"));
        assert!(c.resolve("LINEITEM").is_some());
        assert!(c.resolve("lineitem").is_some());
        assert!(c.resolve("other").is_none());
        assert_eq!(c.table_names(), vec!["lineitem"]);
    }

    #[test]
    fn schema_is_lineitem() {
        let mut c = Catalog::new();
        c.register("t", dataset("li2"));
        let s = c.schema("T").unwrap();
        assert!(s.index_of("L_TAX").is_some());
        assert!(c.schema("missing").is_none());
    }
}
