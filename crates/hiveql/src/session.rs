//! An interactive-style session: the moral equivalent of the Hive CLI in
//! the paper's deployment.
//!
//! "Hive does allow setting of configuration parameters explicitly from the
//! command line interface. The end-user is currently required to choose
//! amongst the configured policies (which are listed in the policy.xml
//! file) by setting the dynamic.job.policy parameter accordingly."
//!
//! ```text
//! SET dynamic.job.policy = LA;
//! SELECT L_ORDERKEY FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 10000;
//! ```
//!
//! Two layers live here:
//!
//! * [`SessionState`] — per-client settings (policy registry, active
//!   policy, scan/sample mode, seed counter) plus statement preparation.
//!   It owns **no runtime**, so a multi-tenant service can keep one state
//!   per tenant over a single shared cluster.
//! * [`Session`] — a state bound to its own [`MrRuntime`] and catalog:
//!   the single-user CLI shape. Build one with [`Session::builder`];
//!   submit with [`Session::submit`] (non-blocking, returns a
//!   [`QueryHandle`]) or [`Session::execute`]
//!   (blocking shim).

use std::collections::HashMap;
use std::fmt;

use incmr_core::{parse_policy_file, Policy, SampleMode};
use incmr_data::Record;
use incmr_mapreduce::{keys, JobId, MrRuntime, ScanMode};
use incmr_simkit::SimDuration;

use crate::ast::{ShowKind, Statement};
use crate::builder::{SessionBuilder, TenantProfile};
use crate::catalog::Catalog;
use crate::compile::{compile_query, CompileError, CompiledQuery};
use crate::handle::{collect_result, QueryHandle, Submitted};
use crate::parser::{parse, ParseError};

/// Errors surfaced to the session user.
#[derive(Debug)]
pub enum SessionError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic/compilation error.
    Compile(CompileError),
    /// `SET dynamic.job.policy` named an unregistered policy.
    UnknownPolicy {
        /// The requested name.
        requested: String,
        /// Names that are registered.
        available: Vec<String>,
    },
    /// `SET dfs.replication` had a malformed or zero value.
    BadReplication {
        /// The rejected value.
        value: String,
    },
    /// `SET mapred.agg.rounds` had a malformed or zero value.
    BadAggRounds {
        /// The rejected value.
        value: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Compile(e) => write!(f, "{e}"),
            SessionError::UnknownPolicy {
                requested,
                available,
            } => {
                write!(
                    f,
                    "unknown policy {requested:?}; available: {}",
                    available.join(", ")
                )
            }
            SessionError::BadReplication { value } => {
                write!(
                    f,
                    "dfs.replication must be an integer in 1..=255, got {value:?}"
                )
            }
            SessionError::BadAggRounds { value } => {
                write!(
                    f,
                    "mapred.agg.rounds must be a positive integer, got {value:?}"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<CompileError> for SessionError {
    fn from(e: CompileError) -> Self {
        SessionError::Compile(e)
    }
}

/// The outcome of executing one statement.
#[derive(Debug)]
pub enum QueryOutput {
    /// A query ran to completion.
    Rows {
        /// The completed job.
        job: JobId,
        /// Result rows (values only; the dummy key is dropped).
        rows: Vec<Record>,
        /// Input partitions actually processed.
        splits_processed: u32,
        /// Records scanned across all map tasks.
        records_processed: u64,
        /// Submission-to-completion latency in simulated time.
        response_time: SimDuration,
    },
    /// `EXPLAIN` output.
    Explained(String),
    /// `SHOW …` output: one line per item.
    Listing(Vec<String>),
    /// A `SET` was applied.
    SetOk {
        /// The key.
        key: String,
        /// The value.
        value: String,
    },
}

/// What a prepared statement turned into: a job that still needs runtime
/// submission, or an answer computed locally from session state.
#[derive(Debug)]
pub enum Prepared {
    /// A `SELECT` compiled to a submit-ready job.
    Submit(CompiledQuery),
    /// `SET` / `SHOW` / `EXPLAIN` completed against the session state.
    Immediate(QueryOutput),
}

/// Per-client session settings, independent of any runtime: policy
/// registry, active policy, scan/sample mode, `SET` bag, and the seed
/// counter that differentiates successive sampling jobs.
///
/// A [`Session`] owns one; a multi-tenant query service owns one **per
/// tenant** over a single shared runtime.
#[derive(Debug, Clone)]
pub struct SessionState {
    policies: Vec<Policy>,
    policy: Policy,
    scan_mode: ScanMode,
    sample_mode: SampleMode,
    settings: HashMap<String, String>,
    next_seed: u64,
}

impl Default for SessionState {
    fn default() -> Self {
        SessionState::new()
    }
}

impl SessionState {
    /// Fresh state: the built-in Table I policies registered, `LA` (the
    /// paper's best all-rounder) active, planted scan mode.
    pub fn new() -> Self {
        SessionState {
            policies: Policy::table1(),
            policy: Policy::la(),
            scan_mode: ScanMode::Planted,
            sample_mode: SampleMode::FirstK,
            settings: HashMap::new(),
            next_seed: 0x5E55_10F1,
        }
    }

    /// Replace the policy registry from a policy-file text (the
    /// `policy.xml` equivalent). The active policy is reset to the first
    /// entry.
    pub fn load_policies(&mut self, file_text: &str) -> Result<(), incmr_core::PolicyFileError> {
        let policies = parse_policy_file(file_text)?;
        self.policy = policies[0].clone();
        self.policies = policies;
        Ok(())
    }

    /// Activate a registered policy by name.
    pub fn set_active_policy(&mut self, name: &str) -> Result<(), SessionError> {
        match self.policies.iter().find(|p| p.name == name).cloned() {
            Some(p) => {
                self.policy = p;
                Ok(())
            }
            None => Err(SessionError::UnknownPolicy {
                requested: name.to_string(),
                available: self.policies.iter().map(|p| p.name.clone()).collect(),
            }),
        }
    }

    /// The currently active policy.
    pub fn active_policy(&self) -> &Policy {
        &self.policy
    }

    /// Set the scan mode (`Planted` = experiment predicates only, `Full`
    /// = materialise records, arbitrary predicates).
    pub fn set_scan_mode(&mut self, mode: ScanMode) {
        self.scan_mode = mode;
    }

    /// Set the sample-selection mode.
    pub fn set_sample_mode(&mut self, mode: SampleMode) {
        self.sample_mode = mode;
    }

    /// Seed the per-query RNG counter (each `SELECT` increments it).
    pub fn set_seed(&mut self, seed: u64) {
        self.next_seed = seed;
    }

    /// The growth-round budget error-bounded aggregate plans compile
    /// with: `SET mapred.agg.rounds` (validated at SET time), or the
    /// framework default.
    pub fn agg_rounds(&self) -> u64 {
        self.settings
            .get(keys::AGG_ROUNDS)
            .and_then(|v| v.parse().ok())
            .unwrap_or(incmr_mapreduce::DEFAULT_AGG_ROUNDS)
    }

    /// Prepare one statement against a catalog: `SELECT` compiles to a
    /// submit-ready job; everything else resolves immediately from
    /// session state.
    pub fn prepare(&mut self, sql: &str, catalog: &Catalog) -> Result<Prepared, SessionError> {
        match parse(sql)? {
            Statement::Set { key, value } => {
                if key.eq_ignore_ascii_case(keys::DYNAMIC_JOB_POLICY) {
                    self.set_active_policy(&value)?;
                }
                // Replication is validated at SET time — a bad value is a
                // typed session error, never a panic at submission.
                if key.eq_ignore_ascii_case(keys::DFS_REPLICATION)
                    && !matches!(value.parse::<u8>(), Ok(r) if r > 0)
                {
                    return Err(SessionError::BadReplication { value });
                }
                // Same for the approximate-aggregation round budget.
                if key.eq_ignore_ascii_case(keys::AGG_ROUNDS)
                    && !matches!(value.parse::<u64>(), Ok(r) if r > 0)
                {
                    return Err(SessionError::BadAggRounds { value });
                }
                self.settings.insert(key.clone(), value.clone());
                Ok(Prepared::Immediate(QueryOutput::SetOk { key, value }))
            }
            Statement::Show(kind) => {
                let items = match kind {
                    ShowKind::Tables => catalog.table_names(),
                    ShowKind::Policies => self
                        .policies
                        .iter()
                        .map(|p| {
                            format!(
                                "{p}{}",
                                if p.name == self.policy.name {
                                    "  (active)"
                                } else {
                                    ""
                                }
                            )
                        })
                        .collect(),
                };
                Ok(Prepared::Immediate(QueryOutput::Listing(items)))
            }
            Statement::Explain(query) => {
                let compiled = compile_query(
                    &query,
                    catalog,
                    &self.policy,
                    self.scan_mode,
                    self.sample_mode,
                    self.next_seed,
                    self.agg_rounds(),
                )?;
                Ok(Prepared::Immediate(QueryOutput::Explained(
                    compiled.explain(),
                )))
            }
            Statement::Select(query) => {
                self.next_seed = self.next_seed.wrapping_add(1);
                let mut compiled = compile_query(
                    &query,
                    catalog,
                    &self.policy,
                    self.scan_mode,
                    self.sample_mode,
                    self.next_seed,
                    self.agg_rounds(),
                )?;
                // Plumb the session's replication setting onto the job
                // conf *after* compilation: the semantic JOB_SIGNATURE is
                // already fixed, so memo identity is unaffected.
                if let Some(r) = self.settings.get(keys::DFS_REPLICATION) {
                    compiled.spec.conf.set(keys::DFS_REPLICATION, r);
                }
                Ok(Prepared::Submit(compiled))
            }
        }
    }
}

/// A session: catalog + runtime + per-client [`SessionState`].
pub struct Session {
    runtime: MrRuntime,
    catalog: Catalog,
    state: SessionState,
    tenant: TenantProfile,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("tenant", &self.tenant)
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Start configuring a session: runtime, catalog/tables, policy file,
    /// scan mode, tenant identity, and quota knobs, with typed
    /// validation via `try_build`.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    pub(crate) fn from_parts(
        runtime: MrRuntime,
        catalog: Catalog,
        state: SessionState,
        tenant: TenantProfile,
    ) -> Self {
        Session {
            runtime,
            catalog,
            state,
            tenant,
        }
    }

    /// A session over a runtime and catalog, with the built-in Table I
    /// policies registered and `LA` (the paper's best all-rounder) active.
    #[deprecated(since = "0.2.0", note = "use `Session::builder()`")]
    pub fn new(runtime: MrRuntime, catalog: Catalog) -> Self {
        Session::from_parts(
            runtime,
            catalog,
            SessionState::new(),
            TenantProfile::default(),
        )
    }

    /// Use `Full` scan mode: every record is materialised and arbitrary
    /// predicates are evaluable (small datasets / examples).
    #[deprecated(
        since = "0.2.0",
        note = "use `Session::builder().scan_mode(ScanMode::Full)`"
    )]
    pub fn with_full_scan(mut self) -> Self {
        self.state.set_scan_mode(ScanMode::Full);
        self
    }

    /// Replace the policy registry from a policy-file text (the
    /// `policy.xml` equivalent). The active policy is reset to the first
    /// entry.
    pub fn load_policies(&mut self, file_text: &str) -> Result<(), incmr_core::PolicyFileError> {
        self.state.load_policies(file_text)
    }

    /// The currently active policy.
    pub fn active_policy(&self) -> &Policy {
        self.state.active_policy()
    }

    /// This session's per-client state (policy registry, modes, seed).
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// Mutable access to the per-client state.
    pub fn state_mut(&mut self) -> &mut SessionState {
        &mut self.state
    }

    /// The tenant identity and quota knobs this session was built with
    /// (consumed by the multi-tenant query service on registration).
    pub fn tenant(&self) -> &TenantProfile {
        &self.tenant
    }

    /// Mutable access to the underlying runtime (metrics, clock).
    pub fn runtime_mut(&mut self) -> &mut MrRuntime {
        &mut self.runtime
    }

    /// Read access to the underlying runtime.
    pub fn runtime(&self) -> &MrRuntime {
        &self.runtime
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Submit one statement **without blocking**. `SELECT` statements
    /// enter the runtime's job queue and return a [`QueryHandle`] to
    /// poll or await; everything else completes immediately.
    pub fn submit(&mut self, sql: &str) -> Result<Submitted, SessionError> {
        match self.state.prepare(sql, &self.catalog)? {
            Prepared::Immediate(out) => Ok(Submitted::Done(out)),
            Prepared::Submit(compiled) => {
                let requested_k = compiled.requested_k();
                let submitted_at = self.runtime.now();
                let job = self.runtime.submit(compiled.spec, compiled.driver);
                Ok(Submitted::Pending(QueryHandle::new(
                    job,
                    requested_k,
                    submitted_at,
                )))
            }
        }
    }

    /// Whether a submitted query's job has completed.
    pub(crate) fn job_is_complete(&self, job: JobId) -> bool {
        self.runtime.is_complete(job)
    }

    /// Drive the runtime until `job` completes, then collect its result.
    pub(crate) fn drive_to_completion(&mut self, handle: &QueryHandle) -> crate::QueryResult {
        while !self.runtime.is_complete(handle.job()) {
            assert!(self.runtime.step(), "runtime drained before job completion");
        }
        collect_result(&self.runtime, handle.job(), handle.requested_k())
    }

    /// Execute one statement to completion (blocking shim over
    /// [`Session::submit`] + [`QueryHandle::wait`]).
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutput, SessionError> {
        match self.submit(sql)? {
            Submitted::Done(out) => Ok(out),
            Submitted::Pending(handle) => {
                let result = handle.wait(self);
                Ok(QueryOutput::Rows {
                    job: result.job,
                    rows: result.rows,
                    splits_processed: result.splits_processed,
                    records_processed: result.records_processed,
                    response_time: result.response_time,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use incmr_core::SampleOutcome;
    use incmr_data::{Dataset, DatasetSpec, SkewLevel};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_mapreduce::{ClusterConfig, CostModel, FifoScheduler};
    use incmr_simkit::rng::DetRng;

    fn session_with(skew: SkewLevel, full_scan: bool) -> Session {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(9);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            DatasetSpec::small("lineitem", 20, 2_000, skew, 9),
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        let mut b = Session::builder().runtime(rt).table("lineitem", ds);
        if full_scan {
            b = b.scan_mode(ScanMode::Full);
        }
        b.try_build().unwrap()
    }

    fn session(skew: SkewLevel) -> Session {
        session_with(skew, false)
    }

    #[test]
    fn sampling_query_returns_k_rows() {
        // 20×2000 records at 0.05% → 20 matches; ask for 10.
        let mut s = session(SkewLevel::High);
        let out = s
            .execute(
                "SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 10",
            )
            .unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.arity() == 3), "projection applied");
    }

    #[test]
    fn submit_returns_a_pollable_handle() {
        let mut s = session(SkewLevel::High);
        let Submitted::Pending(handle) = s
            .submit(
                "SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 10",
            )
            .unwrap()
        else {
            panic!("SELECT must be pending")
        };
        assert_eq!(handle.requested_k(), Some(10));
        assert!(!handle.poll(&s), "job cannot be complete before stepping");
        assert!(handle.try_result(&s).is_none());
        // Step the runtime to completion by hand.
        while !handle.poll(&s) {
            assert!(s.runtime_mut().step());
        }
        let result = handle.try_result(&s).expect("complete");
        assert_eq!(result.rows.len(), 10);
        assert!(!result.failed);
        assert_eq!(result.outcome, Some(SampleOutcome::Full { requested: 10 }));
        assert!(result.response_time > SimDuration::ZERO);
        assert!(
            result
                .histograms
                .families()
                .iter()
                .any(|(_, h)| h.count() > 0),
            "per-query histograms recorded"
        );
    }

    #[test]
    fn handle_wait_reports_partial_samples() {
        // Zero skew plants 0.002% → only 0.8 expected matches in 40k;
        // asking for 1000 must come back Partial.
        let mut s = session(SkewLevel::Zero);
        let Submitted::Pending(handle) = s
            .submit("SELECT * FROM LINEITEM WHERE L_QUANTITY = 200 LIMIT 1000")
            .unwrap()
        else {
            panic!()
        };
        let result = handle.wait(&mut s);
        let Some(SampleOutcome::Partial { found, requested }) = result.outcome else {
            panic!("expected a partial sample: {:?}", result.outcome)
        };
        assert_eq!(requested, 1000);
        assert_eq!(found, result.rows.len() as u64);
        assert!(found < requested);
    }

    #[test]
    fn non_select_statements_complete_immediately() {
        let mut s = session(SkewLevel::High);
        assert!(matches!(
            s.submit("SET a.b = c").unwrap(),
            Submitted::Done(QueryOutput::SetOk { .. })
        ));
        assert!(matches!(
            s.submit("SHOW TABLES").unwrap(),
            Submitted::Done(QueryOutput::Listing(_))
        ));
        assert!(matches!(
            s.submit("EXPLAIN SELECT * FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 5")
                .unwrap(),
            Submitted::Done(QueryOutput::Explained(_))
        ));
    }

    #[test]
    fn deprecated_constructor_still_works() {
        #![allow(deprecated)]
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(9);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            DatasetSpec::small("lineitem", 20, 2_000, SkewLevel::High, 9),
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let mut catalog = Catalog::new();
        catalog.register("lineitem", ds);
        let rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        let mut s = Session::new(rt, catalog).with_full_scan();
        let out = s
            .execute("SELECT L_ORDERKEY FROM LINEITEM WHERE L_QUANTITY <= 25 LIMIT 3")
            .unwrap();
        assert!(matches!(out, QueryOutput::Rows { .. }));
    }

    #[test]
    fn set_policy_changes_compilation() {
        let mut s = session(SkewLevel::High);
        assert_eq!(s.active_policy().name, "LA");
        let out = s.execute("SET dynamic.job.policy = C;").unwrap();
        assert!(matches!(out, QueryOutput::SetOk { .. }));
        assert_eq!(s.active_policy().name, "C");
        let QueryOutput::Explained(plan) = s
            .execute("EXPLAIN SELECT * FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 5")
            .unwrap()
        else {
            panic!()
        };
        assert!(plan.contains("policy: C"), "{plan}");
    }

    #[test]
    fn unknown_policy_lists_available() {
        let mut s = session(SkewLevel::High);
        let err = s.execute("SET dynamic.job.policy = turbo").unwrap_err();
        let SessionError::UnknownPolicy { available, .. } = err else {
            panic!()
        };
        assert!(available.contains(&"Hadoop".into()));
    }

    #[test]
    fn set_replication_is_validated_and_plumbed_onto_jobs() {
        let mut s = session(SkewLevel::High);
        for bad in ["0", "banana", "300"] {
            let err = s
                .execute(&format!("SET dfs.replication = {bad}"))
                .unwrap_err();
            assert!(
                matches!(err, SessionError::BadReplication { ref value } if value == bad),
                "{bad}: {err}"
            );
        }
        s.execute("SET dfs.replication = 3;").unwrap();
        // Plumbing: the setting lands on the compiled spec's conf while
        // the semantic memo signature stays untouched.
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(9);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            DatasetSpec::small("lineitem", 20, 2_000, SkewLevel::High, 9),
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let mut catalog = Catalog::new();
        catalog.register("lineitem", ds);
        let mut state = SessionState::new();
        state.prepare("SET dfs.replication = 2", &catalog).unwrap();
        let prepared = state
            .prepare(
                "SELECT * FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 5",
                &catalog,
            )
            .unwrap();
        let Prepared::Submit(compiled) = prepared else {
            panic!()
        };
        assert_eq!(compiled.spec.conf.get(keys::DFS_REPLICATION), Some("2"));
        assert!(
            compiled.spec.conf.get(keys::JOB_SIGNATURE).is_some(),
            "semantic signature still present"
        );
    }

    #[test]
    fn full_mode_supports_ad_hoc_predicates() {
        let mut s = session_with(SkewLevel::High, true);
        let out = s
            .execute("SELECT L_ORDERKEY FROM LINEITEM WHERE L_QUANTITY <= 25 AND L_SHIPMODE = 'AIR' LIMIT 7")
            .unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows.len(), 7, "plenty of natural records satisfy this");
    }

    #[test]
    fn scan_without_limit_reads_everything() {
        let mut s = session(SkewLevel::Zero);
        let out = s
            .execute("SELECT * FROM LINEITEM WHERE L_QUANTITY = 200")
            .unwrap();
        let QueryOutput::Rows {
            splits_processed,
            records_processed,
            ..
        } = out
        else {
            panic!()
        };
        assert_eq!(splits_processed, 20);
        assert_eq!(records_processed, 40_000);
    }

    #[test]
    fn custom_policy_file_can_be_loaded() {
        let mut s = session(SkewLevel::High);
        s.load_policies(
            r#"<policies>
                 <policy name="tiny"><workThreshold>1</workThreshold><grabLimit>1</grabLimit></policy>
               </policies>"#,
        )
        .unwrap();
        assert_eq!(s.active_policy().name, "tiny");
        let err = s.execute("SET dynamic.job.policy = LA").unwrap_err();
        assert!(
            matches!(err, SessionError::UnknownPolicy { .. }),
            "registry was replaced"
        );
    }

    #[test]
    fn aggregate_query_returns_one_row() {
        // 20×2000 records; count matches of the planted predicate.
        let mut s = session(SkewLevel::High);
        let out = s
            .execute("SELECT COUNT(*), AVG(L_QUANTITY), MIN(L_TAX), MAX(L_TAX) FROM lineitem WHERE L_TAX = 0.77")
            .unwrap();
        let QueryOutput::Rows {
            rows,
            splits_processed,
            ..
        } = out
        else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(splits_processed, 20, "aggregates scan everything");
        let row = &rows[0];
        assert_eq!(
            row.get(0),
            &incmr_data::Value::Int(20),
            "0.05% of 40k records"
        );
        let incmr_data::Value::Float(avg_q) = row.get(1) else {
            panic!()
        };
        assert!(
            (1.0..=50.0).contains(avg_q),
            "average quantity in domain: {avg_q}"
        );
        assert_eq!(row.get(2), &incmr_data::Value::Float(0.77));
        assert_eq!(row.get(3), &incmr_data::Value::Float(0.77));
    }

    #[test]
    fn aggregate_explain_and_errors() {
        let mut s = session(SkewLevel::High);
        let QueryOutput::Explained(plan) = s
            .execute("EXPLAIN SELECT COUNT(*) FROM lineitem WHERE L_TAX = 0.77")
            .unwrap()
        else {
            panic!()
        };
        assert!(plan.contains("whole-table aggregation"), "{plan}");
        let err = s
            .execute("SELECT COUNT(*) FROM lineitem WHERE L_TAX = 0.77 LIMIT 5")
            .unwrap_err();
        assert!(err.to_string().contains("LIMIT with aggregates"));
        let err = s
            .execute("SELECT SUM(L_SHIPMODE) FROM lineitem WHERE L_TAX = 0.77")
            .unwrap_err();
        assert!(err.to_string().contains("numeric"));
    }

    #[test]
    fn grouped_aggregate_returns_one_row_per_group() {
        let mut s = session_with(SkewLevel::High, true);
        let out = s
            .execute("SELECT COUNT(*), SUM(L_QUANTITY) FROM lineitem GROUP BY L_RETURNFLAG")
            .unwrap();
        let QueryOutput::Rows {
            rows,
            splits_processed,
            ..
        } = out
        else {
            panic!()
        };
        assert_eq!(splits_processed, 20, "exact grouped plans scan everything");
        assert_eq!(rows.len(), 3, "R/A/N return flags");
        let mut groups = Vec::new();
        let mut total = 0i64;
        for row in &rows {
            let incmr_data::Value::Str(g) = row.get(0) else {
                panic!("grouped rows lead with the group value: {row:?}")
            };
            groups.push(g.clone());
            let incmr_data::Value::Int(n) = row.get(1) else {
                panic!()
            };
            total += n;
            let incmr_data::Value::Float(sum_q) = row.get(2) else {
                panic!()
            };
            assert!(*sum_q >= *n as f64, "quantity is at least 1 per record");
        }
        assert_eq!(total, 40_000, "group counts partition the table");
        let mut sorted = groups.clone();
        sorted.sort();
        assert_eq!(groups, sorted, "rows arrive in group-key order");
    }

    #[test]
    fn error_bounded_aggregate_reports_and_scales() {
        let mut s = session_with(SkewLevel::High, true);
        // Exact ground truth from the whole-table plan.
        let QueryOutput::Rows { rows: exact, .. } = s
            .execute("SELECT SUM(L_QUANTITY), COUNT(*) FROM lineitem")
            .unwrap()
        else {
            panic!()
        };
        let incmr_data::Value::Float(true_sum) = exact[0].get(0) else {
            panic!()
        };
        let true_sum = *true_sum;

        let Submitted::Pending(handle) = s
            .submit("SELECT SUM(L_QUANTITY), COUNT(*) FROM lineitem WITH ERROR 0.05")
            .unwrap()
        else {
            panic!()
        };
        let result = handle.wait(&mut s);
        assert!(!result.failed);
        let report = result.agg.expect("estimating plans attach a report");
        assert_eq!(
            report.completed, result.splits_processed,
            "the report counts the splits that were actually folded"
        );
        assert!(
            !matches!(report.outcome, incmr_mapreduce::AggOutcome::Exact),
            "this run meets its bound well before consuming everything, so \
             it must not classify as Exact: {report:?}"
        );
        // The scaled estimate lands near the truth even when the job
        // stopped before scanning everything.
        let incmr_data::Value::Float(est_sum) = result.rows[0].get(0) else {
            panic!()
        };
        let rel = (est_sum - true_sum).abs() / true_sum;
        assert!(rel < 0.15, "estimate off by {rel:.3} (truth {true_sum})");
        let incmr_data::Value::Int(est_n) = result.rows[0].get(1) else {
            panic!("scaled COUNT stays integral: {:?}", result.rows[0])
        };
        let rel_n = (*est_n as f64 - 40_000.0).abs() / 40_000.0;
        assert!(rel_n < 0.15, "count estimate off by {rel_n:.3}");
    }

    #[test]
    fn set_agg_rounds_is_validated_and_plumbed() {
        let mut s = session_with(SkewLevel::High, true);
        for bad in ["0", "-3", "many"] {
            let err = s
                .execute(&format!("SET mapred.agg.rounds = {bad}"))
                .unwrap_err();
            assert!(err.to_string().contains("positive integer"), "{bad}: {err}");
        }
        s.execute("SET mapred.agg.rounds = 5").unwrap();
        assert_eq!(s.state().agg_rounds(), 5);
        let Submitted::Pending(handle) = s
            .submit("SELECT COUNT(*) FROM lineitem WITH ERROR 0.1")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(
            s.runtime()
                .job_conf(handle.job())
                .get(incmr_mapreduce::keys::AGG_ROUNDS),
            Some("5"),
            "the SET budget reaches the job conf"
        );
        let result = handle.wait(&mut s);
        assert!(!result.failed);
    }

    #[test]
    fn show_statements_list_tables_and_policies() {
        let mut s = session(SkewLevel::High);
        let QueryOutput::Listing(tables) = s.execute("SHOW TABLES").unwrap() else {
            panic!()
        };
        assert_eq!(tables, vec!["lineitem"]);
        let QueryOutput::Listing(policies) = s.execute("SHOW POLICIES;").unwrap() else {
            panic!()
        };
        assert_eq!(policies.len(), 5);
        assert!(policies
            .iter()
            .any(|p| p.starts_with("LA") && p.ends_with("(active)")));
        assert!(s.execute("SHOW NONSENSE").is_err());
    }

    #[test]
    fn parse_errors_surface() {
        let mut s = session(SkewLevel::High);
        assert!(matches!(s.execute("SELEKT *"), Err(SessionError::Parse(_))));
        assert!(matches!(
            s.execute("SELECT * FROM nope LIMIT 1"),
            Err(SessionError::Compile(_))
        ));
    }

    #[test]
    fn successive_queries_share_the_simulated_cluster() {
        let mut s = session(SkewLevel::Zero);
        let QueryOutput::Rows {
            response_time: t1, ..
        } = s
            .execute("SELECT * FROM LINEITEM WHERE L_QUANTITY = 200 LIMIT 5")
            .unwrap()
        else {
            panic!()
        };
        let now_after_first = s.runtime().now();
        assert!(now_after_first.as_millis() > 0);
        let QueryOutput::Rows { .. } = s
            .execute("SELECT * FROM LINEITEM WHERE L_QUANTITY = 200 LIMIT 5")
            .unwrap()
        else {
            panic!()
        };
        assert!(
            s.runtime().now() > now_after_first,
            "clock advances across queries"
        );
        assert!(t1 > SimDuration::ZERO);
    }
}
