//! An interactive-style session: the moral equivalent of the Hive CLI in
//! the paper's deployment.
//!
//! "Hive does allow setting of configuration parameters explicitly from the
//! command line interface. The end-user is currently required to choose
//! amongst the configured policies (which are listed in the policy.xml
//! file) by setting the dynamic.job.policy parameter accordingly."
//!
//! ```text
//! SET dynamic.job.policy = LA;
//! SELECT L_ORDERKEY FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 10000;
//! ```

use std::collections::HashMap;
use std::fmt;

use incmr_core::{parse_policy_file, Policy, SampleMode};
use incmr_data::Record;
use incmr_mapreduce::{keys, JobId, MrRuntime, ScanMode};
use incmr_simkit::SimDuration;

use crate::ast::{ShowKind, Statement};
use crate::catalog::Catalog;
use crate::compile::{compile_query, CompileError};
use crate::parser::{parse, ParseError};

/// Errors surfaced to the session user.
#[derive(Debug)]
pub enum SessionError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic/compilation error.
    Compile(CompileError),
    /// `SET dynamic.job.policy` named an unregistered policy.
    UnknownPolicy {
        /// The requested name.
        requested: String,
        /// Names that are registered.
        available: Vec<String>,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Compile(e) => write!(f, "{e}"),
            SessionError::UnknownPolicy {
                requested,
                available,
            } => {
                write!(
                    f,
                    "unknown policy {requested:?}; available: {}",
                    available.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<CompileError> for SessionError {
    fn from(e: CompileError) -> Self {
        SessionError::Compile(e)
    }
}

/// The outcome of executing one statement.
#[derive(Debug)]
pub enum QueryOutput {
    /// A query ran to completion.
    Rows {
        /// The completed job.
        job: JobId,
        /// Result rows (values only; the dummy key is dropped).
        rows: Vec<Record>,
        /// Input partitions actually processed.
        splits_processed: u32,
        /// Records scanned across all map tasks.
        records_processed: u64,
        /// Submission-to-completion latency in simulated time.
        response_time: SimDuration,
    },
    /// `EXPLAIN` output.
    Explained(String),
    /// `SHOW …` output: one line per item.
    Listing(Vec<String>),
    /// A `SET` was applied.
    SetOk {
        /// The key.
        key: String,
        /// The value.
        value: String,
    },
}

/// A session: catalog + runtime + settings.
pub struct Session {
    runtime: MrRuntime,
    catalog: Catalog,
    policies: Vec<Policy>,
    policy: Policy,
    scan_mode: ScanMode,
    sample_mode: SampleMode,
    settings: HashMap<String, String>,
    next_seed: u64,
}

impl Session {
    /// A session over a runtime and catalog, with the built-in Table I
    /// policies registered and `LA` (the paper's best all-rounder) active.
    pub fn new(runtime: MrRuntime, catalog: Catalog) -> Self {
        Session {
            runtime,
            catalog,
            policies: Policy::table1(),
            policy: Policy::la(),
            scan_mode: ScanMode::Planted,
            sample_mode: SampleMode::FirstK,
            settings: HashMap::new(),
            next_seed: 0x5E55_10F1,
        }
    }

    /// Use `Full` scan mode: every record is materialised and arbitrary
    /// predicates are evaluable (small datasets / examples).
    pub fn with_full_scan(mut self) -> Self {
        self.scan_mode = ScanMode::Full;
        self
    }

    /// Replace the policy registry from a policy-file text (the
    /// `policy.xml` equivalent). The active policy is reset to the first
    /// entry.
    pub fn load_policies(&mut self, file_text: &str) -> Result<(), incmr_core::PolicyFileError> {
        let policies = parse_policy_file(file_text)?;
        self.policy = policies[0].clone();
        self.policies = policies;
        Ok(())
    }

    /// The currently active policy.
    pub fn active_policy(&self) -> &Policy {
        &self.policy
    }

    /// Mutable access to the underlying runtime (metrics, clock).
    pub fn runtime_mut(&mut self) -> &mut MrRuntime {
        &mut self.runtime
    }

    /// Read access to the underlying runtime.
    pub fn runtime(&self) -> &MrRuntime {
        &self.runtime
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Execute one statement to completion.
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutput, SessionError> {
        match parse(sql)? {
            Statement::Set { key, value } => {
                if key.eq_ignore_ascii_case(keys::DYNAMIC_JOB_POLICY) {
                    let found = self.policies.iter().find(|p| p.name == value).cloned();
                    match found {
                        Some(p) => self.policy = p,
                        None => {
                            return Err(SessionError::UnknownPolicy {
                                requested: value,
                                available: self.policies.iter().map(|p| p.name.clone()).collect(),
                            })
                        }
                    }
                }
                self.settings.insert(key.clone(), value.clone());
                Ok(QueryOutput::SetOk { key, value })
            }
            Statement::Show(kind) => {
                let items = match kind {
                    ShowKind::Tables => self.catalog.table_names(),
                    ShowKind::Policies => self
                        .policies
                        .iter()
                        .map(|p| {
                            format!(
                                "{p}{}",
                                if p.name == self.policy.name {
                                    "  (active)"
                                } else {
                                    ""
                                }
                            )
                        })
                        .collect(),
                };
                Ok(QueryOutput::Listing(items))
            }
            Statement::Explain(query) => {
                let compiled = compile_query(
                    &query,
                    &self.catalog,
                    &self.policy,
                    self.scan_mode,
                    self.sample_mode,
                    self.next_seed,
                )?;
                Ok(QueryOutput::Explained(compiled.explain()))
            }
            Statement::Select(query) => {
                self.next_seed = self.next_seed.wrapping_add(1);
                let compiled = compile_query(
                    &query,
                    &self.catalog,
                    &self.policy,
                    self.scan_mode,
                    self.sample_mode,
                    self.next_seed,
                )?;
                let job = self.runtime.submit(compiled.spec, compiled.driver);
                // Block until this job (and anything ahead of it) completes.
                while !self.runtime.is_complete(job) {
                    assert!(self.runtime.step(), "runtime drained before job completion");
                }
                let result = self.runtime.job_result(job);
                let rows = result.output.iter().map(|(_, r)| r.clone()).collect();
                Ok(QueryOutput::Rows {
                    job,
                    rows,
                    splits_processed: result.splits_processed,
                    records_processed: result.records_processed,
                    response_time: result.response_time(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use incmr_data::{Dataset, DatasetSpec, SkewLevel};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_mapreduce::{ClusterConfig, CostModel, FifoScheduler};
    use incmr_simkit::rng::DetRng;

    fn session(skew: SkewLevel) -> Session {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(9);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            DatasetSpec::small("lineitem", 20, 2_000, skew, 9),
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let mut catalog = Catalog::new();
        catalog.register("lineitem", ds);
        let rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        Session::new(rt, catalog)
    }

    #[test]
    fn sampling_query_returns_k_rows() {
        // 20×2000 records at 0.05% → 20 matches; ask for 10.
        let mut s = session(SkewLevel::High);
        let out = s
            .execute(
                "SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 10",
            )
            .unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r.arity() == 3), "projection applied");
    }

    #[test]
    fn set_policy_changes_compilation() {
        let mut s = session(SkewLevel::High);
        assert_eq!(s.active_policy().name, "LA");
        let out = s.execute("SET dynamic.job.policy = C;").unwrap();
        assert!(matches!(out, QueryOutput::SetOk { .. }));
        assert_eq!(s.active_policy().name, "C");
        let QueryOutput::Explained(plan) = s
            .execute("EXPLAIN SELECT * FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 5")
            .unwrap()
        else {
            panic!()
        };
        assert!(plan.contains("policy: C"), "{plan}");
    }

    #[test]
    fn unknown_policy_lists_available() {
        let mut s = session(SkewLevel::High);
        let err = s.execute("SET dynamic.job.policy = turbo").unwrap_err();
        let SessionError::UnknownPolicy { available, .. } = err else {
            panic!()
        };
        assert!(available.contains(&"Hadoop".into()));
    }

    #[test]
    fn full_mode_supports_ad_hoc_predicates() {
        let mut s = session(SkewLevel::High).with_full_scan();
        let out = s
            .execute("SELECT L_ORDERKEY FROM LINEITEM WHERE L_QUANTITY <= 25 AND L_SHIPMODE = 'AIR' LIMIT 7")
            .unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        assert_eq!(rows.len(), 7, "plenty of natural records satisfy this");
    }

    #[test]
    fn scan_without_limit_reads_everything() {
        let mut s = session(SkewLevel::Zero);
        let out = s
            .execute("SELECT * FROM LINEITEM WHERE L_QUANTITY = 200")
            .unwrap();
        let QueryOutput::Rows {
            splits_processed,
            records_processed,
            ..
        } = out
        else {
            panic!()
        };
        assert_eq!(splits_processed, 20);
        assert_eq!(records_processed, 40_000);
    }

    #[test]
    fn custom_policy_file_can_be_loaded() {
        let mut s = session(SkewLevel::High);
        s.load_policies(
            r#"<policies>
                 <policy name="tiny"><workThreshold>1</workThreshold><grabLimit>1</grabLimit></policy>
               </policies>"#,
        )
        .unwrap();
        assert_eq!(s.active_policy().name, "tiny");
        let err = s.execute("SET dynamic.job.policy = LA").unwrap_err();
        assert!(
            matches!(err, SessionError::UnknownPolicy { .. }),
            "registry was replaced"
        );
    }

    #[test]
    fn aggregate_query_returns_one_row() {
        // 20×2000 records; count matches of the planted predicate.
        let mut s = session(SkewLevel::High);
        let out = s
            .execute("SELECT COUNT(*), AVG(L_QUANTITY), MIN(L_TAX), MAX(L_TAX) FROM lineitem WHERE L_TAX = 0.77")
            .unwrap();
        let QueryOutput::Rows {
            rows,
            splits_processed,
            ..
        } = out
        else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(splits_processed, 20, "aggregates scan everything");
        let row = &rows[0];
        assert_eq!(
            row.get(0),
            &incmr_data::Value::Int(20),
            "0.05% of 40k records"
        );
        let incmr_data::Value::Float(avg_q) = row.get(1) else {
            panic!()
        };
        assert!(
            (1.0..=50.0).contains(avg_q),
            "average quantity in domain: {avg_q}"
        );
        assert_eq!(row.get(2), &incmr_data::Value::Float(0.77));
        assert_eq!(row.get(3), &incmr_data::Value::Float(0.77));
    }

    #[test]
    fn aggregate_explain_and_errors() {
        let mut s = session(SkewLevel::High);
        let QueryOutput::Explained(plan) = s
            .execute("EXPLAIN SELECT COUNT(*) FROM lineitem WHERE L_TAX = 0.77")
            .unwrap()
        else {
            panic!()
        };
        assert!(plan.contains("whole-table aggregation"), "{plan}");
        let err = s
            .execute("SELECT COUNT(*) FROM lineitem WHERE L_TAX = 0.77 LIMIT 5")
            .unwrap_err();
        assert!(err.to_string().contains("LIMIT with aggregates"));
        let err = s
            .execute("SELECT SUM(L_SHIPMODE) FROM lineitem WHERE L_TAX = 0.77")
            .unwrap_err();
        assert!(err.to_string().contains("numeric"));
    }

    #[test]
    fn show_statements_list_tables_and_policies() {
        let mut s = session(SkewLevel::High);
        let QueryOutput::Listing(tables) = s.execute("SHOW TABLES").unwrap() else {
            panic!()
        };
        assert_eq!(tables, vec!["lineitem"]);
        let QueryOutput::Listing(policies) = s.execute("SHOW POLICIES;").unwrap() else {
            panic!()
        };
        assert_eq!(policies.len(), 5);
        assert!(policies
            .iter()
            .any(|p| p.starts_with("LA") && p.ends_with("(active)")));
        assert!(s.execute("SHOW NONSENSE").is_err());
    }

    #[test]
    fn parse_errors_surface() {
        let mut s = session(SkewLevel::High);
        assert!(matches!(s.execute("SELEKT *"), Err(SessionError::Parse(_))));
        assert!(matches!(
            s.execute("SELECT * FROM nope LIMIT 1"),
            Err(SessionError::Compile(_))
        ));
    }

    #[test]
    fn successive_queries_share_the_simulated_cluster() {
        let mut s = session(SkewLevel::Zero);
        let QueryOutput::Rows {
            response_time: t1, ..
        } = s
            .execute("SELECT * FROM LINEITEM WHERE L_QUANTITY = 200 LIMIT 5")
            .unwrap()
        else {
            panic!()
        };
        let now_after_first = s.runtime().now();
        assert!(now_after_first.as_millis() > 0);
        let QueryOutput::Rows { .. } = s
            .execute("SELECT * FROM LINEITEM WHERE L_QUANTITY = 200 LIMIT 5")
            .unwrap()
        else {
            panic!()
        };
        assert!(
            s.runtime().now() > now_after_first,
            "clock advances across queries"
        );
        assert!(t1 > SimDuration::ZERO);
    }
}
