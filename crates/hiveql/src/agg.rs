//! Whole-table aggregate execution: `SELECT COUNT(*)/SUM/AVG/MIN/MAX …
//! FROM t WHERE p` as a MapReduce job.
//!
//! Each map task emits **one** partial-aggregate record per split under a
//! shared key; the single reducer merges partials and produces the final
//! one-row result. This is the classic MapReduce aggregation shape and
//! exercises the framework's shuffle/grouping machinery beyond the
//! sampling use case.
//!
//! Zero-match semantics (this subset has no NULL): `COUNT` and `SUM`
//! produce 0 / 0.0; `AVG`, `MIN`, and `MAX` produce 0.0.
//!
//! Aggregate jobs must not set `mapred.job.materialize.cap`: the per-split
//! partials are materialised map outputs, and a cap below the split count
//! would silently drop partials. The compiler never sets it on aggregate
//! plans.

use std::collections::BTreeMap;

use incmr_data::{ColumnData, Predicate, Record, RecordBatch, Value};
use incmr_mapreduce::{encode_group_part, Key, MapResult, Mapper, Reducer, SplitData};

use crate::ast::AggFunc;

/// Key shared by all partial-aggregate map outputs.
pub const AGG_KEY: &str = "__agg__";

/// A resolved aggregate: function plus column index (`None` = `COUNT(*)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedAgg {
    /// The function.
    pub func: AggFunc,
    /// Resolved argument column.
    pub column: Option<usize>,
}

/// Partial state for one aggregate: an accumulator and a value count.
#[derive(Debug, Clone, Copy)]
struct Partial {
    acc: f64,
    n: u64,
}

impl Partial {
    fn identity(func: AggFunc) -> Partial {
        let acc = match func {
            AggFunc::Min => f64::INFINITY,
            AggFunc::Max => f64::NEG_INFINITY,
            _ => 0.0,
        };
        Partial { acc, n: 0 }
    }

    fn absorb_value(&mut self, func: AggFunc, v: f64) {
        self.n += 1;
        match func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => self.acc += v,
            AggFunc::Min => self.acc = self.acc.min(v),
            AggFunc::Max => self.acc = self.acc.max(v),
        }
    }

    fn merge(&mut self, func: AggFunc, other: Partial) {
        self.n += other.n;
        match func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => self.acc += other.acc,
            AggFunc::Min => self.acc = self.acc.min(other.acc),
            AggFunc::Max => self.acc = self.acc.max(other.acc),
        }
    }

    fn finish(self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.n as i64),
            AggFunc::Sum => Value::Float(self.acc),
            AggFunc::Avg => Value::Float(if self.n == 0 {
                0.0
            } else {
                self.acc / self.n as f64
            }),
            AggFunc::Min | AggFunc::Max => Value::Float(if self.n == 0 { 0.0 } else { self.acc }),
        }
    }
}

fn numeric(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        Value::Date(d) => *d as f64,
        Value::Str(_) => unreachable!("compiler rejects string aggregates"),
    }
}

fn encode(partials: &[Partial]) -> Record {
    let mut values = Vec::with_capacity(partials.len() * 2);
    for p in partials {
        values.push(Value::Float(p.acc));
        values.push(Value::Int(p.n as i64));
    }
    Record::new(values)
}

fn decode(record: &Record, n_aggs: usize) -> Vec<Partial> {
    (0..n_aggs)
        .map(|i| {
            let Value::Float(acc) = record.get(2 * i) else {
                panic!("corrupt partial")
            };
            let Value::Int(n) = record.get(2 * i + 1) else {
                panic!("corrupt partial")
            };
            Partial {
                acc: *acc,
                n: *n as u64,
            }
        })
        .collect()
}

/// Map side: filter with the predicate and emit one partial per split.
#[derive(Debug, Clone)]
pub struct AggMapper {
    predicate: Predicate,
    aggs: Vec<ResolvedAgg>,
}

impl AggMapper {
    /// Aggregate `aggs` over records matching `predicate`.
    pub fn new(predicate: Predicate, aggs: Vec<ResolvedAgg>) -> Self {
        assert!(!aggs.is_empty());
        AggMapper { predicate, aggs }
    }

    fn absorb(&self, partials: &mut [Partial], record: &Record) {
        for (p, agg) in partials.iter_mut().zip(&self.aggs) {
            match agg.column {
                None => p.absorb_value(agg.func, 0.0),
                Some(c) => p.absorb_value(agg.func, numeric(record.get(c))),
            }
        }
    }

    /// Columnar absorb: one pass per aggregate over its column vector,
    /// reading numeric values straight out of the batch — no `Record` is
    /// ever built.
    fn absorb_batch(&self, partials: &mut [Partial], batch: &RecordBatch, sel: &[u32]) {
        for (p, agg) in partials.iter_mut().zip(&self.aggs) {
            match agg.column {
                None => {
                    for _ in sel {
                        p.absorb_value(agg.func, 0.0);
                    }
                }
                Some(c) => match batch.column(c) {
                    ColumnData::Int(v) => {
                        for &row in sel {
                            p.absorb_value(agg.func, v[row as usize] as f64);
                        }
                    }
                    ColumnData::Float(v) => {
                        for &row in sel {
                            p.absorb_value(agg.func, v[row as usize]);
                        }
                    }
                    ColumnData::Date(v) => {
                        for &row in sel {
                            p.absorb_value(agg.func, v[row as usize] as f64);
                        }
                    }
                    ColumnData::Str(_) => unreachable!("compiler rejects string aggregates"),
                },
            }
        }
    }
}

impl Mapper for AggMapper {
    fn run(&self, data: SplitData) -> MapResult {
        let mut partials: Vec<Partial> = self
            .aggs
            .iter()
            .map(|a| Partial::identity(a.func))
            .collect();
        let records_read = data.total_records();
        match &data {
            SplitData::Batch(batch) => {
                let sel = self.predicate.eval_batch(batch);
                self.absorb_batch(&mut partials, batch, &sel);
            }
            SplitData::PlantedBatch { matches, .. } => {
                debug_assert_eq!(self.predicate.eval_batch(matches).len(), matches.len());
                let sel: Vec<u32> = (0..matches.len() as u32).collect();
                self.absorb_batch(&mut partials, matches, &sel);
            }
            SplitData::Records(records) => {
                for r in records.iter().filter(|r| self.predicate.eval(r)) {
                    self.absorb(&mut partials, r);
                }
            }
            SplitData::Planted { matches, .. } => {
                debug_assert!(matches.iter().all(|r| self.predicate.eval(r)));
                for r in matches {
                    self.absorb(&mut partials, r);
                }
            }
        }
        MapResult {
            pairs: vec![(Key::from(AGG_KEY), encode(&partials))],
            records_read,
            ..MapResult::default()
        }
    }
}

/// Reduce side: merge all partials and emit the single final row.
#[derive(Debug, Clone)]
pub struct AggReducer {
    aggs: Vec<ResolvedAgg>,
}

impl AggReducer {
    /// Reducer matching an [`AggMapper`]'s aggregate list.
    pub fn new(aggs: Vec<ResolvedAgg>) -> Self {
        assert!(!aggs.is_empty());
        AggReducer { aggs }
    }
}

impl Reducer for AggReducer {
    fn reduce(&self, key: &Key, values: &[Record], output: &mut Vec<(Key, Record)>) {
        let mut totals: Vec<Partial> = self
            .aggs
            .iter()
            .map(|a| Partial::identity(a.func))
            .collect();
        for record in values {
            for (total, (partial, agg)) in totals
                .iter_mut()
                .zip(decode(record, self.aggs.len()).into_iter().zip(&self.aggs))
            {
                total.merge(agg.func, partial);
            }
        }
        let finals: Vec<Value> = totals
            .into_iter()
            .zip(&self.aggs)
            .map(|(p, a)| p.finish(a.func))
            .collect();
        output.push((Key::clone(key), Record::new(finals)));
    }
}

/// Render a group value as its map-output key. Strings stay as-is
/// (unquoted); everything else uses a canonical numeric rendering, so
/// the row and batch arms produce byte-identical keys.
fn group_key(v: &Value) -> Key {
    match v {
        Value::Str(s) => Key::from(s.as_str()),
        Value::Int(i) => Key::from(i.to_string()),
        Value::Float(f) => Key::from(f.to_string()),
        Value::Date(d) => Key::from(d.to_string()),
    }
}

/// Per-group observation accumulated over one split: the record count and
/// one running sum per aggregate (`COUNT` contributes 1.0 per record, so
/// its sum *is* the count).
struct GroupObs {
    n: u64,
    sums: Vec<f64>,
}

impl GroupObs {
    fn new(n_aggs: usize) -> GroupObs {
        GroupObs {
            n: 0,
            sums: vec![0.0; n_aggs],
        }
    }
}

/// Map side of grouped (and error-bounded) aggregation: emit **one
/// observation record per group per split**, keyed by the rendered group
/// value — the wire format `incmr_mapreduce::encode_group_part` defines
/// (`[Int n, Float sum_0, …]`), which the runtime's estimator decodes
/// into its per-group accumulator plane.
///
/// Only `COUNT`/`SUM`/`AVG` are supported: the accumulator plane carries
/// running moments, which have no MIN/MAX analogue. The compiler rejects
/// the rest with a typed error.
#[derive(Debug, Clone)]
pub struct GroupAggMapper {
    predicate: Predicate,
    group: Option<usize>,
    aggs: Vec<ResolvedAgg>,
}

impl GroupAggMapper {
    /// Aggregate `aggs` per `group` column (`None` = one whole-table
    /// group under [`AGG_KEY`]) over records matching `predicate`.
    pub fn new(predicate: Predicate, group: Option<usize>, aggs: Vec<ResolvedAgg>) -> Self {
        assert!(!aggs.is_empty());
        assert!(
            aggs.iter()
                .all(|a| matches!(a.func, AggFunc::Count | AggFunc::Sum | AggFunc::Avg)),
            "grouped aggregation supports COUNT/SUM/AVG only"
        );
        GroupAggMapper {
            predicate,
            group,
            aggs,
        }
    }

    fn absorb(&self, groups: &mut BTreeMap<Key, GroupObs>, record: &Record) {
        let key = match self.group {
            Some(g) => group_key(record.get(g)),
            None => Key::from(AGG_KEY),
        };
        let obs = groups
            .entry(key)
            .or_insert_with(|| GroupObs::new(self.aggs.len()));
        obs.n += 1;
        for (j, agg) in self.aggs.iter().enumerate() {
            obs.sums[j] += match (agg.func, agg.column) {
                (AggFunc::Count, _) => 1.0,
                (_, Some(c)) => numeric(record.get(c)),
                (_, None) => unreachable!("SUM/AVG always have a column"),
            };
        }
    }

    /// Columnar absorb: materialise the selected rows' group keys once,
    /// then sweep each aggregate's column vector — values come straight
    /// out of the batch, no `Record` is ever built.
    fn absorb_batch(&self, groups: &mut BTreeMap<Key, GroupObs>, batch: &RecordBatch, sel: &[u32]) {
        let keys: Vec<Key> = match self.group {
            None => sel.iter().map(|_| Key::from(AGG_KEY)).collect(),
            Some(g) => match batch.column(g) {
                ColumnData::Int(v) => sel
                    .iter()
                    .map(|&r| group_key(&Value::Int(v[r as usize])))
                    .collect(),
                ColumnData::Float(v) => sel
                    .iter()
                    .map(|&r| group_key(&Value::Float(v[r as usize])))
                    .collect(),
                ColumnData::Date(v) => sel
                    .iter()
                    .map(|&r| group_key(&Value::Date(v[r as usize])))
                    .collect(),
                // Dictionary-encoded strings: the dict entry is already an
                // `Arc<str>` — exactly a `Key` — so this is a refcount bump.
                ColumnData::Str(v) => sel.iter().map(|&r| Key::clone(v.get(r as usize))).collect(),
            },
        };
        for key in &keys {
            groups
                .entry(Key::clone(key))
                .or_insert_with(|| GroupObs::new(self.aggs.len()))
                .n += 1;
        }
        for (j, agg) in self.aggs.iter().enumerate() {
            if agg.func == AggFunc::Count {
                for key in &keys {
                    groups.get_mut(key).expect("seeded above").sums[j] += 1.0;
                }
                continue;
            }
            let c = agg.column.expect("SUM/AVG always have a column");
            match batch.column(c) {
                ColumnData::Int(v) => {
                    for (key, &r) in keys.iter().zip(sel) {
                        groups.get_mut(key).expect("seeded above").sums[j] += v[r as usize] as f64;
                    }
                }
                ColumnData::Float(v) => {
                    for (key, &r) in keys.iter().zip(sel) {
                        groups.get_mut(key).expect("seeded above").sums[j] += v[r as usize];
                    }
                }
                ColumnData::Date(v) => {
                    for (key, &r) in keys.iter().zip(sel) {
                        groups.get_mut(key).expect("seeded above").sums[j] += v[r as usize] as f64;
                    }
                }
                ColumnData::Str(_) => unreachable!("compiler rejects string aggregates"),
            }
        }
    }
}

impl Mapper for GroupAggMapper {
    fn run(&self, data: SplitData) -> MapResult {
        let mut groups: BTreeMap<Key, GroupObs> = BTreeMap::new();
        let records_read = data.total_records();
        match &data {
            SplitData::Batch(batch) => {
                let sel = self.predicate.eval_batch(batch);
                self.absorb_batch(&mut groups, batch, &sel);
            }
            SplitData::PlantedBatch { matches, .. } => {
                debug_assert_eq!(self.predicate.eval_batch(matches).len(), matches.len());
                let sel: Vec<u32> = (0..matches.len() as u32).collect();
                self.absorb_batch(&mut groups, matches, &sel);
            }
            SplitData::Records(records) => {
                for r in records.iter().filter(|r| self.predicate.eval(r)) {
                    self.absorb(&mut groups, r);
                }
            }
            SplitData::Planted { matches, .. } => {
                debug_assert!(matches.iter().all(|r| self.predicate.eval(r)));
                for r in matches {
                    self.absorb(&mut groups, r);
                }
            }
        }
        // BTreeMap iteration: pairs come out key-sorted, so the map output
        // is a pure function of the split's contents.
        MapResult {
            pairs: groups
                .into_iter()
                .map(|(key, obs)| (key, encode_group_part(obs.n, &obs.sums)))
                .collect(),
            records_read,
            ..MapResult::default()
        }
    }
}

/// Reduce side of grouped aggregation: merge each group's per-split
/// observation records and emit one output row per group. When `grouped`,
/// the row leads with the group value (as a string — the key rendering);
/// whole-table rows carry the aggregates only.
///
/// For error-bounded jobs the emitted totals cover only the **sampled**
/// splits; the session layer scales SUM/COUNT by the expansion factor
/// from the job's [`incmr_mapreduce::AggReport`] (AVG is a ratio and
/// needs no scaling).
#[derive(Debug, Clone)]
pub struct GroupAggReducer {
    aggs: Vec<ResolvedAgg>,
    grouped: bool,
}

impl GroupAggReducer {
    /// Reducer matching a [`GroupAggMapper`]'s aggregate list.
    pub fn new(aggs: Vec<ResolvedAgg>, grouped: bool) -> Self {
        assert!(!aggs.is_empty());
        GroupAggReducer { aggs, grouped }
    }
}

impl Reducer for GroupAggReducer {
    fn reduce(&self, key: &Key, values: &[Record], output: &mut Vec<(Key, Record)>) {
        let mut n_total = 0u64;
        let mut sums = vec![0.0; self.aggs.len()];
        for record in values {
            if record.arity() != 1 + self.aggs.len() {
                panic!("corrupt group part: arity {}", record.arity());
            }
            let Value::Int(n) = record.get(0) else {
                panic!("corrupt group part: non-int count")
            };
            n_total += *n as u64;
            for (j, s) in sums.iter_mut().enumerate() {
                let Value::Float(v) = record.get(1 + j) else {
                    panic!("corrupt group part: non-float sum")
                };
                *s += *v;
            }
        }
        let mut row = Vec::with_capacity(self.grouped as usize + self.aggs.len());
        if self.grouped {
            row.push(Value::Str(key.to_string()));
        }
        for (j, agg) in self.aggs.iter().enumerate() {
            row.push(match agg.func {
                AggFunc::Count => Value::Int(sums[j].round() as i64),
                AggFunc::Sum => Value::Float(sums[j]),
                AggFunc::Avg => Value::Float(if n_total == 0 {
                    0.0
                } else {
                    sums[j] / n_total as f64
                }),
                AggFunc::Min | AggFunc::Max => {
                    unreachable!("grouped aggregation supports COUNT/SUM/AVG only")
                }
            });
        }
        output.push((Key::clone(key), Record::new(row)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::lineitem::col;
    use incmr_data::Predicate;

    fn rec(q: i64, price: f64) -> Record {
        // Minimal two-column record standing in for (quantity, price).
        Record::new(vec![Value::Int(q), Value::Float(price)])
    }

    fn aggs() -> Vec<ResolvedAgg> {
        vec![
            ResolvedAgg {
                func: AggFunc::Count,
                column: None,
            },
            ResolvedAgg {
                func: AggFunc::Sum,
                column: Some(1),
            },
            ResolvedAgg {
                func: AggFunc::Avg,
                column: Some(0),
            },
            ResolvedAgg {
                func: AggFunc::Min,
                column: Some(0),
            },
            ResolvedAgg {
                func: AggFunc::Max,
                column: Some(0),
            },
        ]
    }

    #[test]
    fn map_reduce_agg_round_trip() {
        let mapper = AggMapper::new(Predicate::True, aggs());
        let out_a = mapper.run(SplitData::Records(vec![rec(2, 10.0), rec(4, 20.0)]));
        let out_b = mapper.run(SplitData::Records(vec![rec(6, 30.0)]));
        assert_eq!(out_a.pairs.len(), 1);
        let reducer = AggReducer::new(aggs());
        let mut rows = Vec::new();
        let partials = vec![out_a.pairs[0].1.clone(), out_b.pairs[0].1.clone()];
        reducer.reduce(&Key::from(AGG_KEY), &partials, &mut rows);
        assert_eq!(rows.len(), 1);
        let row = &rows[0].1;
        assert_eq!(row.get(0), &Value::Int(3)); // COUNT(*)
        assert_eq!(row.get(1), &Value::Float(60.0)); // SUM(price)
        assert_eq!(row.get(2), &Value::Float(4.0)); // AVG(q)
        assert_eq!(row.get(3), &Value::Float(2.0)); // MIN(q)
        assert_eq!(row.get(4), &Value::Float(6.0)); // MAX(q)
    }

    #[test]
    fn predicate_filters_before_aggregation() {
        let p = Predicate::Compare {
            column: 0,
            op: incmr_data::predicate::CmpOp::Ge,
            literal: Value::Int(4),
        };
        let mapper = AggMapper::new(
            p,
            vec![ResolvedAgg {
                func: AggFunc::Count,
                column: None,
            }],
        );
        let out = mapper.run(SplitData::Records(vec![
            rec(2, 1.0),
            rec(4, 1.0),
            rec(9, 1.0),
        ]));
        assert_eq!(out.records_read, 3);
        let reducer = AggReducer::new(vec![ResolvedAgg {
            func: AggFunc::Count,
            column: None,
        }]);
        let mut rows = Vec::new();
        reducer.reduce(&Key::from(AGG_KEY), &[out.pairs[0].1.clone()], &mut rows);
        assert_eq!(rows[0].1.get(0), &Value::Int(2));
    }

    #[test]
    fn zero_matches_produce_zeros() {
        let mapper = AggMapper::new(Predicate::Not(Box::new(Predicate::True)), aggs());
        let out = mapper.run(SplitData::Records(vec![rec(1, 1.0)]));
        let reducer = AggReducer::new(aggs());
        let mut rows = Vec::new();
        reducer.reduce(&Key::from(AGG_KEY), &[out.pairs[0].1.clone()], &mut rows);
        let row = &rows[0].1;
        assert_eq!(row.get(0), &Value::Int(0));
        assert_eq!(row.get(1), &Value::Float(0.0));
        assert_eq!(
            row.get(2),
            &Value::Float(0.0),
            "AVG of nothing is 0 in this subset"
        );
        assert_eq!(row.get(3), &Value::Float(0.0));
    }

    #[test]
    fn planted_mode_aggregates_the_matches() {
        use incmr_data::generator::{RecordFactory, SplitGenerator, SplitSpec};
        use incmr_data::lineitem::LineItemFactory;
        let factory = LineItemFactory::new(col::TAX, Value::Float(0.77));
        let gen = SplitGenerator::new(&factory, SplitSpec::new(2_000, 13, 5));
        let mapper = AggMapper::new(
            factory.predicate(),
            vec![ResolvedAgg {
                func: AggFunc::Count,
                column: None,
            }],
        );
        let full = mapper.run(SplitData::Records(gen.full_iter().collect()));
        let planted = mapper.run(SplitData::Planted {
            total_records: 2_000,
            matches: gen.planted_matches(),
        });
        assert_eq!(
            full.pairs[0].1, planted.pairs[0].1,
            "identical partials in both modes"
        );
    }

    #[test]
    fn batch_aggregation_matches_row_aggregation() {
        use incmr_data::generator::{RecordFactory, SplitGenerator, SplitSpec};
        use incmr_data::lineitem::LineItemFactory;
        use std::sync::Arc;
        let factory = LineItemFactory::new(col::QUANTITY, Value::Int(200));
        let gen = SplitGenerator::new(&factory, SplitSpec::new(2_000, 13, 5));
        let mut all = vec![ResolvedAgg {
            func: AggFunc::Count,
            column: None,
        }];
        for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            all.push(ResolvedAgg {
                func,
                column: Some(col::EXTENDEDPRICE),
            });
        }
        let mapper = AggMapper::new(factory.predicate(), all);
        let rows = mapper.run(SplitData::Records(gen.full_iter().collect()));
        let batch = mapper.run(SplitData::Batch(Arc::new(gen.full_batch())));
        assert_eq!(batch.pairs, rows.pairs, "full batch ≡ full rows");
        let rows = mapper.run(SplitData::Planted {
            total_records: 2_000,
            matches: gen.planted_matches(),
        });
        let pbatch = mapper.run(SplitData::PlantedBatch {
            total_records: 2_000,
            matches: Arc::new(gen.planted_batch()),
        });
        assert_eq!(pbatch.pairs, rows.pairs, "planted batch ≡ planted rows");
    }

    fn grouped_aggs() -> Vec<ResolvedAgg> {
        vec![
            ResolvedAgg {
                func: AggFunc::Count,
                column: None,
            },
            ResolvedAgg {
                func: AggFunc::Sum,
                column: Some(1),
            },
            ResolvedAgg {
                func: AggFunc::Avg,
                column: Some(1),
            },
        ]
    }

    fn grec(g: &str, price: f64) -> Record {
        Record::new(vec![Value::Str(g.into()), Value::Float(price)])
    }

    #[test]
    fn grouped_map_emits_one_part_per_group_in_key_order() {
        let mapper = GroupAggMapper::new(Predicate::True, Some(0), grouped_aggs());
        let out = mapper.run(SplitData::Records(vec![
            grec("b", 2.0),
            grec("a", 1.0),
            grec("b", 4.0),
        ]));
        assert_eq!(out.pairs.len(), 2);
        assert_eq!(&*out.pairs[0].0, "a");
        assert_eq!(&*out.pairs[1].0, "b");
        // Part format: [Int n, Float sum_count, Float sum_sum, Float sum_avg].
        assert_eq!(out.pairs[1].1.get(0), &Value::Int(2));
        assert_eq!(out.pairs[1].1.get(1), &Value::Float(2.0));
        assert_eq!(out.pairs[1].1.get(2), &Value::Float(6.0));
    }

    #[test]
    fn grouped_map_reduce_round_trip() {
        let mapper = GroupAggMapper::new(Predicate::True, Some(0), grouped_aggs());
        let a = mapper.run(SplitData::Records(vec![grec("x", 1.0), grec("y", 10.0)]));
        let b = mapper.run(SplitData::Records(vec![grec("x", 3.0)]));
        let reducer = GroupAggReducer::new(grouped_aggs(), true);
        let mut rows = Vec::new();
        let x_parts = vec![a.pairs[0].1.clone(), b.pairs[0].1.clone()];
        reducer.reduce(&Key::from("x"), &x_parts, &mut rows);
        reducer.reduce(&Key::from("y"), &[a.pairs[1].1.clone()], &mut rows);
        assert_eq!(rows.len(), 2);
        let x = &rows[0].1;
        assert_eq!(x.get(0), &Value::Str("x".into()), "group value leads");
        assert_eq!(x.get(1), &Value::Int(2));
        assert_eq!(x.get(2), &Value::Float(4.0));
        assert_eq!(x.get(3), &Value::Float(2.0));
        let y = &rows[1].1;
        assert_eq!(y.get(1), &Value::Int(1));
        assert_eq!(y.get(2), &Value::Float(10.0));
    }

    #[test]
    fn ungrouped_mapper_uses_the_shared_key_and_reducer_omits_it() {
        let mapper = GroupAggMapper::new(Predicate::True, None, grouped_aggs());
        let out = mapper.run(SplitData::Records(vec![grec("x", 1.0), grec("y", 2.0)]));
        assert_eq!(out.pairs.len(), 1);
        assert_eq!(&*out.pairs[0].0, AGG_KEY);
        let reducer = GroupAggReducer::new(grouped_aggs(), false);
        let mut rows = Vec::new();
        reducer.reduce(&Key::from(AGG_KEY), &[out.pairs[0].1.clone()], &mut rows);
        assert_eq!(rows[0].1.arity(), 3, "no group column");
        assert_eq!(rows[0].1.get(0), &Value::Int(2));
    }

    #[test]
    fn grouped_batch_matches_grouped_rows() {
        use incmr_data::generator::{RecordFactory, SplitGenerator, SplitSpec};
        use incmr_data::lineitem::LineItemFactory;
        use std::sync::Arc;
        let factory = LineItemFactory::new(col::QUANTITY, Value::Int(200));
        let gen = SplitGenerator::new(&factory, SplitSpec::new(2_000, 13, 5));
        let aggs = vec![
            ResolvedAgg {
                func: AggFunc::Count,
                column: None,
            },
            ResolvedAgg {
                func: AggFunc::Sum,
                column: Some(col::EXTENDEDPRICE),
            },
            ResolvedAgg {
                func: AggFunc::Avg,
                column: Some(col::QUANTITY),
            },
        ];
        let mapper = GroupAggMapper::new(factory.predicate(), Some(col::RETURNFLAG), aggs);
        let rows = mapper.run(SplitData::Records(gen.full_iter().collect()));
        let batch = mapper.run(SplitData::Batch(Arc::new(gen.full_batch())));
        assert_eq!(batch.pairs, rows.pairs, "full batch ≡ full rows");
        let planted_rows = mapper.run(SplitData::Planted {
            total_records: 2_000,
            matches: gen.planted_matches(),
        });
        let planted_batch = mapper.run(SplitData::PlantedBatch {
            total_records: 2_000,
            matches: Arc::new(gen.planted_batch()),
        });
        assert_eq!(planted_batch.pairs, planted_rows.pairs);
    }

    #[test]
    fn group_parts_decode_into_the_estimator_plane() {
        let mapper = GroupAggMapper::new(Predicate::True, Some(0), grouped_aggs());
        let out = mapper.run(SplitData::Records(vec![grec("g", 5.0), grec("g", 7.0)]));
        let part = incmr_mapreduce::decode_group_part(&out.pairs[0].0, &out.pairs[0].1, 3)
            .expect("mapper output is the estimator wire format");
        assert_eq!(&*part.group, "g");
        assert_eq!(part.n, 2);
        assert_eq!(part.sums, vec![2.0, 12.0, 12.0]);
    }
}
