//! # incmr-hiveql
//!
//! A miniature HiveQL front end, playing the role of the paper's modified
//! Hive 0.5.0 compiler (Section IV): queries of the form
//!
//! ```sql
//! SELECT ORDERKEY, PARTKEY, SUPPKEY FROM LINEITEM
//! WHERE L_TAX = 0.77 LIMIT 10000
//! ```
//!
//! compile to a **dynamic** MapReduce job whose `JobConf` carries
//! `dynamic.job = true`, the configured `dynamic.job.policy`, and the
//! sampling Input Provider — exactly the compilation path the paper adds to
//! Hive. Queries without a `LIMIT` compile to conventional static scan
//! jobs.
//!
//! Like Hive, the policy is *not* part of the query syntax ("the Hive
//! syntax does not allow specifying the policy as part of the query");
//! users pick it with `SET dynamic.job.policy = LA;` on the session.

pub mod agg;
pub mod ast;
pub mod builder;
pub mod catalog;
pub mod compile;
pub mod handle;
pub mod lexer;
pub mod parser;
pub mod session;

pub use agg::{AggMapper, AggReducer, GroupAggMapper, GroupAggReducer, ResolvedAgg};
pub use ast::{AggExpr, AggFunc, ErrorBound, Expr, Literal, Projection, Query, Statement};
pub use builder::{SessionBuilder, SessionConfigError, TenantProfile};
pub use catalog::Catalog;
pub use compile::{compile_query, ApproxInfo, CompileError, CompiledQuery, JobPlan};
pub use handle::{collect_result, QueryHandle, QueryResult, Submitted};
pub use lexer::{lex, LexError, Token};
pub use parser::{parse, ParseError};
pub use session::{Prepared, QueryOutput, Session, SessionError, SessionState};
