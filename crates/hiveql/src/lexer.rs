//! Tokeniser for the HiveQL subset. Keywords are case-insensitive;
//! identifiers keep their original spelling (column resolution is
//! case-insensitive anyway).

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognised by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::Star => write!(f, "*"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semi => write!(f, ";"),
        }
    }
}

/// A lexing failure, with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenise a statement.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()))
                || (c == '-'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|&b| b.is_ascii_digit() || b == b'.')) =>
            {
                // There is no binary minus in this grammar, so a leading
                // '-' always signs a numeric literal.
                let start = i;
                let mut j = if c == '-' { i + 1 } else { i };
                let mut saw_dot = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit() || (bytes[j] == b'.' && !saw_dot))
                {
                    if bytes[j] == b'.' {
                        saw_dot = true;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                let token = if saw_dot {
                    Token::Float(text.parse().map_err(|_| LexError {
                        position: start,
                        message: format!("bad float literal {text:?}"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| LexError {
                        position: start,
                        message: format!("bad int literal {text:?}"),
                    })?)
                };
                tokens.push(token);
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'.')
                {
                    j += 1;
                }
                tokens.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenises_the_paper_query() {
        let toks =
            lex("SELECT ORDERKEY, PARTKEY FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 10000").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("ORDERKEY".into()));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::Float(0.77)));
        assert!(toks.contains(&Token::Int(10_000)));
    }

    #[test]
    fn operators() {
        let toks = lex("a = 1 b != 2 c <> 3 d < 4 e <= 5 f > 6 g >= 7").unwrap();
        assert!(toks.contains(&Token::Eq));
        assert_eq!(toks.iter().filter(|t| **t == Token::Ne).count(), 2);
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Ge));
    }

    #[test]
    fn strings_and_stars_and_parens() {
        let toks = lex("SELECT * FROM t WHERE (x = 'REG AIR');").unwrap();
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Str("REG AIR".into())));
        assert!(toks.contains(&Token::LParen));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn dotted_identifiers_for_set_keys() {
        let toks = lex("SET dynamic.job.policy = LA").unwrap();
        assert_eq!(toks[1], Token::Ident("dynamic.job.policy".into()));
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("a = 'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.position, 4);
        assert!(lex("a # b").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn leading_dot_float() {
        let toks = lex("x = .5").unwrap();
        assert!(toks.contains(&Token::Float(0.5)));
    }

    #[test]
    fn negative_literals() {
        let toks = lex("x = -5 AND y = -0.25").unwrap();
        assert!(toks.contains(&Token::Int(-5)));
        assert!(toks.contains(&Token::Float(-0.25)));
        // A bare '-' is still an error (no arithmetic in this grammar).
        assert!(lex("x = - 5").is_err());
    }
}
