//! The query compiler: AST → (dynamic) MapReduce job.
//!
//! This is the paper's Hive modification (Section IV): "We have modified
//! the Hive compiler so that the constructed JobConf has the dynamic.job
//! flag set to true and the dynamic.input.provider parameter set to the
//! class name for the class that implements the Input Provider interface."
//!
//! Plan selection:
//!
//! * `SELECT … WHERE p LIMIT k` → a **dynamic sampling job** (Algorithms
//!   1–2, `SamplingInputProvider`, the session's configured policy);
//! * `SELECT … [WHERE p]` without `LIMIT` → a **static scan job** over the
//!   entire table.
//!
//! In `Planted` scan mode, only the table's planted experiment predicate
//! can be evaluated (the data generator materialises matches for that
//! predicate alone); the compiler rejects any other `WHERE` clause with
//! [`CompileError::PredicateNotPlanted`]. `Full` mode evaluates arbitrary
//! predicates over real records.

use std::fmt;
use std::sync::Arc;

use incmr_core::scan::ScanMapper;
use incmr_core::{
    build_sampling_job_with, DynamicDriver, EstimatingInputProvider, Policy, SampleMode,
};
use incmr_data::generator::RecordFactory;
use incmr_data::{predicate, ColumnType, Dataset, Schema, Value};
use incmr_mapreduce::{
    encode_funcs, keys, AggKind, GrowthDriver, JobConf, JobSpec, ScanMode, StaticDriver,
};

use crate::ast::AggFunc;

use crate::ast::{CmpOp, Expr, Literal, Projection, Query};
use crate::catalog::Catalog;

/// Compilation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The `FROM` table is not in the catalog.
    UnknownTable(String),
    /// A column is not in the table schema.
    UnknownColumn(String),
    /// A literal's type does not match its column's type.
    TypeMismatch {
        /// The column involved.
        column: String,
        /// Its declared type.
        expected: ColumnType,
        /// The literal that failed.
        literal: String,
    },
    /// In planted scan mode, only the table's experiment predicate is
    /// evaluable.
    PredicateNotPlanted {
        /// The predicate the dataset was planted with.
        planted: String,
    },
    /// An aggregate function was applied to a non-numeric column.
    NonNumericAggregate {
        /// The aggregate expression.
        agg: String,
    },
    /// `LIMIT` with aggregates is meaningless in this subset (the result
    /// is always a single row).
    AggregateWithLimit,
    /// `GROUP BY` on a non-aggregate projection.
    GroupByWithoutAggregates,
    /// `WITH ERROR` on a non-aggregate projection.
    ErrorBoundWithoutAggregates,
    /// `MIN`/`MAX` cannot run grouped or under an error bound: the
    /// estimator's accumulator plane carries running moments only.
    UnsupportedGroupedAggregate {
        /// The offending aggregate expression.
        agg: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            CompileError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            CompileError::TypeMismatch {
                column,
                expected,
                literal,
            } => write!(f, "column {column} is {expected}, literal {literal} does not fit"),
            CompileError::PredicateNotPlanted { planted } => write!(
                f,
                "planted scan mode can only evaluate the dataset's experiment predicate ({planted}); \
                 use Full scan mode for ad-hoc predicates"
            ),
            CompileError::NonNumericAggregate { agg } => {
                write!(f, "{agg} requires a numeric column")
            }
            CompileError::AggregateWithLimit => {
                write!(f, "LIMIT with aggregates is not supported (the result is one row)")
            }
            CompileError::GroupByWithoutAggregates => {
                write!(f, "GROUP BY requires an aggregate SELECT list")
            }
            CompileError::ErrorBoundWithoutAggregates => {
                write!(f, "WITH ERROR requires an aggregate SELECT list")
            }
            CompileError::UnsupportedGroupedAggregate { agg } => {
                write!(
                    f,
                    "{agg} cannot run grouped or error-bounded; only COUNT/SUM/AVG"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// What kind of job a query compiled to.
#[derive(Debug, Clone, PartialEq)]
pub enum JobPlan {
    /// Dynamic predicate-based sampling with the given `k` and policy name.
    DynamicSampling {
        /// Required sample size.
        k: u64,
        /// Policy controlling growth.
        policy: String,
    },
    /// A conventional full-input scan.
    StaticScan,
    /// A full-input scan feeding whole-table aggregates.
    AggregateScan {
        /// Rendered aggregate list, e.g. `COUNT(*), AVG(L_QUANTITY)`.
        aggregates: String,
    },
    /// A full-input scan feeding per-group aggregates.
    GroupedAggregateScan {
        /// Rendered aggregate list.
        aggregates: String,
        /// The grouping column.
        group_by: String,
    },
    /// Error-bounded approximate aggregation: a dynamic job growing its
    /// input in rounds until the CLT bound holds (EARL-style early
    /// results).
    ApproxAggregate {
        /// Rendered aggregate list.
        aggregates: String,
        /// The grouping column, if any.
        group_by: Option<String>,
        /// Target relative error.
        error: f64,
        /// Target confidence.
        confidence: f64,
    },
}

/// Result-shaping metadata for approximate-aggregation plans: what the
/// session layer needs to scale the sampled totals by the job's expansion
/// factor (SUM/COUNT scale by M/m; AVG is a ratio and does not).
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxInfo {
    /// Aggregate functions, in output-column order.
    pub funcs: Vec<crate::ast::AggFunc>,
    /// Whether rows lead with a group-value column.
    pub grouped: bool,
}

/// A compiled, ready-to-submit job.
pub struct CompiledQuery {
    /// The job spec (conf, mapper, reducer, input format).
    pub spec: JobSpec,
    /// The growth driver to submit alongside.
    pub driver: Box<dyn GrowthDriver>,
    /// What was planned (for `EXPLAIN` and tests).
    pub plan: JobPlan,
    /// Resolved projection column indices (empty = all columns).
    pub projection: Vec<usize>,
    /// Present on `ApproxAggregate` plans: how to scale result rows.
    pub approx: Option<ApproxInfo>,
}

impl fmt::Debug for CompiledQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledQuery")
            .field("plan", &self.plan)
            .field("projection", &self.projection)
            .finish_non_exhaustive()
    }
}

impl CompiledQuery {
    /// The requested sample size for dynamic sampling plans (`None` for
    /// static scans and aggregates).
    pub fn requested_k(&self) -> Option<u64> {
        match &self.plan {
            JobPlan::DynamicSampling { k, .. } => Some(*k),
            _ => None,
        }
    }

    /// Human-readable plan description (the `EXPLAIN` output).
    pub fn explain(&self) -> String {
        match &self.plan {
            JobPlan::DynamicSampling { k, policy } => format!(
                "Dynamic MapReduce job: predicate-based sampling\n  sample size (k): {k}\n  policy: {policy}\n  input provider: SamplingInputProvider\n  map: SamplingMapper (emit ≤ k matches per split under dummy key)\n  reduce: SamplingReducer (first k of the candidate list)"
            ),
            JobPlan::StaticScan => "Static MapReduce job: full select-project scan\n  map: ScanMapper\n  reduce: identity".to_string(),
            JobPlan::AggregateScan { aggregates } => format!(
                "Static MapReduce job: whole-table aggregation\n  aggregates: {aggregates}\n  map: AggMapper (one partial per split)\n  reduce: AggReducer (merge partials, emit one row)"
            ),
            JobPlan::GroupedAggregateScan {
                aggregates,
                group_by,
            } => format!(
                "Static MapReduce job: grouped aggregation\n  aggregates: {aggregates}\n  group by: {group_by}\n  map: GroupAggMapper (one observation per group per split)\n  reduce: GroupAggReducer (merge observations, emit one row per group)"
            ),
            JobPlan::ApproxAggregate {
                aggregates,
                group_by,
                error,
                confidence,
            } => format!(
                "Dynamic MapReduce job: error-bounded approximate aggregation\n  aggregates: {aggregates}\n  group by: {}\n  error bound: {error} at confidence {confidence}\n  input provider: EstimatingInputProvider (random splits, grown in rounds)\n  map: GroupAggMapper (one observation per group per split)\n  reduce: GroupAggReducer (merge observations; session scales by M/m)",
                group_by.as_deref().unwrap_or("(whole table)")
            ),
        }
    }
}

fn resolve_column(schema: &Schema, name: &str) -> Result<usize, CompileError> {
    schema
        .index_of(name)
        .ok_or_else(|| CompileError::UnknownColumn(name.to_string()))
}

fn lower_literal(
    schema: &Schema,
    column: usize,
    lit: &Literal,
    column_name: &str,
) -> Result<Value, CompileError> {
    let ty = schema.field(column).ty;
    let value = match (ty, lit) {
        (ColumnType::Int, Literal::Int(v)) => Value::Int(*v),
        (ColumnType::Float, Literal::Float(v)) => Value::Float(*v),
        (ColumnType::Float, Literal::Int(v)) => Value::Float(*v as f64),
        (ColumnType::Str, Literal::Str(s)) => Value::Str(s.clone()),
        // Dates are written as integer day offsets from the TPC-H epoch.
        (ColumnType::Date, Literal::Int(v)) if *v >= 0 => Value::Date(*v as u32),
        _ => {
            return Err(CompileError::TypeMismatch {
                column: column_name.to_string(),
                expected: ty,
                literal: lit.to_string(),
            })
        }
    };
    Ok(value)
}

fn lower_cmp_op(op: CmpOp) -> predicate::CmpOp {
    match op {
        CmpOp::Eq => predicate::CmpOp::Eq,
        CmpOp::Ne => predicate::CmpOp::Ne,
        CmpOp::Lt => predicate::CmpOp::Lt,
        CmpOp::Le => predicate::CmpOp::Le,
        CmpOp::Gt => predicate::CmpOp::Gt,
        CmpOp::Ge => predicate::CmpOp::Ge,
    }
}

/// Lower a surface expression to an executable predicate against a schema.
pub fn lower_expr(schema: &Schema, expr: &Expr) -> Result<predicate::Predicate, CompileError> {
    Ok(match expr {
        Expr::Cmp {
            column,
            op,
            literal,
        } => {
            let idx = resolve_column(schema, column)?;
            predicate::Predicate::Compare {
                column: idx,
                op: lower_cmp_op(*op),
                literal: lower_literal(schema, idx, literal, column)?,
            }
        }
        Expr::Between { column, low, high } => {
            let idx = resolve_column(schema, column)?;
            predicate::Predicate::Between {
                column: idx,
                low: lower_literal(schema, idx, low, column)?,
                high: lower_literal(schema, idx, high, column)?,
            }
        }
        Expr::And(a, b) => predicate::Predicate::And(
            Box::new(lower_expr(schema, a)?),
            Box::new(lower_expr(schema, b)?),
        ),
        Expr::Or(a, b) => predicate::Predicate::Or(
            Box::new(lower_expr(schema, a)?),
            Box::new(lower_expr(schema, b)?),
        ),
        Expr::Not(a) => predicate::Predicate::Not(Box::new(lower_expr(schema, a)?)),
    })
}

fn resolve_projection(
    schema: &Schema,
    projection: &Projection,
) -> Result<Vec<usize>, CompileError> {
    match projection {
        Projection::Star | Projection::Aggregates(_) => Ok(Vec::new()),
        Projection::Columns(names) => names.iter().map(|n| resolve_column(schema, n)).collect(),
    }
}

/// Map a surface aggregate onto the estimator plane's function kind
/// (`None` for MIN/MAX, which have no moment-based estimator).
fn agg_kind(func: AggFunc) -> Option<AggKind> {
    match func {
        AggFunc::Count => Some(AggKind::Count),
        AggFunc::Sum => Some(AggKind::Sum),
        AggFunc::Avg => Some(AggKind::Avg),
        AggFunc::Min | AggFunc::Max => None,
    }
}

fn resolve_aggregates(
    schema: &Schema,
    aggs: &[crate::ast::AggExpr],
) -> Result<Vec<crate::agg::ResolvedAgg>, CompileError> {
    aggs.iter()
        .map(|a| {
            let column = match &a.column {
                None => None,
                Some(name) => {
                    let idx = resolve_column(schema, name)?;
                    let numeric = matches!(
                        schema.field(idx).ty,
                        ColumnType::Int | ColumnType::Float | ColumnType::Date
                    );
                    if a.func != AggFunc::Count && !numeric {
                        return Err(CompileError::NonNumericAggregate { agg: a.to_string() });
                    }
                    Some(idx)
                }
            };
            Ok(crate::agg::ResolvedAgg {
                func: a.func,
                column,
            })
        })
        .collect()
}

/// Compile a query against a catalog under the session's policy, scan mode,
/// and sample mode. `seed` drives the sampling/estimating provider's random
/// split selection; `agg_rounds` bounds the growth loop of error-bounded
/// aggregate plans (`SET mapred.agg.rounds`, default
/// [`incmr_mapreduce::DEFAULT_AGG_ROUNDS`]).
#[allow(clippy::too_many_arguments)]
pub fn compile_query(
    query: &Query,
    catalog: &Catalog,
    policy: &Policy,
    scan_mode: ScanMode,
    sample_mode: SampleMode,
    seed: u64,
    agg_rounds: u64,
) -> Result<CompiledQuery, CompileError> {
    let dataset: &Arc<Dataset> = catalog
        .resolve(&query.table)
        .ok_or_else(|| CompileError::UnknownTable(query.table.clone()))?;
    let schema = catalog
        .schema(&query.table)
        .expect("resolved tables have schemas");
    let projection = resolve_projection(&schema, &query.projection)?;
    let predicate = match &query.predicate {
        Some(expr) => lower_expr(&schema, expr)?,
        None => predicate::Predicate::True,
    };
    // Planted-mode evaluability check (batch or row reference flavour).
    if matches!(scan_mode, ScanMode::Planted | ScanMode::PlantedRows) {
        let planted = dataset.factory().predicate();
        if predicate != planted {
            return Err(CompileError::PredicateNotPlanted {
                planted: planted.display(&schema).to_string(),
            });
        }
    }

    // GROUP BY / WITH ERROR only make sense over an aggregate SELECT list.
    if !matches!(query.projection, Projection::Aggregates(_)) {
        if query.group_by.is_some() {
            return Err(CompileError::GroupByWithoutAggregates);
        }
        if query.error_bound.is_some() {
            return Err(CompileError::ErrorBoundWithoutAggregates);
        }
    }

    // Aggregate queries: a static scan-aggregate job, its grouped
    // variant, or (under WITH ERROR) a dynamic estimating job.
    if let Projection::Aggregates(aggs) = &query.projection {
        if query.limit.is_some() {
            return Err(CompileError::AggregateWithLimit);
        }
        let resolved = resolve_aggregates(&schema, aggs)?;
        let rendered = aggs
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ");

        // Whole-table exact aggregation keeps the one-partial-per-split
        // shape (MIN/MAX supported).
        if query.group_by.is_none() && query.error_bound.is_none() {
            let spec = JobSpec::builder()
                .set(keys::JOB_NAME, format!("agg-{}", query.table))
                .input(incmr_mapreduce::DatasetInputFormat::new(
                    Arc::clone(dataset),
                    scan_mode,
                ))
                .mapper(crate::agg::AggMapper::new(predicate, resolved.clone()))
                .reducer(crate::agg::AggReducer::new(resolved))
                .build();
            let blocks = dataset.splits().iter().map(|p| p.block).collect();
            return Ok(CompiledQuery {
                spec,
                driver: Box::new(StaticDriver::new(blocks)),
                plan: JobPlan::AggregateScan {
                    aggregates: rendered,
                },
                projection,
                approx: None,
            });
        }

        // Grouped / error-bounded: the per-group observation plane. Only
        // COUNT/SUM/AVG have moment-based estimators.
        let funcs: Vec<AggKind> = aggs
            .iter()
            .map(|a| {
                agg_kind(a.func)
                    .ok_or_else(|| CompileError::UnsupportedGroupedAggregate { agg: a.to_string() })
            })
            .collect::<Result<_, _>>()?;
        let group_idx = match &query.group_by {
            Some(g) => Some(resolve_column(&schema, g)?),
            None => None,
        };
        let blocks: Vec<_> = dataset.splits().iter().map(|p| p.block).collect();
        let total = blocks.len() as u64;
        let mapper =
            crate::agg::GroupAggMapper::new(predicate.clone(), group_idx, resolved.clone());
        let reducer = crate::agg::GroupAggReducer::new(resolved, group_idx.is_some());

        // NOTE: no MATERIALIZE_CAP on any aggregate plan — the per-split
        // observation records ARE the result; a cap would drop them.
        match &query.error_bound {
            None => {
                let conf = JobConf::new()
                    .with(keys::JOB_NAME, format!("groupagg-{}", query.table))
                    .with(keys::AGG_FUNCS, encode_funcs(&funcs))
                    .with(keys::AGG_TOTAL_SPLITS, total);
                let spec = JobSpec::builder()
                    .conf(conf)
                    .reduces(1)
                    .input(incmr_mapreduce::DatasetInputFormat::new(
                        Arc::clone(dataset),
                        scan_mode,
                    ))
                    .mapper(mapper)
                    .reducer(reducer)
                    .build();
                Ok(CompiledQuery {
                    spec,
                    driver: Box::new(StaticDriver::new(blocks)),
                    plan: JobPlan::GroupedAggregateScan {
                        aggregates: rendered,
                        group_by: query.group_by.clone().expect("grouped-exact path"),
                    },
                    projection,
                    approx: None,
                })
            }
            Some(bound) => {
                // Memo identity: the semantic computation — table,
                // predicate, grouping, aggregate list, and the bound
                // itself. Warm re-runs share cached per-split map output.
                let pred_rendered = predicate.display(&schema).to_string();
                let bound_rendered = format!("{}@{}", bound.error, bound.confidence);
                let group_rendered = query.group_by.clone().unwrap_or_default();
                let funcs_rendered = encode_funcs(&funcs);
                let signature = incmr_mapreduce::signature_of_conf(
                    [
                        ("query.table", query.table.as_str()),
                        ("query.predicate", pred_rendered.as_str()),
                        ("query.group", group_rendered.as_str()),
                        ("query.aggs", funcs_rendered.as_str()),
                        ("query.bound", bound_rendered.as_str()),
                    ]
                    .into_iter(),
                    1,
                );
                let conf = JobConf::new()
                    .with(keys::JOB_NAME, format!("approx-{}", query.table))
                    .with(keys::DYNAMIC_JOB, true)
                    .with(keys::DYNAMIC_JOB_POLICY, &policy.name)
                    .with(keys::DYNAMIC_INPUT_PROVIDER, "EstimatingInputProvider")
                    .with(keys::AGG_ERROR, bound.error)
                    .with(keys::AGG_CONFIDENCE, bound.confidence)
                    .with(keys::AGG_ROUNDS, agg_rounds)
                    .with(keys::AGG_FUNCS, encode_funcs(&funcs))
                    .with(keys::AGG_TOTAL_SPLITS, total)
                    .with(keys::JOB_SIGNATURE, signature);
                let spec = JobSpec::builder()
                    .conf(conf)
                    .reduces(1)
                    .input(incmr_mapreduce::DatasetInputFormat::new(
                        Arc::clone(dataset),
                        scan_mode,
                    ))
                    .mapper(mapper)
                    .reducer(reducer)
                    .build();
                let provider = EstimatingInputProvider::new(blocks.clone(), agg_rounds, seed);
                let driver = Box::new(DynamicDriver::new(
                    Box::new(provider),
                    policy.clone(),
                    total as u32,
                ));
                Ok(CompiledQuery {
                    spec,
                    driver,
                    plan: JobPlan::ApproxAggregate {
                        aggregates: rendered,
                        group_by: query.group_by.clone(),
                        error: bound.error,
                        confidence: bound.confidence,
                    },
                    projection,
                    approx: Some(ApproxInfo {
                        funcs: aggs.iter().map(|a| a.func).collect(),
                        grouped: query.group_by.is_some(),
                    }),
                })
            }
        }
    } else {
        compile_scan_or_sample(
            query,
            dataset,
            predicate,
            projection,
            policy,
            scan_mode,
            sample_mode,
            seed,
        )
    }
}

/// The non-aggregate plans: dynamic predicate-based sampling (`LIMIT k`)
/// or a static select-project scan.
#[allow(clippy::too_many_arguments)]
fn compile_scan_or_sample(
    query: &Query,
    dataset: &Arc<Dataset>,
    predicate: predicate::Predicate,
    projection: Vec<usize>,
    policy: &Policy,
    scan_mode: ScanMode,
    sample_mode: SampleMode,
    seed: u64,
) -> Result<CompiledQuery, CompileError> {
    let schema = dataset.factory().schema();

    match query.limit {
        Some(k) => {
            // Memoization plane: a semantic signature over the query's
            // computation — table, predicate, projection, k. Re-running
            // the same query (however the submission-level conf varies)
            // shares cached per-split map output under this identity.
            let pred_rendered = predicate.display(&schema).to_string();
            let (mut spec, driver) = build_sampling_job_with(
                dataset,
                predicate,
                projection.clone(),
                k,
                policy.clone(),
                scan_mode,
                sample_mode,
                seed,
            );
            let k_rendered = k.to_string();
            let proj_rendered = format!("{projection:?}");
            let signature = incmr_mapreduce::signature_of_conf(
                [
                    ("query.table", query.table.as_str()),
                    ("query.predicate", pred_rendered.as_str()),
                    ("query.projection", proj_rendered.as_str()),
                    ("query.k", k_rendered.as_str()),
                ]
                .into_iter(),
                1,
            );
            spec.conf.set(keys::JOB_SIGNATURE, signature);
            Ok(CompiledQuery {
                spec,
                driver,
                plan: JobPlan::DynamicSampling {
                    k,
                    policy: policy.name.clone(),
                },
                projection,
                approx: None,
            })
        }
        None => {
            let materialize = matches!(scan_mode, ScanMode::Full | ScanMode::FullRows);
            let spec = JobSpec::builder()
                .set(keys::JOB_NAME, format!("scan-{}", query.table))
                .input(incmr_mapreduce::DatasetInputFormat::new(
                    Arc::clone(dataset),
                    scan_mode,
                ))
                .mapper(ScanMapper::new(predicate, projection.clone(), materialize))
                .build();
            let blocks = dataset.splits().iter().map(|p| p.block).collect();
            Ok(CompiledQuery {
                spec,
                driver: Box::new(StaticDriver::new(blocks)),
                plan: JobPlan::StaticScan,
                projection,
                approx: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Statement;
    use incmr_data::{DatasetSpec, SkewLevel};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_simkit::rng::DetRng;

    fn catalog() -> Catalog {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(1);
        // SkewLevel::High plants on L_TAX = 0.77.
        let ds = Arc::new(Dataset::build(
            &mut ns,
            DatasetSpec::small("li", 8, 200, SkewLevel::High, 1),
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let mut c = Catalog::new();
        c.register("lineitem", ds);
        c
    }

    fn query(sql: &str) -> Query {
        match parse(sql).unwrap() {
            Statement::Select(q) => q,
            _ => panic!(),
        }
    }

    fn compile(sql: &str, mode: ScanMode) -> Result<CompiledQuery, CompileError> {
        compile_query(
            &query(sql),
            &catalog(),
            &Policy::la(),
            mode,
            SampleMode::FirstK,
            1,
            incmr_mapreduce::DEFAULT_AGG_ROUNDS,
        )
    }

    #[test]
    fn limit_query_compiles_to_dynamic_sampling() {
        let c = compile(
            "SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM LINEITEM WHERE L_TAX = 0.77 LIMIT 100",
            ScanMode::Planted,
        )
        .unwrap();
        assert_eq!(
            c.plan,
            JobPlan::DynamicSampling {
                k: 100,
                policy: "LA".into()
            }
        );
        assert!(c.spec.conf.get_bool(keys::DYNAMIC_JOB));
        assert_eq!(c.spec.conf.get(keys::DYNAMIC_JOB_POLICY), Some("LA"));
        assert_eq!(c.projection.len(), 3);
        assert!(c.explain().contains("SamplingInputProvider"));
    }

    #[test]
    fn no_limit_compiles_to_static_scan() {
        let c = compile(
            "SELECT * FROM LINEITEM WHERE L_TAX = 0.77",
            ScanMode::Planted,
        )
        .unwrap();
        assert_eq!(c.plan, JobPlan::StaticScan);
        assert!(!c.spec.conf.get_bool(keys::DYNAMIC_JOB));
        assert!(c.explain().contains("full select-project scan"));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        assert_eq!(
            compile("SELECT * FROM nope LIMIT 1", ScanMode::Full).unwrap_err(),
            CompileError::UnknownTable("nope".into())
        );
        assert_eq!(
            compile("SELECT bogus FROM lineitem LIMIT 1", ScanMode::Full).unwrap_err(),
            CompileError::UnknownColumn("bogus".into())
        );
        assert!(matches!(
            compile(
                "SELECT * FROM lineitem WHERE bogus = 1 LIMIT 1",
                ScanMode::Full
            )
            .unwrap_err(),
            CompileError::UnknownColumn(_)
        ));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let err = compile(
            "SELECT * FROM lineitem WHERE L_QUANTITY = 'x' LIMIT 1",
            ScanMode::Full,
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::TypeMismatch { .. }));
        assert!(err.to_string().contains("L_QUANTITY"));
    }

    #[test]
    fn int_coerces_to_float_column() {
        let c = compile(
            "SELECT * FROM lineitem WHERE L_DISCOUNT = 0 LIMIT 1",
            ScanMode::Full,
        )
        .unwrap();
        assert!(matches!(c.plan, JobPlan::DynamicSampling { .. }));
    }

    #[test]
    fn planted_mode_rejects_foreign_predicates() {
        let err = compile(
            "SELECT * FROM lineitem WHERE L_QUANTITY = 200 LIMIT 10",
            ScanMode::Planted,
        )
        .unwrap_err();
        let CompileError::PredicateNotPlanted { planted } = err else {
            panic!("wrong error: {err:?}")
        };
        assert!(
            planted.contains("L_TAX"),
            "planted predicate named: {planted}"
        );
        // The planted predicate itself is fine.
        assert!(compile(
            "SELECT * FROM lineitem WHERE L_TAX = 0.77 LIMIT 10",
            ScanMode::Planted
        )
        .is_ok());
        // Full mode takes anything well-typed.
        assert!(compile(
            "SELECT * FROM lineitem WHERE L_QUANTITY = 200 LIMIT 10",
            ScanMode::Full
        )
        .is_ok());
    }

    #[test]
    fn between_and_connectives_lower() {
        let c = compile(
            "SELECT * FROM lineitem WHERE L_QUANTITY BETWEEN 1 AND 10 AND NOT L_SHIPMODE = 'AIR' LIMIT 5",
            ScanMode::Full,
        )
        .unwrap();
        assert!(matches!(c.plan, JobPlan::DynamicSampling { .. }));
    }

    #[test]
    fn date_columns_take_integer_day_offsets() {
        assert!(compile(
            "SELECT * FROM lineitem WHERE L_SHIPDATE < 100 LIMIT 5",
            ScanMode::Full
        )
        .is_ok());
        assert!(compile(
            "SELECT * FROM lineitem WHERE L_SHIPDATE = 'x' LIMIT 5",
            ScanMode::Full
        )
        .is_err());
    }

    #[test]
    fn grouped_aggregate_compiles_to_exact_grouped_scan() {
        let c = compile(
            "SELECT SUM(L_QUANTITY), COUNT(*) FROM lineitem GROUP BY L_RETURNFLAG",
            ScanMode::Full,
        )
        .unwrap();
        assert_eq!(
            c.plan,
            JobPlan::GroupedAggregateScan {
                aggregates: "SUM(L_QUANTITY), COUNT(*)".into(),
                group_by: "L_RETURNFLAG".into(),
            }
        );
        assert!(!c.spec.conf.get_bool(keys::DYNAMIC_JOB));
        assert_eq!(c.spec.conf.get(keys::AGG_FUNCS), Some("sum,count"));
        assert_eq!(c.spec.conf.get(keys::AGG_TOTAL_SPLITS), Some("8"));
        // Exact grouped runs never scale their rows.
        assert!(c.approx.is_none());
        assert!(c.explain().contains("group by: L_RETURNFLAG"));
    }

    #[test]
    fn error_bound_compiles_to_estimating_provider() {
        let c = compile(
            "SELECT AVG(L_TAX) FROM lineitem GROUP BY L_RETURNFLAG \
             WITH ERROR 0.05 CONFIDENCE 0.9",
            ScanMode::Full,
        )
        .unwrap();
        assert_eq!(
            c.plan,
            JobPlan::ApproxAggregate {
                aggregates: "AVG(L_TAX)".into(),
                group_by: Some("L_RETURNFLAG".into()),
                error: 0.05,
                confidence: 0.9,
            }
        );
        assert!(c.spec.conf.get_bool(keys::DYNAMIC_JOB));
        assert_eq!(
            c.spec.conf.get(keys::DYNAMIC_INPUT_PROVIDER),
            Some("EstimatingInputProvider")
        );
        assert_eq!(c.spec.conf.get(keys::AGG_ERROR), Some("0.05"));
        assert_eq!(c.spec.conf.get(keys::AGG_CONFIDENCE), Some("0.9"));
        assert!(c.spec.conf.get(keys::JOB_SIGNATURE).is_some());
        assert!(c.explain().contains("EstimatingInputProvider"));
    }

    #[test]
    fn error_bound_signature_is_semantic() {
        let sql = "SELECT SUM(L_QUANTITY) FROM lineitem WITH ERROR 0.1";
        let a = compile(sql, ScanMode::Full).unwrap();
        let b = compile(sql, ScanMode::Full).unwrap();
        assert_eq!(
            a.spec.conf.get(keys::JOB_SIGNATURE),
            b.spec.conf.get(keys::JOB_SIGNATURE),
        );
        let c = compile(
            "SELECT SUM(L_QUANTITY) FROM lineitem WITH ERROR 0.2",
            ScanMode::Full,
        )
        .unwrap();
        assert_ne!(
            a.spec.conf.get(keys::JOB_SIGNATURE),
            c.spec.conf.get(keys::JOB_SIGNATURE),
        );
    }

    #[test]
    fn grouped_and_bounded_plans_reject_min_max() {
        for sql in [
            "SELECT MIN(L_TAX) FROM lineitem GROUP BY L_RETURNFLAG",
            "SELECT MAX(L_TAX) FROM lineitem WITH ERROR 0.05",
        ] {
            let err = compile(sql, ScanMode::Full).unwrap_err();
            assert!(
                matches!(err, CompileError::UnsupportedGroupedAggregate { .. }),
                "{sql}: {err:?}"
            );
            assert!(err.to_string().contains("COUNT/SUM/AVG"));
        }
    }

    #[test]
    fn group_by_and_error_bound_require_aggregates() {
        assert_eq!(
            compile(
                "SELECT L_ORDERKEY FROM lineitem GROUP BY L_RETURNFLAG",
                ScanMode::Full
            )
            .unwrap_err(),
            CompileError::GroupByWithoutAggregates
        );
        assert_eq!(
            compile("SELECT * FROM lineitem WITH ERROR 0.05", ScanMode::Full).unwrap_err(),
            CompileError::ErrorBoundWithoutAggregates
        );
    }

    #[test]
    fn agg_rounds_flows_into_the_estimating_conf() {
        let c = compile_query(
            &query("SELECT COUNT(*) FROM lineitem WITH ERROR 0.05"),
            &catalog(),
            &Policy::la(),
            ScanMode::Full,
            SampleMode::FirstK,
            1,
            3,
        )
        .unwrap();
        assert_eq!(c.spec.conf.get(keys::AGG_ROUNDS), Some("3"));
    }
}
