//! Typed session construction, mirroring `JobSpec::builder()`: collect
//! the runtime, catalog, policy file, scan mode, tenant identity, and
//! quota knobs, then validate everything at once in
//! [`SessionBuilder::try_build`].

use std::fmt;
use std::sync::Arc;

use incmr_core::{PolicyFileError, SampleMode};
use incmr_data::Dataset;
use incmr_mapreduce::{MrRuntime, ScanMode};

use crate::catalog::Catalog;
use crate::session::{Session, SessionState};

/// Tenant identity and quota knobs a session carries into a multi-tenant
/// query service: its weighted fair share and its admission-control caps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantProfile {
    /// Human-readable tenant name (also keys per-tenant metrics).
    pub name: String,
    /// Weighted-fair-share weight (≥ 1; higher = more dispatch slots).
    pub weight: u32,
    /// Maximum jobs this tenant may have running at once (≥ 1).
    pub max_in_flight: u32,
    /// Maximum statements waiting in this tenant's queue before the
    /// service rejects new submissions (≥ 1).
    pub queue_cap: u32,
}

impl Default for TenantProfile {
    fn default() -> Self {
        TenantProfile {
            name: "default".to_string(),
            weight: 1,
            max_in_flight: 4,
            queue_cap: 16,
        }
    }
}

/// Typed configuration failures from [`SessionBuilder::try_build`].
#[derive(Debug)]
pub enum SessionConfigError {
    /// No runtime was supplied.
    MissingRuntime,
    /// The policy-file text failed to parse.
    PolicyFile(PolicyFileError),
    /// `active_policy` named a policy absent from the registry.
    UnknownPolicy {
        /// The requested name.
        requested: String,
        /// Names that are registered.
        available: Vec<String>,
    },
    /// A quota knob was zero (`weight`, `max_in_flight`, or `queue_cap`).
    ZeroQuota {
        /// Which knob.
        knob: &'static str,
    },
}

impl fmt::Display for SessionConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionConfigError::MissingRuntime => {
                write!(f, "session builder needs a runtime (call .runtime(rt))")
            }
            SessionConfigError::PolicyFile(e) => write!(f, "policy file: {e}"),
            SessionConfigError::UnknownPolicy {
                requested,
                available,
            } => write!(
                f,
                "active policy {requested:?} is not registered; available: {}",
                available.join(", ")
            ),
            SessionConfigError::ZeroQuota { knob } => {
                write!(f, "tenant quota knob {knob} must be at least 1")
            }
        }
    }
}

impl std::error::Error for SessionConfigError {}

impl From<PolicyFileError> for SessionConfigError {
    fn from(e: PolicyFileError) -> Self {
        SessionConfigError::PolicyFile(e)
    }
}

/// Builder for [`Session`]; obtain one via [`Session::builder`].
#[derive(Default)]
pub struct SessionBuilder {
    runtime: Option<MrRuntime>,
    catalog: Catalog,
    policy_file: Option<String>,
    active_policy: Option<String>,
    scan_mode: Option<ScanMode>,
    sample_mode: Option<SampleMode>,
    seed: Option<u64>,
    tenant: TenantProfile,
}

impl SessionBuilder {
    /// An empty builder (equivalent to [`Session::builder`]).
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// The runtime the session drives. Required.
    pub fn runtime(mut self, runtime: MrRuntime) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Replace the whole catalog.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Register one table (may be called repeatedly).
    pub fn table(mut self, name: &str, dataset: Arc<Dataset>) -> Self {
        self.catalog.register(name, dataset);
        self
    }

    /// Replace the policy registry from a policy-file text (the
    /// `policy.xml` equivalent); parsed and validated in `try_build`.
    pub fn policy_file(mut self, text: &str) -> Self {
        self.policy_file = Some(text.to_string());
        self
    }

    /// Activate the named policy (validated against the registry in
    /// `try_build`).
    pub fn active_policy(mut self, name: &str) -> Self {
        self.active_policy = Some(name.to_string());
        self
    }

    /// Scan mode (default `Planted`).
    pub fn scan_mode(mut self, mode: ScanMode) -> Self {
        self.scan_mode = Some(mode);
        self
    }

    /// Sample-selection mode (default `FirstK`).
    pub fn sample_mode(mut self, mode: SampleMode) -> Self {
        self.sample_mode = Some(mode);
        self
    }

    /// Seed for the per-query RNG counter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Tenant identity (default `"default"`).
    pub fn tenant(mut self, name: &str) -> Self {
        self.tenant.name = name.to_string();
        self
    }

    /// Weighted-fair-share weight (default 1).
    pub fn weight(mut self, weight: u32) -> Self {
        self.tenant.weight = weight;
        self
    }

    /// In-flight job quota (default 4).
    pub fn max_in_flight(mut self, jobs: u32) -> Self {
        self.tenant.max_in_flight = jobs;
        self
    }

    /// Queue-depth cap before admission control rejects (default 16).
    pub fn queue_cap(mut self, depth: u32) -> Self {
        self.tenant.queue_cap = depth;
        self
    }

    /// Validate the configuration and build the session.
    pub fn try_build(self) -> Result<Session, SessionConfigError> {
        let runtime = self.runtime.ok_or(SessionConfigError::MissingRuntime)?;
        let mut state = SessionState::new();
        if let Some(text) = &self.policy_file {
            state.load_policies(text)?;
        }
        if let Some(name) = &self.active_policy {
            state.set_active_policy(name).map_err(|e| match e {
                crate::SessionError::UnknownPolicy {
                    requested,
                    available,
                } => SessionConfigError::UnknownPolicy {
                    requested,
                    available,
                },
                other => unreachable!("set_active_policy only fails with UnknownPolicy: {other}"),
            })?;
        }
        if let Some(mode) = self.scan_mode {
            state.set_scan_mode(mode);
        }
        if let Some(mode) = self.sample_mode {
            state.set_sample_mode(mode);
        }
        if let Some(seed) = self.seed {
            state.set_seed(seed);
        }
        for (knob, value) in [
            ("weight", self.tenant.weight),
            ("max_in_flight", self.tenant.max_in_flight),
            ("queue_cap", self.tenant.queue_cap),
        ] {
            if value == 0 {
                return Err(SessionConfigError::ZeroQuota { knob });
            }
        }
        Ok(Session::from_parts(
            runtime,
            self.catalog,
            state,
            self.tenant,
        ))
    }

    /// Build, panicking on configuration errors (tests / examples).
    pub fn build(self) -> Session {
        self.try_build().expect("invalid session configuration")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::{DatasetSpec, SkewLevel};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_mapreduce::{ClusterConfig, CostModel, FifoScheduler};
    use incmr_simkit::rng::DetRng;

    fn runtime() -> (MrRuntime, Arc<Dataset>) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(3);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            DatasetSpec::small("t", 4, 100, SkewLevel::High, 3),
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        (rt, ds)
    }

    #[test]
    fn missing_runtime_is_a_typed_error() {
        let err = SessionBuilder::new().try_build().unwrap_err();
        assert!(matches!(err, SessionConfigError::MissingRuntime));
        assert!(err.to_string().contains("runtime"));
    }

    #[test]
    fn builder_wires_policy_file_and_active_policy() {
        let (rt, ds) = runtime();
        let s = Session::builder()
            .runtime(rt)
            .table("lineitem", ds)
            .policy_file(
                r#"<policies>
                     <policy name="a"><workThreshold>1</workThreshold><grabLimit>1</grabLimit></policy>
                     <policy name="b"><workThreshold>2</workThreshold><grabLimit>2</grabLimit></policy>
                   </policies>"#,
            )
            .active_policy("b")
            .try_build()
            .unwrap();
        assert_eq!(s.active_policy().name, "b");
        assert_eq!(s.catalog().table_names(), vec!["lineitem"]);
    }

    #[test]
    fn unknown_active_policy_is_rejected() {
        let (rt, _) = runtime();
        let err = Session::builder()
            .runtime(rt)
            .active_policy("nope")
            .try_build()
            .unwrap_err();
        let SessionConfigError::UnknownPolicy { available, .. } = err else {
            panic!()
        };
        assert!(available.contains(&"LA".into()));
    }

    #[test]
    fn bad_policy_file_is_rejected() {
        let (rt, _) = runtime();
        let err = Session::builder()
            .runtime(rt)
            .policy_file("<policies></policies>")
            .try_build()
            .unwrap_err();
        assert!(matches!(err, SessionConfigError::PolicyFile(_)));
    }

    #[test]
    fn zero_quota_knobs_are_rejected() {
        for apply in [
            (|b: SessionBuilder| b.weight(0)) as fn(SessionBuilder) -> SessionBuilder,
            |b| b.max_in_flight(0),
            |b| b.queue_cap(0),
        ] {
            let (rt, _) = runtime();
            let err = apply(Session::builder().runtime(rt))
                .try_build()
                .unwrap_err();
            assert!(matches!(err, SessionConfigError::ZeroQuota { .. }), "{err}");
        }
    }

    #[test]
    fn tenant_identity_and_quotas_are_carried() {
        let (rt, _) = runtime();
        let s = Session::builder()
            .runtime(rt)
            .tenant("analytics")
            .weight(3)
            .max_in_flight(2)
            .queue_cap(5)
            .try_build()
            .unwrap();
        assert_eq!(
            s.tenant(),
            &TenantProfile {
                name: "analytics".into(),
                weight: 3,
                max_in_flight: 2,
                queue_cap: 5,
            }
        );
    }
}
