//! Property-based tests of the HiveQL front end: total safety on arbitrary
//! input and display/parse round-tripping on arbitrary well-formed queries.

use proptest::prelude::*;

use incmr_hiveql::ast::{CmpOp, ErrorBound, Expr, Literal, Projection, Query};
use incmr_hiveql::{parse, Statement};

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Literal::Int),
        // Finite floats that survive Display → parse exactly enough.
        (-1000i32..1000).prop_map(|v| Literal::Float(v as f64 / 4.0)),
        "[a-zA-Z ]{0,12}".prop_map(Literal::Str),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,10}".prop_filter("not a keyword", |s| {
        ![
            "select",
            "from",
            "where",
            "limit",
            "and",
            "or",
            "not",
            "between",
            "set",
            "explain",
            "count",
            "sum",
            "avg",
            "min",
            "max",
            "group",
            "by",
            "with",
            "error",
            "confidence",
        ]
        .contains(&s.to_ascii_lowercase().as_str())
    })
}

/// Bound fractions that survive Display → parse exactly (two decimals,
/// strictly inside the open unit interval).
fn arb_unit_fraction() -> impl Strategy<Value = f64> {
    (1i32..100).prop_map(|v| v as f64 / 100.0)
}

fn arb_error_bound() -> impl Strategy<Value = ErrorBound> {
    (arb_unit_fraction(), arb_unit_fraction())
        .prop_map(|(error, confidence)| ErrorBound { error, confidence })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (arb_ident(), arb_literal()).prop_map(|(column, literal)| Expr::Cmp {
            column,
            op: CmpOp::Eq,
            literal,
        }),
        (arb_ident(), -100i64..100, 100i64..200).prop_map(|(column, lo, hi)| Expr::Between {
            column,
            low: Literal::Int(lo),
            high: Literal::Int(hi),
        }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop_oneof![
            Just(Projection::Star),
            prop::collection::vec(arb_ident(), 1..4).prop_map(Projection::Columns),
        ],
        arb_ident(),
        prop::option::of(arb_expr()),
        prop::option::of(arb_ident()),
        prop::option::of(arb_error_bound()),
        prop::option::of(1u64..100_000),
    )
        .prop_map(
            |(projection, table, predicate, group_by, error_bound, limit)| Query {
                projection,
                table,
                predicate,
                group_by,
                error_bound,
                limit,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser is total: arbitrary input returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = parse(&input);
    }

    /// Rendering a well-formed query and re-parsing it yields the same AST.
    #[test]
    fn display_parse_round_trip(query in arb_query()) {
        let rendered = query.to_string();
        let reparsed = parse(&rendered);
        prop_assert!(reparsed.is_ok(), "failed to reparse {rendered:?}: {reparsed:?}");
        match reparsed.unwrap() {
            Statement::Select(q2) => {
                // NOT binds tighter than comparison rendering could imply,
                // but our Display parenthesises And/Or, so ASTs match
                // except for float formatting; compare via re-rendering.
                prop_assert_eq!(q2.to_string(), rendered);
            }
            other => prop_assert!(false, "round-trip produced {other:?}"),
        }
    }

    /// `WITH ERROR` / `CONFIDENCE` values outside the open unit interval
    /// are typed parse errors — never panics, never silent acceptance.
    #[test]
    fn out_of_range_bounds_are_rejected(
        v in prop_oneof![
            Just(0.0), Just(1.0),
            (-1000i32..=0).prop_map(|v| v as f64 / 100.0),
            (100i32..2000).prop_map(|v| v as f64 / 100.0),
        ],
        as_confidence in any::<bool>(),
    ) {
        let sql = if as_confidence {
            format!("SELECT SUM(x) FROM t WITH ERROR 0.05 CONFIDENCE {v}")
        } else {
            format!("SELECT SUM(x) FROM t WITH ERROR {v}")
        };
        let parsed = parse(&sql);
        prop_assert!(parsed.is_err(), "accepted out-of-range bound: {sql}");
        let msg = parsed.unwrap_err().to_string();
        prop_assert!(
            msg.contains("strictly between 0 and 1"),
            "untyped rejection for {sql}: {msg}"
        );
    }

    /// In-range bound clauses always parse and carry the exact values.
    #[test]
    fn in_range_bounds_parse(bound in arb_error_bound()) {
        let sql = format!(
            "SELECT SUM(x) FROM t WITH ERROR {} CONFIDENCE {}",
            bound.error, bound.confidence
        );
        let parsed = parse(&sql).unwrap();
        let Statement::Select(q) = parsed else {
            panic!("not a select: {sql}")
        };
        prop_assert_eq!(q.error_bound, Some(bound));
    }

    /// The estimator's per-group accumulator merge is order-invariant:
    /// folding the same split observations in any permutation produces
    /// identical accumulators (integer-valued observations make the
    /// floating-point sums exact, so equality is byte-exact).
    #[test]
    fn accumulator_fold_is_permutation_invariant(
        parts in prop::collection::vec(
            (0u32..8, 0u64..100, prop::collection::vec(-50i64..50, 2))
                .prop_map(|(g, n, sums)| {
                    (g, n, sums.into_iter().map(|s| s as f64).collect::<Vec<f64>>())
                }),
            1..20,
        ),
        seed in any::<u64>(),
    ) {
        use std::collections::BTreeMap;
        use incmr_mapreduce::{fold_parts, SplitAggPart};

        let build = |order: &[usize]| {
            let mut m: BTreeMap<u32, Vec<SplitAggPart>> = BTreeMap::new();
            for &i in order {
                let (g, n, sums) = &parts[i];
                m.entry(i as u32).or_default().push(SplitAggPart {
                    group: format!("g{g}").into(),
                    n: *n,
                    sums: sums.clone(),
                });
            }
            fold_parts(&m, 2)
        };

        let forward: Vec<usize> = (0..parts.len()).collect();
        // A deterministic shuffle driven by the seed.
        let mut shuffled = forward.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }

        let a = build(&forward);
        let b = build(&shuffled);
        prop_assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(&va.c1, &vb.c1);
            prop_assert_eq!(&va.c2, &vb.c2);
            prop_assert_eq!(&va.s1, &vb.s1);
            prop_assert_eq!(&va.s2, &vb.s2);
            prop_assert_eq!(&va.xy, &vb.xy);
            prop_assert_eq!(&va.present, &vb.present);
        }
    }
}
