//! Property-based tests of the HiveQL front end: total safety on arbitrary
//! input and display/parse round-tripping on arbitrary well-formed queries.

use proptest::prelude::*;

use incmr_hiveql::ast::{CmpOp, Expr, Literal, Projection, Query};
use incmr_hiveql::{parse, Statement};

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Literal::Int),
        // Finite floats that survive Display → parse exactly enough.
        (-1000i32..1000).prop_map(|v| Literal::Float(v as f64 / 4.0)),
        "[a-zA-Z ]{0,12}".prop_map(Literal::Str),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_]{0,10}".prop_filter("not a keyword", |s| {
        ![
            "select", "from", "where", "limit", "and", "or", "not", "between", "set", "explain",
            "count", "sum", "avg", "min", "max",
        ]
        .contains(&s.to_ascii_lowercase().as_str())
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (arb_ident(), arb_literal()).prop_map(|(column, literal)| Expr::Cmp {
            column,
            op: CmpOp::Eq,
            literal,
        }),
        (arb_ident(), -100i64..100, 100i64..200).prop_map(|(column, lo, hi)| Expr::Between {
            column,
            low: Literal::Int(lo),
            high: Literal::Int(hi),
        }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop_oneof![
            Just(Projection::Star),
            prop::collection::vec(arb_ident(), 1..4).prop_map(Projection::Columns),
        ],
        arb_ident(),
        prop::option::of(arb_expr()),
        prop::option::of(1u64..100_000),
    )
        .prop_map(|(projection, table, predicate, limit)| Query {
            projection,
            table,
            predicate,
            limit,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser is total: arbitrary input returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = parse(&input);
    }

    /// Rendering a well-formed query and re-parsing it yields the same AST.
    #[test]
    fn display_parse_round_trip(query in arb_query()) {
        let rendered = query.to_string();
        let reparsed = parse(&rendered);
        prop_assert!(reparsed.is_ok(), "failed to reparse {rendered:?}: {reparsed:?}");
        match reparsed.unwrap() {
            Statement::Select(q2) => {
                // NOT binds tighter than comparison rendering could imply,
                // but our Display parenthesises And/Or, so ASTs match
                // except for float formatting; compare via re-rendering.
                prop_assert_eq!(q2.to_string(), rendered);
            }
            other => prop_assert!(false, "round-trip produced {other:?}"),
        }
    }
}
