//! Runtime selectivity and split-size estimation (paper Section IV).
//!
//! "Given the number of input records processed so far and the number of
//! matching records found among them, the Input Provider estimates the
//! predicate selectivity for the input data. … given the splits and the
//! total input records processed so far, the Input Provider computes the
//! expected number of records in each split."
//!
//! The estimator is intentionally naive — a running ratio — because that is
//! what the paper uses, and its failure modes under skew (over/under
//! estimation, Section V-B) are part of the behaviour being reproduced.

use incmr_mapreduce::JobProgress;

/// Running estimates derived from completed map tasks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SelectivityEstimator {
    records_processed: u64,
    matches_found: u64,
    splits_completed: u32,
}

/// A projection of how much more input a sampling job needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgressEstimate {
    /// Not a single map task has completed — nothing to extrapolate from.
    NoData,
    /// Data has been processed but no matches found; the selectivity
    /// estimate is zero and the required additional input is unbounded.
    NoMatchesYet,
    /// A usable estimate.
    Estimate {
        /// Estimated predicate selectivity (matches / records).
        selectivity: f64,
        /// Estimated records per split.
        records_per_split: f64,
        /// Expected matches still to arrive from splits already scheduled
        /// but not yet completed.
        expected_from_outstanding: f64,
        /// Additional splits (beyond those scheduled) estimated necessary
        /// to reach the target; zero if the outstanding work should
        /// already suffice.
        additional_splits_needed: u64,
    },
}

impl SelectivityEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb the progress report of the current evaluation. Progress is
    /// cumulative, so this *replaces* state rather than accumulating.
    pub fn update(&mut self, progress: &JobProgress) {
        self.records_processed = progress.records_processed;
        self.matches_found = progress.map_output_records;
        self.splits_completed = progress.splits_completed;
    }

    /// Estimated selectivity, if any data has been seen.
    pub fn selectivity(&self) -> Option<f64> {
        (self.records_processed > 0)
            .then(|| self.matches_found as f64 / self.records_processed as f64)
    }

    /// Estimated records per split, if any split has completed.
    pub fn records_per_split(&self) -> Option<f64> {
        (self.splits_completed > 0)
            .then(|| self.records_processed as f64 / self.splits_completed as f64)
    }

    /// Project what is needed to reach `k` total matches, given
    /// `outstanding_splits` scheduled-but-incomplete splits.
    pub fn project(&self, k: u64, outstanding_splits: u32) -> ProgressEstimate {
        let (Some(selectivity), Some(records_per_split)) =
            (self.selectivity(), self.records_per_split())
        else {
            return ProgressEstimate::NoData;
        };
        if selectivity <= 0.0 {
            return ProgressEstimate::NoMatchesYet;
        }
        let expected_from_outstanding = outstanding_splits as f64 * records_per_split * selectivity;
        let projected_total = self.matches_found as f64 + expected_from_outstanding;
        let additional_splits_needed = if projected_total >= k as f64 {
            0
        } else {
            let additional_matches = k as f64 - projected_total;
            let additional_records = additional_matches / selectivity;
            (additional_records / records_per_split).ceil() as u64
        };
        ProgressEstimate::Estimate {
            selectivity,
            records_per_split,
            expected_from_outstanding,
            additional_splits_needed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_mapreduce::JobId;

    fn progress(completed: u32, records: u64, matches: u64) -> JobProgress {
        JobProgress {
            job: JobId(0),
            splits_added: completed,
            splits_completed: completed,
            splits_running: 0,
            splits_pending: 0,
            records_processed: records,
            map_output_records: matches,
        }
    }

    #[test]
    fn no_data_before_any_completion() {
        let e = SelectivityEstimator::new();
        assert_eq!(e.selectivity(), None);
        assert_eq!(e.records_per_split(), None);
        assert_eq!(e.project(100, 5), ProgressEstimate::NoData);
    }

    #[test]
    fn zero_matches_is_flagged() {
        let mut e = SelectivityEstimator::new();
        e.update(&progress(4, 4_000, 0));
        assert_eq!(e.selectivity(), Some(0.0));
        assert_eq!(e.project(100, 0), ProgressEstimate::NoMatchesYet);
    }

    #[test]
    fn straightforward_estimate() {
        let mut e = SelectivityEstimator::new();
        // 10 splits done, 1000 records each, 1% selectivity → 100 matches.
        e.update(&progress(10, 10_000, 100));
        assert_eq!(e.selectivity(), Some(0.01));
        assert_eq!(e.records_per_split(), Some(1_000.0));
        // Want 400 matches total; 5 outstanding splits are expected to add
        // 50; so 250 more matches ≈ 25_000 records ≈ 25 splits.
        let ProgressEstimate::Estimate {
            expected_from_outstanding,
            additional_splits_needed,
            ..
        } = e.project(400, 5)
        else {
            panic!("expected estimate");
        };
        assert!((expected_from_outstanding - 50.0).abs() < 1e-9);
        assert_eq!(additional_splits_needed, 25);
    }

    #[test]
    fn outstanding_work_can_cover_the_target() {
        let mut e = SelectivityEstimator::new();
        e.update(&progress(10, 10_000, 100));
        let ProgressEstimate::Estimate {
            additional_splits_needed,
            ..
        } = e.project(150, 10)
        else {
            panic!();
        };
        assert_eq!(
            additional_splits_needed, 0,
            "100 found + 100 expected ≥ 150"
        );
    }

    #[test]
    fn target_already_met_needs_nothing() {
        let mut e = SelectivityEstimator::new();
        e.update(&progress(10, 10_000, 500));
        let ProgressEstimate::Estimate {
            additional_splits_needed,
            ..
        } = e.project(400, 0)
        else {
            panic!();
        };
        assert_eq!(additional_splits_needed, 0);
    }

    #[test]
    fn update_replaces_rather_than_accumulates() {
        let mut e = SelectivityEstimator::new();
        e.update(&progress(10, 10_000, 100));
        e.update(&progress(20, 20_000, 100));
        assert_eq!(e.selectivity(), Some(0.005));
    }

    #[test]
    fn fractional_needs_round_up() {
        let mut e = SelectivityEstimator::new();
        e.update(&progress(10, 10_000, 100)); // sel 1%, 1000 rec/split
                                              // Need 5 more matches → 500 records → 0.5 split → 1.
        let ProgressEstimate::Estimate {
            additional_splits_needed,
            ..
        } = e.project(105, 0)
        else {
            panic!();
        };
        assert_eq!(additional_splits_needed, 1);
    }
}
