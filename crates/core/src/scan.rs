//! The select-project scan mapper — the *Non-Sampling* job class of the
//! paper's heterogeneous-workload experiment ("Non-Sampling users submit
//! basic select-project queries with a selectivity of 0.05%", Section V-E).
//!
//! A scan job is a conventional static job: it processes its entire input.
//! Its outputs exist for accounting (output counts and shuffle bytes) but
//! nothing downstream inspects their contents, so in planted mode they are
//! reported unmaterialised — which is what lets a 600M-row scan job run in
//! the simulator without holding 300k records in memory.

use std::sync::Arc;

use incmr_data::{Predicate, Record, RecordBatch};
use incmr_mapreduce::{Key, MapResult, Mapper, SplitData};

/// A select-project mapper: `SELECT columns FROM t WHERE predicate`.
#[derive(Debug, Clone)]
pub struct ScanMapper {
    predicate: Predicate,
    projection: Vec<usize>,
    materialize: bool,
}

impl ScanMapper {
    /// A scan with the given predicate and projected column indices.
    /// `materialize` controls whether matching records are carried as real
    /// pairs (small jobs, examples) or as counters only (simulated load).
    pub fn new(predicate: Predicate, projection: Vec<usize>, materialize: bool) -> Self {
        ScanMapper {
            predicate,
            projection,
            materialize,
        }
    }

    fn project(&self, r: &Record) -> Record {
        if self.projection.is_empty() {
            r.clone()
        } else {
            r.project(&self.projection)
        }
    }

    fn emit(&self, matches: &[&Record], total: u64) -> MapResult {
        if self.materialize {
            MapResult {
                pairs: matches
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (Key::from(format!("r{i}")), self.project(r)))
                    .collect(),
                records_read: total,
                ..MapResult::default()
            }
        } else {
            let bytes: u64 = matches.iter().map(|r| self.project(r).width() + 8).sum();
            MapResult {
                records_read: total,
                unmaterialized_outputs: matches.len() as u64,
                unmaterialized_bytes: bytes,
                ..MapResult::default()
            }
        }
    }

    /// The columnar scan: widths and counts come straight off the column
    /// vectors. Records are only built in the (small-job) materialised
    /// path, where per-row keys force real pairs; the simulated-load path
    /// never constructs a `Record` at all.
    fn emit_batch(&self, batch: &Arc<RecordBatch>, sel: &[u32], total: u64) -> MapResult {
        if self.materialize {
            MapResult {
                pairs: sel
                    .iter()
                    .enumerate()
                    .map(|(i, &row)| {
                        (
                            Key::from(format!("r{i}")),
                            batch.record(row as usize, &self.projection),
                        )
                    })
                    .collect(),
                records_read: total,
                ..MapResult::default()
            }
        } else {
            let bytes: u64 = sel
                .iter()
                .map(|&row| batch.row_width(row as usize, &self.projection) + 8)
                .sum();
            MapResult {
                records_read: total,
                unmaterialized_outputs: sel.len() as u64,
                unmaterialized_bytes: bytes,
                ..MapResult::default()
            }
        }
    }
}

impl Mapper for ScanMapper {
    fn run(&self, data: SplitData) -> MapResult {
        match data {
            SplitData::Batch(batch) => {
                let sel = self.predicate.eval_batch(&batch);
                self.emit_batch(&batch, &sel, batch.len() as u64)
            }
            SplitData::PlantedBatch {
                total_records,
                matches,
            } => {
                debug_assert_eq!(self.predicate.eval_batch(&matches).len(), matches.len());
                let sel: Vec<u32> = (0..matches.len() as u32).collect();
                self.emit_batch(&matches, &sel, total_records)
            }
            SplitData::Records(records) => {
                let matches: Vec<&Record> =
                    records.iter().filter(|r| self.predicate.eval(r)).collect();
                self.emit(&matches, records.len() as u64)
            }
            SplitData::Planted {
                total_records,
                matches,
            } => {
                debug_assert!(matches.iter().all(|r| self.predicate.eval(r)));
                let refs: Vec<&Record> = matches.iter().collect();
                self.emit(&refs, total_records)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::generator::{RecordFactory, SplitGenerator, SplitSpec};
    use incmr_data::lineitem::{col, LineItemFactory};
    use incmr_data::Value;

    fn factory() -> LineItemFactory {
        LineItemFactory::new(col::TAX, Value::Float(0.77))
    }

    #[test]
    fn materialized_scan_projects_and_filters() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(500, 9, 2));
        let data = SplitData::Records(g.full_iter().collect());
        let m = ScanMapper::new(f.predicate(), vec![col::ORDERKEY, col::PARTKEY], true);
        let out = m.run(data);
        assert_eq!(out.pairs.len(), 9);
        assert_eq!(out.records_read, 500);
        assert_eq!(out.unmaterialized_outputs, 0);
        assert!(
            out.pairs.iter().all(|(_, r)| r.arity() == 2),
            "projection applied"
        );
    }

    #[test]
    fn unmaterialized_scan_counts_without_pairs() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(500, 9, 2));
        let data = SplitData::Planted {
            total_records: 500,
            matches: g.planted_matches(),
        };
        let m = ScanMapper::new(f.predicate(), vec![col::ORDERKEY], false);
        let out = m.run(data);
        assert!(out.pairs.is_empty());
        assert_eq!(out.unmaterialized_outputs, 9);
        assert!(out.unmaterialized_bytes > 0);
        assert_eq!(out.total_outputs(), 9);
    }

    #[test]
    fn full_and_planted_agree_on_counts() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(800, 13, 5));
        let full = SplitData::Records(g.full_iter().collect());
        let planted = SplitData::Planted {
            total_records: 800,
            matches: g.planted_matches(),
        };
        let m = ScanMapper::new(f.predicate(), vec![], false);
        let a = m.run(full);
        let b = m.run(planted);
        assert_eq!(a.total_outputs(), b.total_outputs());
        assert_eq!(a.unmaterialized_bytes, b.unmaterialized_bytes);
    }

    #[test]
    fn batch_scan_matches_row_scan_in_both_modes() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(800, 13, 5));
        for projection in [vec![], vec![col::ORDERKEY, col::PARTKEY]] {
            for materialize in [false, true] {
                let m = ScanMapper::new(f.predicate(), projection.clone(), materialize);
                let rows = m.run(SplitData::Records(g.full_iter().collect()));
                let batch = m.run(SplitData::Batch(Arc::new(g.full_batch())));
                assert_eq!(batch.pairs, rows.pairs);
                assert_eq!(batch.records_read, rows.records_read);
                assert_eq!(batch.total_outputs(), rows.total_outputs());
                assert_eq!(batch.unmaterialized_bytes, rows.unmaterialized_bytes);

                let rows = m.run(SplitData::Planted {
                    total_records: 800,
                    matches: g.planted_matches(),
                });
                let pbatch = m.run(SplitData::PlantedBatch {
                    total_records: 800,
                    matches: Arc::new(g.planted_batch()),
                });
                assert_eq!(pbatch.pairs, rows.pairs);
                assert_eq!(pbatch.total_outputs(), rows.total_outputs());
                assert_eq!(pbatch.unmaterialized_bytes, rows.unmaterialized_bytes);
            }
        }
    }

    #[test]
    fn empty_projection_keeps_whole_record() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(100, 5, 1));
        let data = SplitData::Records(g.full_iter().collect());
        let m = ScanMapper::new(f.predicate(), vec![], true);
        let out = m.run(data);
        assert!(out
            .pairs
            .iter()
            .all(|(_, r)| r.arity() == f.schema().arity()));
    }
}
