//! The Input Provider abstraction (paper Section III-A).
//!
//! "An Input Provider contains the logic for making dynamic decisions
//! regarding the intake of input by the job. The Input Provider is provided
//! by the job in addition to the map and reduce logic."
//!
//! The provider is initialised with the complete set of input partitions
//! and is then consulted — with job-progress and cluster-load statistics —
//! whenever the framework's evaluation loop decides it is worth asking. It
//! answers with one of the three responses of the paper's Figure 3.

use incmr_dfs::BlockId;
use incmr_mapreduce::{ClusterStatus, EvalContext};

/// The three possible responses of an Input Provider (paper Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputResponse {
    /// The job does not need to process additional input; in-flight maps
    /// finish and the job proceeds to the shuffle/reduce phase.
    EndOfInput,
    /// These additional partitions should be processed next.
    InputAvailable(Vec<BlockId>),
    /// "Wait and see": postpone the decision to the next evaluation.
    NoInputAvailable,
}

/// Job-supplied logic controlling intake of input.
///
/// The grab limit (on `initial_input`, and in the [`EvalContext`] passed to
/// `next_input`) is the policy's bound on how many partitions may be
/// claimed in a single step ("Both the initial input and any subsequent
/// increment (if required) is limited by the GrabLimit, as defined for the
/// policy in use", Section IV).
pub trait InputProvider {
    /// The partitions to process first, at job submission.
    fn initial_input(&mut self, cluster: &ClusterStatus, grab_limit: u64) -> Vec<BlockId>;

    /// Reassess progress and decide on further input. The context bundles
    /// job progress, cluster status, and the policy's grab limit.
    fn next_input(&mut self, ctx: EvalContext<'_>) -> InputResponse;

    /// Partitions not yet handed to the job (introspection / testing).
    fn remaining(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_compare() {
        assert_eq!(InputResponse::EndOfInput, InputResponse::EndOfInput);
        assert_ne!(
            InputResponse::NoInputAvailable,
            InputResponse::InputAvailable(vec![BlockId(1)])
        );
    }
}
