//! The Input Provider for error-bounded approximate aggregation
//! (DESIGN.md §15): the EARL-style generalisation of predicate-based
//! sampling where the job grows until a CLT error bound holds instead of
//! until `k` matches are found.
//!
//! Behaviour, step by step:
//!
//! * splits are drawn **uniformly at random** from the unprocessed pool
//!   (the same randomisation argument as sampling — the estimator treats
//!   splits as cluster-sampling units, so the draw must be unbiased);
//! * the runtime folds per-group accumulators from completed map output
//!   and hands the provider its latest probe through
//!   [`EvalContext::agg`]; when the probe reports the bound met, respond
//!   **end of input** — the early stop;
//! * the provider grabs splits in **rounds**: while any scheduled split
//!   is still running or pending it responds *no input available*, so
//!   every draw is sized by statistics over a completed round;
//! * each round draws the probe's suggested split count (the CLT growth
//!   projection), capped by the policy's grab limit, never fewer than
//!   one split;
//! * a configurable round budget bounds the growth loop: once spent, the
//!   provider ends input and the runtime classifies the finish as
//!   `BudgetExhausted`.

use incmr_dfs::BlockId;
use incmr_mapreduce::{ClusterStatus, EvalContext, DEFAULT_AGG_ROUNDS};
use incmr_simkit::rng::DetRng;
use rand::Rng;

use crate::input_provider::{InputProvider, InputResponse};

/// Splits the initial grab always reaches for (matching the estimator's
/// minimum probe size: fewer completed splits than this can never resolve
/// a variance estimate).
pub const INITIAL_AGG_SPLITS: u64 = 4;

/// Input Provider implementing the error-bounded growth loop.
pub struct EstimatingInputProvider {
    pool: Vec<BlockId>,
    rng: DetRng,
    granted: u64,
    rounds_budget: u64,
    rounds_used: u64,
}

impl EstimatingInputProvider {
    /// Create a provider over the job's complete candidate input. `seed`
    /// drives the random split selection; `rounds_budget` bounds how many
    /// growth rounds `next_input` may spend (≥ 1; see
    /// [`DEFAULT_AGG_ROUNDS`]).
    pub fn new(all_splits: Vec<BlockId>, rounds_budget: u64, seed: u64) -> Self {
        assert!(rounds_budget >= 1, "round budget must be positive");
        EstimatingInputProvider {
            pool: all_splits,
            rng: DetRng::seed_from(seed),
            granted: 0,
            rounds_budget,
            rounds_used: 0,
        }
    }

    /// A provider with the default round budget.
    pub fn with_default_budget(all_splits: Vec<BlockId>, seed: u64) -> Self {
        Self::new(all_splits, DEFAULT_AGG_ROUNDS, seed)
    }

    /// Total splits handed out so far (initial grab plus every round).
    pub fn splits_granted(&self) -> u64 {
        self.granted
    }

    /// Growth rounds spent so far (the initial grab is round zero and
    /// does not count against the budget).
    pub fn rounds_used(&self) -> u64 {
        self.rounds_used
    }

    /// Draw up to `n` splits uniformly at random from the unprocessed pool.
    fn draw(&mut self, n: u64) -> Vec<BlockId> {
        let take = (n.min(self.pool.len() as u64)) as usize;
        for i in 0..take {
            let j = self.rng.gen_range(i..self.pool.len());
            self.pool.swap(i, j);
        }
        self.granted += take as u64;
        self.pool.drain(..take).collect()
    }
}

impl InputProvider for EstimatingInputProvider {
    fn initial_input(&mut self, _cluster: &ClusterStatus, grab_limit: u64) -> Vec<BlockId> {
        // Seed the estimator: at least the minimum probe size, or the
        // first rounds would be spent below the variance threshold.
        self.draw(grab_limit.max(INITIAL_AGG_SPLITS))
    }

    fn next_input(&mut self, ctx: EvalContext<'_>) -> InputResponse {
        // The runtime's probe is the sole stopping authority. A missing
        // probe means this provider was attached to a job without the
        // `mapred.agg.*` plan — treat it as "no statistics yet".
        if let Some(probe) = ctx.agg {
            if probe.bound_met {
                return InputResponse::EndOfInput;
            }
        }
        if self.pool.is_empty() {
            return InputResponse::EndOfInput;
        }
        // Clean rounds: grow only over completed statistics, so each
        // draw's size is a pure function of a finished round.
        let outstanding = ctx.progress.splits_running + ctx.progress.splits_pending;
        if outstanding > 0 {
            return InputResponse::NoInputAvailable;
        }
        let Some(probe) = ctx.agg else {
            return InputResponse::NoInputAvailable;
        };
        if probe.completed == 0 {
            // Nothing completed and nothing outstanding: the initial grab
            // was lost (fault plane); re-seed.
            let drawn = self.draw(ctx.grab_limit.max(INITIAL_AGG_SPLITS));
            return InputResponse::InputAvailable(drawn);
        }
        if self.rounds_used >= self.rounds_budget {
            // Budget spent: settle for the estimate at hand.
            return InputResponse::EndOfInput;
        }
        self.rounds_used += 1;
        let want = probe.suggested_splits.min(ctx.grab_limit).max(1);
        let drawn = self.draw(want);
        if drawn.is_empty() {
            InputResponse::NoInputAvailable
        } else {
            InputResponse::InputAvailable(drawn)
        }
    }

    fn remaining(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_mapreduce::{AggProbe, JobId, JobProgress};
    use incmr_simkit::SimTime;

    fn blocks(n: u32) -> Vec<BlockId> {
        (0..n).map(BlockId).collect()
    }

    fn status() -> ClusterStatus {
        ClusterStatus {
            total_map_slots: 40,
            occupied_map_slots: 0,
            running_jobs: 1,
            queued_map_tasks: 0,
        }
    }

    fn progress(added: u32, completed: u32) -> JobProgress {
        JobProgress {
            job: JobId(0),
            splits_added: added,
            splits_completed: completed,
            splits_running: added - completed,
            splits_pending: 0,
            records_processed: 1_000 * completed as u64,
            map_output_records: completed as u64,
        }
    }

    fn probe(completed: u32, bound_met: bool, suggested: u64) -> AggProbe {
        AggProbe {
            job: JobId(0),
            completed,
            total: 100,
            groups: 3,
            bound_met,
            worst_rel: if bound_met { 0.01 } else { 0.2 },
            suggested_splits: suggested,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn initial_grab_reaches_minimum_probe_size() {
        let mut p = EstimatingInputProvider::new(blocks(100), 8, 1);
        assert_eq!(p.initial_input(&status(), 0).len(), 4);
        let mut q = EstimatingInputProvider::new(blocks(100), 8, 1);
        assert_eq!(q.initial_input(&status(), 10).len(), 10);
    }

    #[test]
    fn bound_met_ends_input_immediately() {
        let mut p = EstimatingInputProvider::new(blocks(100), 8, 1);
        p.initial_input(&status(), 4);
        let pr = probe(4, true, 0);
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 4), &status())
                .with_grab_limit(8)
                .with_agg(Some(&pr)),
        );
        assert_eq!(r, InputResponse::EndOfInput);
        assert_eq!(p.remaining(), 96, "no splits drawn past the bound");
    }

    #[test]
    fn waits_for_a_clean_round() {
        let mut p = EstimatingInputProvider::new(blocks(100), 8, 1);
        p.initial_input(&status(), 4);
        let pr = probe(2, false, 10);
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 2), &status())
                .with_grab_limit(8)
                .with_agg(Some(&pr)),
        );
        assert_eq!(r, InputResponse::NoInputAvailable);
    }

    #[test]
    fn grows_by_suggested_splits_capped_by_grab_limit() {
        let mut p = EstimatingInputProvider::new(blocks(100), 8, 1);
        p.initial_input(&status(), 4);
        let pr = probe(4, false, 20);
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 4), &status())
                .with_grab_limit(6)
                .with_agg(Some(&pr)),
        );
        let InputResponse::InputAvailable(got) = r else {
            panic!("expected growth");
        };
        assert_eq!(got.len(), 6, "20 suggested, 6 allowed");
        assert_eq!(p.rounds_used(), 1);
    }

    #[test]
    fn budget_exhaustion_ends_input() {
        let mut p = EstimatingInputProvider::new(blocks(100), 2, 1);
        p.initial_input(&status(), 4);
        for round in 1..=2u32 {
            let pr = probe(4 * round, false, 4);
            let r = p.next_input(
                EvalContext::unlimited(&progress(4 * round, 4 * round), &status())
                    .with_grab_limit(8)
                    .with_agg(Some(&pr)),
            );
            assert!(matches!(r, InputResponse::InputAvailable(_)));
        }
        let pr = probe(12, false, 4);
        let r = p.next_input(
            EvalContext::unlimited(&progress(12, 12), &status())
                .with_grab_limit(8)
                .with_agg(Some(&pr)),
        );
        assert_eq!(r, InputResponse::EndOfInput, "budget of 2 rounds spent");
    }

    #[test]
    fn exhausted_pool_ends_input() {
        let mut p = EstimatingInputProvider::new(blocks(4), 8, 1);
        p.initial_input(&status(), 10);
        assert_eq!(p.remaining(), 0);
        let pr = probe(4, false, 10);
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 4), &status())
                .with_grab_limit(8)
                .with_agg(Some(&pr)),
        );
        assert_eq!(r, InputResponse::EndOfInput);
    }

    #[test]
    fn missing_probe_waits() {
        let mut p = EstimatingInputProvider::new(blocks(100), 8, 1);
        p.initial_input(&status(), 4);
        let r = p.next_input(EvalContext::unlimited(&progress(4, 4), &status()).with_grab_limit(8));
        assert_eq!(r, InputResponse::NoInputAvailable);
    }

    #[test]
    fn lost_initial_grab_reseeds() {
        let mut p = EstimatingInputProvider::new(blocks(100), 8, 1);
        p.initial_input(&status(), 4);
        let pr = probe(0, false, 0);
        let r = p.next_input(
            EvalContext::unlimited(&progress(0, 0), &status())
                .with_grab_limit(0)
                .with_agg(Some(&pr)),
        );
        let InputResponse::InputAvailable(got) = r else {
            panic!("expected a re-seed");
        };
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn draws_never_repeat_and_are_seed_deterministic() {
        let run = |seed| {
            let mut p = EstimatingInputProvider::new(blocks(50), 16, seed);
            let mut seen = Vec::new();
            seen.extend(p.initial_input(&status(), 5));
            let mut completed = 5u32;
            loop {
                let pr = probe(completed, false, 7);
                match p.next_input(
                    EvalContext::unlimited(&progress(completed, completed), &status())
                        .with_grab_limit(7)
                        .with_agg(Some(&pr)),
                ) {
                    InputResponse::InputAvailable(bs) => {
                        completed += bs.len() as u32;
                        seen.extend(bs);
                    }
                    _ => break,
                }
            }
            seen
        };
        let a = run(9);
        let mut uniq = std::collections::HashSet::new();
        for b in &a {
            assert!(uniq.insert(*b), "split handed out twice");
        }
        assert_eq!(a, run(9), "same seed, same draws");
        assert_ne!(a, run(10), "different seed, different order");
    }

    #[test]
    #[should_panic(expected = "round budget must be positive")]
    fn zero_budget_panics() {
        let _ = EstimatingInputProvider::new(blocks(1), 0, 1);
    }
}
