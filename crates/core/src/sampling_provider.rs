//! The Input Provider for predicate-based sampling (paper Section IV).
//!
//! Behaviour, step by step:
//!
//! * splits are handed out **uniformly at random** from the unprocessed
//!   pool ("The initial input and each subsequent increment (if required)
//!   is chosen randomly with a uniform distribution from the set of
//!   un-processed input partitions. This is done to introduce randomness in
//!   the produced sample");
//! * at each evaluation, if the produced map outputs already reach the
//!   required sample size `k`, respond **end of input**;
//! * otherwise estimate selectivity and records-per-split from completed
//!   maps, account for the **expected output of scheduled-but-unfinished
//!   maps**, and request exactly the estimated number of additional splits
//!   — capped by the policy's grab limit;
//! * if nothing can be estimated yet (no completed maps), **wait**;
//! * if data was processed but no matches found, the estimate is unusable —
//!   explore by requesting up to the grab limit, but never fewer than one
//!   split (a zero grab would otherwise livelock a matchless job; DESIGN.md
//!   deviation note).

use incmr_dfs::BlockId;
use incmr_mapreduce::{ClusterStatus, EvalContext};
use incmr_simkit::rng::DetRng;
use rand::Rng;

use crate::estimator::{ProgressEstimate, SelectivityEstimator};
use crate::input_provider::{InputProvider, InputResponse};

/// Input Provider implementing the paper's sampling logic.
pub struct SamplingInputProvider {
    k: u64,
    pool: Vec<BlockId>,
    estimator: SelectivityEstimator,
    rng: DetRng,
    granted: u64,
}

impl SamplingInputProvider {
    /// Create a provider over the job's complete input, targeting `k`
    /// sample records. `seed` drives the random split selection.
    pub fn new(all_splits: Vec<BlockId>, k: u64, seed: u64) -> Self {
        assert!(k > 0, "sample size must be positive");
        SamplingInputProvider {
            k,
            pool: all_splits,
            estimator: SelectivityEstimator::new(),
            rng: DetRng::seed_from(seed),
            granted: 0,
        }
    }

    /// The target sample size.
    pub fn sample_size(&self) -> u64 {
        self.k
    }

    /// Total splits this provider has handed out (initial grab plus every
    /// increment). The provider never repeats a split, so this equals the
    /// job's audited `granted` total when no guard rail rewrote a
    /// directive — the provider-side half of the audit cross-check.
    pub fn splits_granted(&self) -> u64 {
        self.granted
    }

    /// Add newly arrived splits to the unprocessed pool (the evolve path:
    /// blocks appended to the namespace while the query stands).
    pub fn extend_pool(&mut self, blocks: impl IntoIterator<Item = BlockId>) {
        self.pool.extend(blocks);
    }

    /// Draw up to `n` splits uniformly at random from the unprocessed pool.
    fn draw(&mut self, n: u64) -> Vec<BlockId> {
        let take = (n.min(self.pool.len() as u64)) as usize;
        for i in 0..take {
            let j = self.rng.gen_range(i..self.pool.len());
            self.pool.swap(i, j);
        }
        self.granted += take as u64;
        self.pool.drain(..take).collect()
    }
}

impl InputProvider for SamplingInputProvider {
    fn initial_input(&mut self, _cluster: &ClusterStatus, grab_limit: u64) -> Vec<BlockId> {
        // At least one split, or the job would never produce statistics
        // (DESIGN.md: "initial grab" deviation).
        self.draw(grab_limit.max(1))
    }

    fn next_input(&mut self, ctx: EvalContext<'_>) -> InputResponse {
        let (progress, grab_limit) = (ctx.progress, ctx.grab_limit);
        // Enough output already produced: stop consuming input.
        if progress.map_output_records >= self.k {
            return InputResponse::EndOfInput;
        }
        // Input exhausted: nothing more to add — the sample will simply be
        // smaller than requested.
        if self.pool.is_empty() {
            return InputResponse::EndOfInput;
        }
        self.estimator.update(progress);
        let outstanding = progress.splits_running + progress.splits_pending;
        match self.estimator.project(self.k, outstanding) {
            ProgressEstimate::NoData => InputResponse::NoInputAvailable,
            ProgressEstimate::NoMatchesYet => {
                // Selectivity looks like zero so far; explore as widely as
                // the policy allows — but always at least one split, or a
                // zero grab limit (policy C on a saturated cluster) would
                // leave a matchless job spinning forever with nothing
                // outstanding (DESIGN.md deviation note).
                let drawn = self.draw(grab_limit.max(1));
                if drawn.is_empty() {
                    InputResponse::NoInputAvailable
                } else {
                    InputResponse::InputAvailable(drawn)
                }
            }
            ProgressEstimate::Estimate {
                additional_splits_needed,
                ..
            } => {
                if additional_splits_needed == 0 {
                    // Outstanding maps are expected to cover k: wait and see.
                    return InputResponse::NoInputAvailable;
                }
                let want = additional_splits_needed.min(grab_limit);
                let drawn = self.draw(want);
                if drawn.is_empty() {
                    InputResponse::NoInputAvailable
                } else {
                    InputResponse::InputAvailable(drawn)
                }
            }
        }
    }

    fn remaining(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_mapreduce::{JobId, JobProgress};

    fn blocks(n: u32) -> Vec<BlockId> {
        (0..n).map(BlockId).collect()
    }

    fn status() -> ClusterStatus {
        ClusterStatus {
            total_map_slots: 40,
            occupied_map_slots: 0,
            running_jobs: 1,
            queued_map_tasks: 0,
        }
    }

    fn progress(added: u32, completed: u32, records: u64, matches: u64) -> JobProgress {
        JobProgress {
            job: JobId(0),
            splits_added: added,
            splits_completed: completed,
            splits_running: added - completed,
            splits_pending: 0,
            records_processed: records,
            map_output_records: matches,
        }
    }

    #[test]
    fn initial_input_respects_grab_limit_and_randomizes() {
        let mut p = SamplingInputProvider::new(blocks(100), 10, 1);
        let first = p.initial_input(&status(), 10);
        assert_eq!(first.len(), 10);
        assert_eq!(p.remaining(), 90);
        assert_eq!(p.splits_granted(), 10);
        // Different seed → different draw.
        let mut q = SamplingInputProvider::new(blocks(100), 10, 2);
        let other = q.initial_input(&status(), 10);
        assert_ne!(first, other);
    }

    #[test]
    fn initial_input_grabs_at_least_one_even_at_zero_limit() {
        let mut p = SamplingInputProvider::new(blocks(10), 10, 1);
        assert_eq!(p.initial_input(&status(), 0).len(), 1);
    }

    #[test]
    fn k_reached_means_end_of_input() {
        let mut p = SamplingInputProvider::new(blocks(10), 100, 1);
        p.initial_input(&status(), 4);
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 2, 2_000, 150), &status()).with_grab_limit(8),
        );
        assert_eq!(r, InputResponse::EndOfInput);
    }

    #[test]
    fn exhausted_pool_means_end_of_input() {
        let mut p = SamplingInputProvider::new(blocks(4), 1_000, 1);
        p.initial_input(&status(), 10); // takes everything
        assert_eq!(p.remaining(), 0);
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 4, 4_000, 2), &status()).with_grab_limit(8),
        );
        assert_eq!(r, InputResponse::EndOfInput);
    }

    #[test]
    fn waits_when_no_map_has_completed() {
        let mut p = SamplingInputProvider::new(blocks(40), 100, 1);
        p.initial_input(&status(), 4);
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 0, 0, 0), &status()).with_grab_limit(8),
        );
        assert_eq!(r, InputResponse::NoInputAvailable);
    }

    #[test]
    fn waits_when_outstanding_maps_should_cover_k() {
        let mut p = SamplingInputProvider::new(blocks(40), 100, 1);
        p.initial_input(&status(), 10);
        // 5 of 10 done: 5000 records, 60 matches; 5 outstanding expected to
        // add ~60 more → projected 120 ≥ k=100 → wait.
        let r = p.next_input(
            EvalContext::unlimited(&progress(10, 5, 5_000, 60), &status()).with_grab_limit(8),
        );
        assert_eq!(r, InputResponse::NoInputAvailable);
        assert_eq!(p.remaining(), 30, "no splits consumed while waiting");
    }

    #[test]
    fn requests_estimated_number_of_splits() {
        let mut p = SamplingInputProvider::new(blocks(40), 100, 1);
        p.initial_input(&status(), 4);
        // All 4 done: 4000 records, 20 matches → sel 0.5%, 1000 rec/split.
        // Need 80 more matches → 16000 records → 16 splits; grab cap 20.
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 4, 4_000, 20), &status()).with_grab_limit(20),
        );
        let InputResponse::InputAvailable(got) = r else {
            panic!("expected input")
        };
        assert_eq!(got.len(), 16);
    }

    #[test]
    fn grab_limit_caps_the_request() {
        let mut p = SamplingInputProvider::new(blocks(40), 100, 1);
        p.initial_input(&status(), 4);
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 4, 4_000, 20), &status()).with_grab_limit(5),
        );
        let InputResponse::InputAvailable(got) = r else {
            panic!()
        };
        assert_eq!(got.len(), 5, "16 wanted, 5 allowed");
    }

    #[test]
    fn zero_selectivity_explores_at_grab_limit() {
        let mut p = SamplingInputProvider::new(blocks(40), 100, 1);
        p.initial_input(&status(), 4);
        let r = p.next_input(
            EvalContext::unlimited(&progress(4, 4, 4_000, 0), &status()).with_grab_limit(12),
        );
        let InputResponse::InputAvailable(got) = r else {
            panic!()
        };
        assert_eq!(got.len(), 12);
    }

    #[test]
    fn drawn_splits_never_repeat() {
        let mut p = SamplingInputProvider::new(blocks(50), 1_000_000, 3);
        let mut seen = std::collections::HashSet::new();
        for b in p.initial_input(&status(), 20) {
            assert!(seen.insert(b));
        }
        while let InputResponse::InputAvailable(bs) = p.next_input(
            EvalContext::unlimited(&progress(20, 20, 20_000, 1), &status()).with_grab_limit(7),
        ) {
            for b in bs {
                assert!(seen.insert(b), "split handed out twice");
            }
        }
        assert_eq!(seen.len(), 50);
        assert_eq!(p.splits_granted(), 50, "every draw is accounted for");
    }

    #[test]
    #[should_panic(expected = "sample size must be positive")]
    fn zero_k_panics() {
        let _ = SamplingInputProvider::new(blocks(1), 0, 1);
    }
}
