//! Assembly of complete jobs: the dynamic predicate-based-sampling job
//! (what the modified Hive compiler of Section IV emits) and the static
//! select-project scan job (the Non-Sampling class of Section V-E).

use std::sync::Arc;

use incmr_data::lineitem::col;
use incmr_data::Dataset;
use incmr_mapreduce::{
    keys, DatasetInputFormat, JobConf, JobResult, JobSpec, ScanMode, StaticDriver,
    MATERIALIZE_CAP_KEY,
};

use crate::dynamic_driver::DynamicDriver;
use crate::policy::Policy;
use crate::sampling::{SampleCombiner, SampleMode, SamplingMapper, SamplingReducer};
use crate::sampling_provider::SamplingInputProvider;
use crate::scan::ScanMapper;

/// The projection used by the paper's query template:
/// `SELECT ORDERKEY, PARTKEY, SUPPKEY FROM LINEITEM WHERE … LIMIT 10000`.
pub fn paper_projection() -> Vec<usize> {
    vec![col::ORDERKEY, col::PARTKEY, col::SUPPKEY]
}

/// How a *completed* sampling job ended relative to its target `k`.
///
/// A sampling job can legitimately finish with fewer than `k` records —
/// the candidate input ran out of matches, or a graceful deadline
/// (`keys::JOB_DEADLINE_MS` with `keys::ALLOW_PARTIAL`) cut input intake
/// short. Both are *successful completions*: the sample it did gather is
/// valid, just smaller than requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOutcome {
    /// The sample reached the requested size.
    Full {
        /// The requested sample size `k`.
        requested: u64,
    },
    /// The job completed with fewer than `k` matches.
    Partial {
        /// Records actually gathered (`< requested`).
        found: u64,
        /// The requested sample size `k`.
        requested: u64,
    },
}

/// Classify a finished sampling job's result against its configured `k`.
///
/// Returns `None` when the job failed (a failed job has no sample at all —
/// inspect [`JobResult::error`]) or when the conf carries no
/// `keys::SAMPLING_K` (not a sampling job). Call this on the result while
/// its output rows are still materialised (i.e. before
/// `MrRuntime::release_job_result`).
pub fn sample_outcome(conf: &JobConf, result: &JobResult) -> Option<SampleOutcome> {
    if result.failed {
        return None;
    }
    let requested = conf
        .get_u64_or(keys::SAMPLING_K, 0)
        .ok()
        .filter(|&k| k > 0)?;
    let found = result.output.len() as u64;
    Some(if found < requested {
        SampleOutcome::Partial { found, requested }
    } else {
        SampleOutcome::Full { requested }
    })
}

/// Build a dynamic predicate-based-sampling job over `dataset`.
///
/// Returns the job spec (conf + mapper + reducer) and the dynamic driver
/// (Input Provider under `policy`). `seed` drives the provider's random
/// split selection (vary it across runs to average, as the paper does).
pub fn build_sampling_job(
    dataset: &Arc<Dataset>,
    k: u64,
    policy: Policy,
    scan_mode: ScanMode,
    sample_mode: SampleMode,
    seed: u64,
) -> (JobSpec, Box<DynamicDriver>) {
    let predicate = {
        use incmr_data::generator::RecordFactory;
        dataset.factory().predicate()
    };
    build_sampling_job_with(
        dataset,
        predicate,
        Vec::new(),
        k,
        policy,
        scan_mode,
        sample_mode,
        seed,
    )
}

/// Like [`build_sampling_job`], with an explicit predicate and map-side
/// projection — the entry point the HiveQL compiler targets.
#[allow(clippy::too_many_arguments)]
pub fn build_sampling_job_with(
    dataset: &Arc<Dataset>,
    predicate: incmr_data::Predicate,
    projection: Vec<usize>,
    k: u64,
    policy: Policy,
    scan_mode: ScanMode,
    sample_mode: SampleMode,
    seed: u64,
) -> (JobSpec, Box<DynamicDriver>) {
    let conf = JobConf::new()
        .with(
            keys::JOB_NAME,
            format!("sample-{}-{}", dataset.spec().name, policy.name),
        )
        .with(keys::DYNAMIC_JOB, true)
        .with(keys::DYNAMIC_JOB_POLICY, &policy.name)
        .with(keys::DYNAMIC_INPUT_PROVIDER, "SamplingInputProvider")
        .with(keys::SAMPLING_K, k)
        .with(MATERIALIZE_CAP_KEY, k);
    let spec = JobSpec::builder()
        .conf(conf)
        .reduces(1)
        .input(DatasetInputFormat::new(Arc::clone(dataset), scan_mode))
        .mapper(SamplingMapper::with_projection(predicate, k, projection))
        .combiner(SampleCombiner::new(k))
        .reducer(SamplingReducer::new(k, sample_mode))
        .build();
    let blocks: Vec<_> = dataset.splits().iter().map(|p| p.block).collect();
    let total = blocks.len() as u32;
    let provider = SamplingInputProvider::new(blocks, k, seed);
    let driver = Box::new(DynamicDriver::new(Box::new(provider), policy, total));
    (spec, driver)
}

/// Like [`build_sampling_job`] but under an [`crate::AdaptiveDriver`]
/// (the paper's future-work runtime policy adaptation) instead of a fixed
/// policy.
pub fn build_adaptive_sampling_job(
    dataset: &Arc<Dataset>,
    k: u64,
    scan_mode: ScanMode,
    sample_mode: SampleMode,
    seed: u64,
) -> (JobSpec, Box<crate::AdaptiveDriver>) {
    let predicate = {
        use incmr_data::generator::RecordFactory;
        dataset.factory().predicate()
    };
    let conf = JobConf::new()
        .with(
            keys::JOB_NAME,
            format!("sample-{}-adaptive", dataset.spec().name),
        )
        .with(keys::DYNAMIC_JOB, true)
        .with(keys::DYNAMIC_JOB_POLICY, "adaptive")
        .with(keys::DYNAMIC_INPUT_PROVIDER, "SamplingInputProvider")
        .with(keys::SAMPLING_K, k)
        .with(MATERIALIZE_CAP_KEY, k);
    let spec = JobSpec::builder()
        .conf(conf)
        .reduces(1)
        .input(DatasetInputFormat::new(Arc::clone(dataset), scan_mode))
        .mapper(SamplingMapper::new(predicate, k))
        .combiner(SampleCombiner::new(k))
        .reducer(SamplingReducer::new(k, sample_mode))
        .build();
    let blocks: Vec<_> = dataset.splits().iter().map(|p| p.block).collect();
    let total = blocks.len() as u32;
    let provider = SamplingInputProvider::new(blocks, k, seed);
    let driver = Box::new(crate::AdaptiveDriver::paper_ladder(
        Box::new(provider),
        total,
    ));
    (spec, driver)
}

/// Build the static select-project scan job (selectivity 0.05% via the
/// dataset's planted predicate). Its outputs are unmaterialised — only
/// counts and shuffle bytes matter for throughput experiments.
pub fn build_scan_job(dataset: &Arc<Dataset>, scan_mode: ScanMode) -> (JobSpec, Box<StaticDriver>) {
    let predicate = {
        use incmr_data::generator::RecordFactory;
        dataset.factory().predicate()
    };
    let spec = JobSpec::builder()
        .set(keys::JOB_NAME, format!("scan-{}", dataset.spec().name))
        .reduces(1)
        .input(DatasetInputFormat::new(Arc::clone(dataset), scan_mode))
        .mapper(ScanMapper::new(predicate, paper_projection(), false))
        .build();
    let blocks: Vec<_> = dataset.splits().iter().map(|p| p.block).collect();
    (spec, Box::new(StaticDriver::new(blocks)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::{DatasetSpec, SkewLevel};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_mapreduce::{ClusterConfig, CostModel, FifoScheduler, MrRuntime};
    use incmr_simkit::rng::DetRng;

    fn world(partitions: u32, records: u64, skew: SkewLevel) -> (MrRuntime, Arc<Dataset>) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(21);
        let spec = DatasetSpec::small("li", partitions, records, skew, 21);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            spec,
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        (rt, ds)
    }

    #[test]
    fn end_to_end_dynamic_sampling_produces_k_records() {
        // 40 partitions × 10_000 records, 0.05% → 200 matches total; ask
        // for 60: the dynamic job must stop early with exactly 60.
        let (mut rt, ds) = world(40, 10_000, SkewLevel::Zero);
        assert_eq!(ds.total_matching(), 200);
        let (spec, driver) = build_sampling_job(
            &ds,
            60,
            Policy::la(),
            ScanMode::Planted,
            SampleMode::FirstK,
            77,
        );
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert_eq!(r.output.len(), 60, "sample is exactly k");
        assert!(
            r.splits_processed < 40,
            "dynamic job stopped early: {} splits",
            r.splits_processed
        );
        // Every sampled record satisfies the predicate.
        use incmr_data::generator::RecordFactory;
        let p = ds.factory().predicate();
        assert!(r.output.iter().all(|(_, rec)| p.eval(rec)));
    }

    #[test]
    fn sample_smaller_than_k_when_matches_run_out() {
        let (mut rt, ds) = world(10, 2_000, SkewLevel::Zero);
        assert_eq!(ds.total_matching(), 10);
        let (spec, driver) = build_sampling_job(
            &ds,
            500,
            Policy::ha(),
            ScanMode::Planted,
            SampleMode::FirstK,
            3,
        );
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert_eq!(r.output.len(), 10, "all matches found, sample < k");
        assert_eq!(r.splits_processed, 10, "whole input needed");
    }

    #[test]
    fn hadoop_policy_processes_everything_dynamic_does_not() {
        let run = |policy: Policy| {
            let (mut rt, ds) = world(40, 10_000, SkewLevel::Zero);
            let (spec, driver) =
                build_sampling_job(&ds, 60, policy, ScanMode::Planted, SampleMode::FirstK, 7);
            let id = rt.submit(spec, driver);
            rt.run_until_idle();
            rt.job_result(id).splits_processed
        };
        assert_eq!(run(Policy::hadoop()), 40);
        assert!(run(Policy::la()) < 40);
    }

    #[test]
    fn random_k_mode_yields_k_predicate_matching_records() {
        let (mut rt, ds) = world(40, 10_000, SkewLevel::Moderate);
        let (spec, driver) = build_sampling_job(
            &ds,
            50,
            Policy::ma(),
            ScanMode::Planted,
            SampleMode::RandomK { seed: 5 },
            9,
        );
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert_eq!(r.output.len(), 50);
    }

    #[test]
    fn scan_job_reads_everything_and_counts_matches() {
        let (mut rt, ds) = world(20, 5_000, SkewLevel::Zero);
        let (spec, driver) = build_scan_job(&ds, ScanMode::Planted);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert_eq!(r.splits_processed, 20);
        assert_eq!(r.records_processed, 100_000);
        assert_eq!(r.map_output_records, ds.total_matching());
        assert!(r.output.is_empty(), "scan outputs are unmaterialised");
    }

    #[test]
    fn adaptive_job_samples_correctly_and_adapts_to_idle_cluster() {
        let (mut rt, ds) = world(40, 10_000, SkewLevel::Zero);
        let (spec, driver) =
            build_adaptive_sampling_job(&ds, 60, ScanMode::Planted, SampleMode::FirstK, 4);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert_eq!(r.output.len(), 60);
        // On an otherwise-idle cluster the adaptive ladder behaves like HA:
        // one aggressive grab, so roughly the HA partition count.
        let (mut rt2, ds2) = world(40, 10_000, SkewLevel::Zero);
        let (spec2, driver2) = build_sampling_job(
            &ds2,
            60,
            Policy::ha(),
            ScanMode::Planted,
            SampleMode::FirstK,
            4,
        );
        let id2 = rt2.submit(spec2, driver2);
        rt2.run_until_idle();
        let ha_parts = rt2.job_result(id2).splits_processed;
        assert!(
            r.splits_processed <= ha_parts + 8,
            "adaptive ({}) should not grossly exceed HA ({ha_parts}) when idle",
            r.splits_processed
        );
    }

    #[test]
    fn conf_keys_mirror_the_paper() {
        let (_, ds) = world(4, 100, SkewLevel::Zero);
        let (spec, driver) = build_sampling_job(
            &ds,
            10,
            Policy::la(),
            ScanMode::Planted,
            SampleMode::FirstK,
            1,
        );
        assert!(spec.conf.get_bool(keys::DYNAMIC_JOB));
        assert_eq!(spec.conf.get(keys::DYNAMIC_JOB_POLICY), Some("LA"));
        assert_eq!(
            spec.conf.get(keys::DYNAMIC_INPUT_PROVIDER),
            Some("SamplingInputProvider")
        );
        assert_eq!(spec.conf.get_u64_or(keys::SAMPLING_K, 0).unwrap(), 10);
        assert_eq!(driver.policy().name, "LA");
    }
}
