//! The JobClient-side evaluation loop for dynamic jobs (paper Section IV).
//!
//! "As the job progresses, the JobClient, at regular intervals of time
//! (EvaluationInterval), retrieves all information regarding the status of
//! the job and the load on the cluster from the JobTracker. If the job has
//! made sufficient progress, as required by the policy, the JobClient
//! invokes the Input Provider…"
//!
//! [`DynamicDriver`] adapts an [`InputProvider`] plus a [`Policy`] to the
//! framework's [`GrowthDriver`] hook:
//!
//! * the **evaluation interval** comes from the policy;
//! * the **work threshold** gates provider invocations — if fewer new
//!   partitions completed since the last invocation than the threshold
//!   requires, the driver waits without consulting the provider;
//! * the **grab limit** is evaluated against the live cluster status
//!   (`TS`, `AS`) and passed to the provider to bound each increment.

use incmr_dfs::BlockId;
use incmr_mapreduce::{ClusterStatus, EvalContext, GrowthDirective, GrowthDriver};
use incmr_simkit::SimDuration;

use crate::input_provider::{InputProvider, InputResponse};
use crate::policy::Policy;

/// Adapter: `InputProvider` + `Policy` → `GrowthDriver`.
pub struct DynamicDriver {
    provider: Box<dyn InputProvider>,
    policy: Policy,
    total_input_splits: u32,
    completed_at_last_invocation: u32,
    invocations: u64,
    gated: u64,
}

impl DynamicDriver {
    /// Wrap a provider under a policy. `total_input_splits` is the size of
    /// the job's complete candidate input (the base for the work-threshold
    /// percentage).
    pub fn new(provider: Box<dyn InputProvider>, policy: Policy, total_input_splits: u32) -> Self {
        DynamicDriver {
            provider,
            policy,
            total_input_splits,
            completed_at_last_invocation: 0,
            invocations: 0,
            gated: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// How many times the Input Provider has actually been consulted
    /// (excluding threshold-gated skips).
    pub fn provider_invocations(&self) -> u64 {
        self.invocations
    }

    /// Evaluations the work-threshold gate answered with `Wait` without
    /// consulting the provider. Together with `provider_invocations` this
    /// explains every `Wait` entry in the runtime's decision audit log:
    /// audited `Wait`s = gated skips + provider `NoInputAvailable`s.
    pub fn gated_evaluations(&self) -> u64 {
        self.gated
    }
}

impl GrowthDriver for DynamicDriver {
    fn initial_input(&mut self, cluster: &ClusterStatus) -> Vec<BlockId> {
        let grab = self.grab_limit(cluster);
        self.provider.initial_input(cluster, grab)
    }

    /// The policy's grab-limit formula over the live cluster status. Also
    /// the bound the runtime clamps `AddInput` directives against, so a
    /// provider that ignores its `EvalContext::grab_limit` cannot
    /// over-grab.
    fn grab_limit(&self, cluster: &ClusterStatus) -> u64 {
        self.policy
            .grab_limit
            .evaluate(cluster.total_map_slots, cluster.available_map_slots())
    }

    fn evaluate(&mut self, ctx: EvalContext<'_>) -> GrowthDirective {
        // Work-threshold gate: "Between successive evaluations, if a job
        // has not done enough new work in terms of finishing new map tasks,
        // it may not be worthwhile for the input provider to re-evaluate."
        let progress = ctx.progress;
        let threshold = self.policy.work_threshold_splits(self.total_input_splits);
        let new_work = progress
            .splits_completed
            .saturating_sub(self.completed_at_last_invocation);
        // The gate applies between invocations, not before the first one —
        // and never blocks once the target could already be met (checking
        // that is the provider's job, which is cheap; the paper's gate
        // exists to avoid pointless re-estimation). Newly arrived blocks
        // bypass it too: the runtime delivers them exactly once, so a
        // gated skip here would drop them on the floor.
        if self.invocations > 0
            && new_work < threshold
            && progress.splits_running + progress.splits_pending > 0
            && ctx.arrived.is_empty()
        {
            self.gated += 1;
            return GrowthDirective::Wait;
        }
        self.invocations += 1;
        self.completed_at_last_invocation = progress.splits_completed;
        // Respect an already-tightened context (min), not just the policy.
        let grab = self.grab_limit(ctx.cluster).min(ctx.grab_limit);
        match self.provider.next_input(ctx.with_grab_limit(grab)) {
            InputResponse::EndOfInput => GrowthDirective::EndOfInput,
            InputResponse::InputAvailable(blocks) => GrowthDirective::AddInput(blocks),
            InputResponse::NoInputAvailable => GrowthDirective::Wait,
        }
    }

    fn evaluation_interval(&self) -> SimDuration {
        self.policy.evaluation_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling_provider::SamplingInputProvider;
    use incmr_mapreduce::{JobId, JobProgress};

    fn blocks(n: u32) -> Vec<BlockId> {
        (0..n).map(BlockId).collect()
    }

    fn status(total: u32, available: u32) -> ClusterStatus {
        ClusterStatus {
            total_map_slots: total,
            occupied_map_slots: total - available,
            running_jobs: 1,
            queued_map_tasks: 0,
        }
    }

    fn progress(added: u32, completed: u32, records: u64, matches: u64) -> JobProgress {
        JobProgress {
            job: JobId(0),
            splits_added: added,
            splits_completed: completed,
            splits_running: added - completed,
            splits_pending: 0,
            records_processed: records,
            map_output_records: matches,
        }
    }

    fn driver(policy: Policy, n_splits: u32, k: u64) -> DynamicDriver {
        DynamicDriver::new(
            Box::new(SamplingInputProvider::new(blocks(n_splits), k, 1)),
            policy,
            n_splits,
        )
    }

    #[test]
    fn initial_grab_follows_policy_and_cluster() {
        // C on an idle 40-slot cluster: 0.1*40 = 4 splits.
        let mut d = driver(Policy::conservative(), 40, 100);
        assert_eq!(d.initial_input(&status(40, 40)).len(), 4);
        // Hadoop: everything.
        let mut d = driver(Policy::hadoop(), 40, 100);
        assert_eq!(d.initial_input(&status(40, 40)).len(), 40);
        // HA under full load: max(0.5*40, 0) = 20.
        let mut d = driver(Policy::ha(), 40, 100);
        assert_eq!(d.initial_input(&status(40, 0)).len(), 20);
    }

    #[test]
    fn work_threshold_gates_provider_invocations() {
        // LA: 10% of 40 splits = 4 completions required between invocations.
        let mut d = driver(Policy::la(), 40, 1_000_000);
        let _ = d.initial_input(&status(40, 40)); // 8 splits (0.2*40)
                                                  // First evaluation always consults the provider.
        let _ = d.evaluate(EvalContext::unlimited(
            &progress(8, 1, 1_000, 1),
            &status(40, 32),
        ));
        assert_eq!(d.provider_invocations(), 1);
        // Only 2 new completions since: gated.
        let dir = d.evaluate(EvalContext::unlimited(
            &progress(8, 3, 3_000, 3),
            &status(40, 32),
        ));
        assert_eq!(dir, GrowthDirective::Wait);
        assert_eq!(d.provider_invocations(), 1);
        assert_eq!(d.gated_evaluations(), 1, "the skip is accounted for");
        // 5 new completions: invoked again.
        let _ = d.evaluate(EvalContext::unlimited(
            &progress(8, 6, 6_000, 6),
            &status(40, 34),
        ));
        assert_eq!(d.provider_invocations(), 2);
        assert_eq!(d.gated_evaluations(), 1);
    }

    #[test]
    fn gate_lifts_when_nothing_is_outstanding() {
        // Even below the threshold, a job with no running/pending maps must
        // consult the provider or it would stall forever.
        let mut d = driver(Policy::conservative(), 40, 1_000_000);
        let _ = d.initial_input(&status(40, 40));
        let _ = d.evaluate(EvalContext::unlimited(
            &progress(4, 1, 1_000, 1),
            &status(40, 40),
        ));
        let before = d.provider_invocations();
        let dir = d.evaluate(EvalContext::unlimited(
            &progress(4, 4, 4_000, 4),
            &status(40, 40),
        ));
        assert_eq!(d.provider_invocations(), before + 1);
        assert!(matches!(dir, GrowthDirective::AddInput(_)));
    }

    #[test]
    fn k_reached_propagates_end_of_input() {
        let mut d = driver(Policy::ha(), 40, 10);
        let _ = d.initial_input(&status(40, 40));
        let dir = d.evaluate(EvalContext::unlimited(
            &progress(40, 10, 10_000, 50),
            &status(40, 30),
        ));
        assert_eq!(dir, GrowthDirective::EndOfInput);
    }

    #[test]
    fn evaluation_interval_comes_from_policy() {
        let d = driver(Policy::ma(), 40, 10);
        assert_eq!(d.evaluation_interval(), Policy::ma().evaluation_interval);
    }

    #[test]
    fn hadoop_policy_ends_input_immediately_after_grabbing_all() {
        let mut d = driver(Policy::hadoop(), 40, 10);
        assert_eq!(d.initial_input(&status(40, 40)).len(), 40);
        let dir = d.evaluate(EvalContext::unlimited(
            &progress(40, 0, 0, 0),
            &status(40, 0),
        ));
        assert_eq!(dir, GrowthDirective::EndOfInput, "pool exhausted");
    }
}
