//! Growth policies (paper Section III-B, Table I).
//!
//! A policy is three parameters:
//!
//! * **EvaluationInterval** — how often the Input Provider is consulted
//!   (4 s in all the paper's experiments);
//! * **WorkThreshold** — the minimum *new* work (completed partitions, as a
//!   percent of the job's total input partitions) between consecutive
//!   provider invocations;
//! * **GrabLimit** — an upper bound on partitions added in one step,
//!   expressed over `TS` (total map slots) and `AS` (available map slots).
//!
//! Table I, as implemented (the paper's `(AS < 0)` guard is a typo for
//! `AS > 0` — the prose reads "one-half of the available map slots (AS) or
//! one-fifth of the total map slots (TS)"):
//!
//! | Policy | Work Threshold | Grab Limit |
//! |--------|----------------|------------|
//! | Hadoop | –              | ∞ |
//! | HA     | 0%             | `max(0.5*TS, AS)` |
//! | MA     | 5%             | `AS > 0 ? 0.5*AS : 0.2*TS` |
//! | LA     | 10%            | `AS > 0 ? 0.2*AS : 0.1*TS` |
//! | C      | 15%            | `0.1*AS` |

use std::fmt;

use incmr_simkit::SimDuration;

/// A grab-limit expression over cluster capacity (`TS`) and availability
/// (`AS`). Evaluated with `ceil`, so a positive expression never rounds
/// down to a zero grab.
#[derive(Debug, Clone, PartialEq)]
pub enum GrabLimit {
    /// No bound — the Hadoop policy.
    Infinity,
    /// A constant number of partitions.
    Const(f64),
    /// `frac * TS`.
    FracTotal(f64),
    /// `frac * AS`.
    FracAvailable(f64),
    /// `max(a, b)`.
    Max(Box<GrabLimit>, Box<GrabLimit>),
    /// `min(a, b)`.
    Min(Box<GrabLimit>, Box<GrabLimit>),
    /// `AS > 0 ? then : else` — the conditional form of MA and LA.
    IfAvailable(Box<GrabLimit>, Box<GrabLimit>),
}

impl GrabLimit {
    /// Evaluate to a concrete partition bound given `TS` and `AS`.
    pub fn evaluate(&self, total_slots: u32, available_slots: u32) -> u64 {
        let v = self.eval_f(total_slots as f64, available_slots as f64);
        if v.is_infinite() {
            u64::MAX
        } else {
            v.max(0.0).ceil() as u64
        }
    }

    fn eval_f(&self, ts: f64, avail: f64) -> f64 {
        match self {
            GrabLimit::Infinity => f64::INFINITY,
            GrabLimit::Const(c) => *c,
            GrabLimit::FracTotal(f) => f * ts,
            GrabLimit::FracAvailable(f) => f * avail,
            GrabLimit::Max(a, b) => a.eval_f(ts, avail).max(b.eval_f(ts, avail)),
            GrabLimit::Min(a, b) => a.eval_f(ts, avail).min(b.eval_f(ts, avail)),
            GrabLimit::IfAvailable(t, e) => {
                if avail > 0.0 {
                    t.eval_f(ts, avail)
                } else {
                    e.eval_f(ts, avail)
                }
            }
        }
    }
}

impl fmt::Display for GrabLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrabLimit::Infinity => write!(f, "Infinity"),
            GrabLimit::Const(c) => write!(f, "{c}"),
            GrabLimit::FracTotal(x) if *x == 1.0 => write!(f, "TS"),
            GrabLimit::FracTotal(x) => write!(f, "{x}*TS"),
            GrabLimit::FracAvailable(x) if *x == 1.0 => write!(f, "AS"),
            GrabLimit::FracAvailable(x) => write!(f, "{x}*AS"),
            GrabLimit::Max(a, b) => write!(f, "max({a}, {b})"),
            GrabLimit::Min(a, b) => write!(f, "min({a}, {b})"),
            GrabLimit::IfAvailable(t, e) => write!(f, "(AS > 0) ? {t} : {e}"),
        }
    }
}

/// A named growth policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Name (chosen via the `dynamic.job.policy` conf key).
    pub name: String,
    /// Time between Input Provider evaluations.
    pub evaluation_interval: SimDuration,
    /// Minimum new completed partitions between provider invocations, as a
    /// percent of the job's total input partitions.
    pub work_threshold_pct: f64,
    /// Bound on partitions added per step.
    pub grab_limit: GrabLimit,
}

/// The evaluation interval the paper fixes for all non-Hadoop policies.
pub const PAPER_EVALUATION_INTERVAL: SimDuration = SimDuration::from_secs(4);

impl Policy {
    /// Hadoop's default behaviour modelled as a policy: unbounded grab, so
    /// all input is added in a single step.
    pub fn hadoop() -> Policy {
        Policy {
            name: "Hadoop".into(),
            evaluation_interval: PAPER_EVALUATION_INTERVAL,
            work_threshold_pct: 0.0,
            grab_limit: GrabLimit::Infinity,
        }
    }

    /// Highly Aggressive: WT 0%, grab `max(0.5*TS, AS)`.
    pub fn ha() -> Policy {
        Policy {
            name: "HA".into(),
            evaluation_interval: PAPER_EVALUATION_INTERVAL,
            work_threshold_pct: 0.0,
            grab_limit: GrabLimit::Max(
                Box::new(GrabLimit::FracTotal(0.5)),
                Box::new(GrabLimit::FracAvailable(1.0)),
            ),
        }
    }

    /// Mid Aggressive: WT 5%, grab `AS > 0 ? 0.5*AS : 0.2*TS`.
    pub fn ma() -> Policy {
        Policy {
            name: "MA".into(),
            evaluation_interval: PAPER_EVALUATION_INTERVAL,
            work_threshold_pct: 5.0,
            grab_limit: GrabLimit::IfAvailable(
                Box::new(GrabLimit::FracAvailable(0.5)),
                Box::new(GrabLimit::FracTotal(0.2)),
            ),
        }
    }

    /// Less Aggressive: WT 10%, grab `AS > 0 ? 0.2*AS : 0.1*TS`.
    pub fn la() -> Policy {
        Policy {
            name: "LA".into(),
            evaluation_interval: PAPER_EVALUATION_INTERVAL,
            work_threshold_pct: 10.0,
            grab_limit: GrabLimit::IfAvailable(
                Box::new(GrabLimit::FracAvailable(0.2)),
                Box::new(GrabLimit::FracTotal(0.1)),
            ),
        }
    }

    /// Conservative: WT 15%, grab `0.1*AS`.
    pub fn conservative() -> Policy {
        Policy {
            name: "C".into(),
            evaluation_interval: PAPER_EVALUATION_INTERVAL,
            work_threshold_pct: 15.0,
            grab_limit: GrabLimit::FracAvailable(0.1),
        }
    }

    /// Look up a built-in policy by its Table I name.
    pub fn builtin(name: &str) -> Option<Policy> {
        match name {
            "Hadoop" => Some(Policy::hadoop()),
            "HA" => Some(Policy::ha()),
            "MA" => Some(Policy::ma()),
            "LA" => Some(Policy::la()),
            "C" => Some(Policy::conservative()),
            _ => None,
        }
    }

    /// All of Table I, in the paper's order.
    pub fn table1() -> Vec<Policy> {
        vec![
            Policy::hadoop(),
            Policy::ha(),
            Policy::ma(),
            Policy::la(),
            Policy::conservative(),
        ]
    }

    /// The work threshold expressed in partitions for a job of
    /// `total_partitions` total input partitions (ceil, so any nonzero
    /// percentage demands at least one completed partition).
    pub fn work_threshold_splits(&self, total_partitions: u32) -> u32 {
        (self.work_threshold_pct / 100.0 * total_partitions as f64).ceil() as u32
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: WT={}% grab={} eval={}",
            self.name, self.work_threshold_pct, self.grab_limit, self.evaluation_interval
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_names_and_order() {
        let names: Vec<String> = Policy::table1().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["Hadoop", "HA", "MA", "LA", "C"]);
    }

    #[test]
    fn builtin_lookup() {
        assert_eq!(Policy::builtin("LA"), Some(Policy::la()));
        assert!(Policy::builtin("nope").is_none());
    }

    #[test]
    fn hadoop_grab_is_unbounded() {
        assert_eq!(Policy::hadoop().grab_limit.evaluate(40, 0), u64::MAX);
    }

    #[test]
    fn ha_on_idle_cluster_grabs_all_slots() {
        // max(0.5*40, 40) = 40.
        assert_eq!(Policy::ha().grab_limit.evaluate(40, 40), 40);
        // Under load AS=0: max(20, 0) = 20 — HA keeps demanding.
        assert_eq!(Policy::ha().grab_limit.evaluate(40, 0), 20);
    }

    #[test]
    fn ma_la_use_available_else_total() {
        assert_eq!(Policy::ma().grab_limit.evaluate(40, 10), 5); // 0.5*10
        assert_eq!(Policy::ma().grab_limit.evaluate(40, 0), 8); // 0.2*40
        assert_eq!(Policy::la().grab_limit.evaluate(40, 10), 2); // 0.2*10
        assert_eq!(Policy::la().grab_limit.evaluate(40, 0), 4); // 0.1*40
    }

    #[test]
    fn conservative_scales_with_available_only() {
        assert_eq!(Policy::conservative().grab_limit.evaluate(40, 40), 4);
        assert_eq!(Policy::conservative().grab_limit.evaluate(40, 0), 0);
        // ceil: a sliver of availability still grants one partition.
        assert_eq!(Policy::conservative().grab_limit.evaluate(40, 1), 1);
    }

    #[test]
    fn aggressiveness_ordering_on_idle_cluster() {
        // On an idle 40-slot cluster, grab limits order Hadoop ≥ HA ≥ MA ≥ LA ≥ C.
        let grabs: Vec<u64> = Policy::table1()
            .iter()
            .map(|p| p.grab_limit.evaluate(40, 40))
            .collect();
        assert!(
            grabs.windows(2).all(|w| w[0] >= w[1]),
            "grabs not monotone: {grabs:?}"
        );
    }

    #[test]
    fn work_threshold_in_splits() {
        assert_eq!(Policy::ma().work_threshold_splits(40), 2); // 5% of 40
        assert_eq!(Policy::la().work_threshold_splits(40), 4);
        assert_eq!(Policy::conservative().work_threshold_splits(40), 6);
        assert_eq!(Policy::ha().work_threshold_splits(40), 0);
        // ceil: 5% of 10 partitions is 0.5 → 1.
        assert_eq!(Policy::ma().work_threshold_splits(10), 1);
    }

    #[test]
    fn grab_limit_expression_combinators() {
        let e = GrabLimit::Min(
            Box::new(GrabLimit::Const(10.0)),
            Box::new(GrabLimit::FracTotal(0.5)),
        );
        assert_eq!(e.evaluate(40, 0), 10);
        assert_eq!(e.evaluate(10, 0), 5);
        assert_eq!(GrabLimit::Const(2.5).evaluate(0, 0), 3, "ceil applies");
    }

    #[test]
    fn display_round_trips_names() {
        assert_eq!(
            Policy::ma().grab_limit.to_string(),
            "(AS > 0) ? 0.5*AS : 0.2*TS"
        );
        assert_eq!(Policy::hadoop().grab_limit.to_string(), "Infinity");
        assert!(Policy::la().to_string().contains("WT=10%"));
    }
}
