//! Runtime policy adaptation — the paper's future work, implemented.
//!
//! "As part of future work, it could be interesting to implement a more
//! flexible model wherein a job could decide and change the policy at
//! runtime, based on the discovered characteristics of the input data
//! together with the existing load on the cluster." (Section VII)
//!
//! [`AdaptiveDriver`] holds a *ladder* of policies ordered from most to
//! least aggressive and re-selects a rung at every evaluation from the
//! observed cluster utilisation:
//!
//! * a mostly-idle cluster gets the aggressive rung (the paper's
//!   single-user result: aggressive wins when resources would otherwise
//!   idle);
//! * a busy cluster gets the conservative rung (the paper's multi-user
//!   result: conservative policies maximise shared throughput);
//! * in between, the middle rung.
//!
//! The work-threshold gate and grab limit always come from the *current*
//! rung, so a job that started aggressively on an idle cluster backs off
//! as co-tenants arrive — and vice versa.

use incmr_dfs::BlockId;
use incmr_mapreduce::{ClusterStatus, EvalContext, GrowthDirective, GrowthDriver};
use incmr_simkit::SimDuration;

use crate::input_provider::{InputProvider, InputResponse};
use crate::policy::Policy;

/// Utilisation thresholds separating the ladder's rungs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveThresholds {
    /// Below this busy-slot fraction the aggressive rung is used.
    pub idle_below: f64,
    /// At or above this busy-slot fraction the conservative rung is used.
    pub busy_above: f64,
}

impl Default for AdaptiveThresholds {
    fn default() -> Self {
        AdaptiveThresholds {
            idle_below: 1.0 / 3.0,
            busy_above: 2.0 / 3.0,
        }
    }
}

/// A growth driver that re-selects its policy each evaluation.
pub struct AdaptiveDriver {
    provider: Box<dyn InputProvider>,
    ladder: Vec<Policy>,
    thresholds: AdaptiveThresholds,
    total_input_splits: u32,
    completed_at_last_invocation: u32,
    invocations: u64,
    gated: u64,
    current_rung: usize,
    switches: u64,
}

impl AdaptiveDriver {
    /// Adapt over a ladder of policies ordered most- to least-aggressive.
    ///
    /// # Panics
    /// Panics on an empty ladder.
    pub fn new(
        provider: Box<dyn InputProvider>,
        ladder: Vec<Policy>,
        thresholds: AdaptiveThresholds,
        total_input_splits: u32,
    ) -> Self {
        assert!(
            !ladder.is_empty(),
            "adaptive ladder needs at least one policy"
        );
        AdaptiveDriver {
            provider,
            ladder,
            thresholds,
            total_input_splits,
            completed_at_last_invocation: 0,
            invocations: 0,
            gated: 0,
            current_rung: 0,
            switches: 0,
        }
    }

    /// The paper-flavoured default ladder: HA on an idle cluster, MA in the
    /// mid range, LA under load.
    pub fn paper_ladder(provider: Box<dyn InputProvider>, total_input_splits: u32) -> Self {
        AdaptiveDriver::new(
            provider,
            vec![Policy::ha(), Policy::ma(), Policy::la()],
            AdaptiveThresholds::default(),
            total_input_splits,
        )
    }

    /// The policy currently in force.
    pub fn current_policy(&self) -> &Policy {
        &self.ladder[self.current_rung]
    }

    /// How many times the rung changed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Evaluations the current rung's work-threshold gate answered with
    /// `Wait` without consulting the provider (see
    /// [`DynamicDriver::gated_evaluations`](crate::DynamicDriver::gated_evaluations)).
    pub fn gated_evaluations(&self) -> u64 {
        self.gated
    }

    fn select_rung(&self, cluster: &ClusterStatus) -> usize {
        let busy = if cluster.total_map_slots == 0 {
            1.0
        } else {
            cluster.occupied_map_slots as f64 / cluster.total_map_slots as f64
        };
        let last = self.ladder.len() - 1;
        if busy < self.thresholds.idle_below {
            0
        } else if busy >= self.thresholds.busy_above {
            last
        } else {
            last / 2
        }
    }

    fn adapt(&mut self, cluster: &ClusterStatus) {
        let rung = self.select_rung(cluster);
        if rung != self.current_rung {
            self.current_rung = rung;
            self.switches += 1;
        }
    }
}

impl GrowthDriver for AdaptiveDriver {
    fn initial_input(&mut self, cluster: &ClusterStatus) -> Vec<BlockId> {
        self.adapt(cluster);
        let grab = self.grab_limit(cluster);
        self.provider.initial_input(cluster, grab)
    }

    /// The *current rung's* grab-limit formula — no re-adaptation here, so
    /// when the runtime clamps a directive it uses exactly the limit the
    /// provider was handed during the evaluation that produced it.
    fn grab_limit(&self, cluster: &ClusterStatus) -> u64 {
        self.current_policy()
            .grab_limit
            .evaluate(cluster.total_map_slots, cluster.available_map_slots())
    }

    fn evaluate(&mut self, ctx: EvalContext<'_>) -> GrowthDirective {
        let (progress, cluster) = (ctx.progress, ctx.cluster);
        self.adapt(cluster);
        let policy = self.current_policy();
        let threshold = policy.work_threshold_splits(self.total_input_splits);
        let new_work = progress
            .splits_completed
            .saturating_sub(self.completed_at_last_invocation);
        if self.invocations > 0
            && new_work < threshold
            && progress.splits_running + progress.splits_pending > 0
        {
            self.gated += 1;
            return GrowthDirective::Wait;
        }
        self.invocations += 1;
        self.completed_at_last_invocation = progress.splits_completed;
        let grab = self.grab_limit(cluster).min(ctx.grab_limit);
        match self.provider.next_input(ctx.with_grab_limit(grab)) {
            InputResponse::EndOfInput => GrowthDirective::EndOfInput,
            InputResponse::InputAvailable(blocks) => GrowthDirective::AddInput(blocks),
            InputResponse::NoInputAvailable => GrowthDirective::Wait,
        }
    }

    fn evaluation_interval(&self) -> SimDuration {
        self.current_policy().evaluation_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling_provider::SamplingInputProvider;

    fn blocks(n: u32) -> Vec<BlockId> {
        (0..n).map(BlockId).collect()
    }

    fn status(total: u32, occupied: u32) -> ClusterStatus {
        ClusterStatus {
            total_map_slots: total,
            occupied_map_slots: occupied,
            running_jobs: 1,
            queued_map_tasks: 0,
        }
    }

    fn driver(n: u32, k: u64) -> AdaptiveDriver {
        AdaptiveDriver::paper_ladder(Box::new(SamplingInputProvider::new(blocks(n), k, 1)), n)
    }

    #[test]
    fn rung_selection_tracks_utilisation() {
        let d = driver(40, 100);
        assert_eq!(d.select_rung(&status(40, 0)), 0, "idle → aggressive");
        assert_eq!(d.select_rung(&status(40, 20)), 1, "half busy → middle");
        assert_eq!(
            d.select_rung(&status(40, 40)),
            2,
            "saturated → conservative"
        );
        assert_eq!(
            d.select_rung(&status(0, 0)),
            2,
            "degenerate cluster counts as busy"
        );
    }

    #[test]
    fn initial_grab_matches_selected_rung() {
        // Idle: HA grab = max(0.5*40, 40) = 40 → all 30 splits.
        let mut d = driver(30, 1_000_000);
        assert_eq!(d.initial_input(&status(40, 0)).len(), 30);
        assert_eq!(d.current_policy().name, "HA");
        // Saturated: LA grab = 0.1*TS = 4 (AS = 0).
        let mut d = driver(30, 1_000_000);
        assert_eq!(d.initial_input(&status(40, 40)).len(), 4);
        assert_eq!(d.current_policy().name, "LA");
    }

    #[test]
    fn rung_switches_are_counted() {
        let mut d = driver(40, 1_000_000);
        let _ = d.initial_input(&status(40, 0)); // HA
        assert_eq!(d.switches(), 0, "starting rung is not a switch");
        let p = incmr_mapreduce::JobProgress {
            job: incmr_mapreduce::JobId(0),
            splits_added: 40,
            splits_completed: 10,
            splits_running: 0,
            splits_pending: 0,
            records_processed: 10_000,
            map_output_records: 10,
        };
        let _ = d.evaluate(EvalContext::unlimited(&p, &status(40, 40))); // now saturated → LA
        assert_eq!(d.current_policy().name, "LA");
        assert_eq!(d.switches(), 1);
        let _ = d.evaluate(EvalContext::unlimited(&p, &status(40, 0))); // idle again → HA
        assert_eq!(d.switches(), 2);
    }

    #[test]
    fn interval_follows_the_current_rung() {
        let mut ladder = vec![Policy::ha(), Policy::la()];
        ladder[0].evaluation_interval = SimDuration::from_secs(2);
        ladder[1].evaluation_interval = SimDuration::from_secs(8);
        let mut d = AdaptiveDriver::new(
            Box::new(SamplingInputProvider::new(blocks(10), 5, 1)),
            ladder,
            AdaptiveThresholds::default(),
            10,
        );
        let _ = d.initial_input(&status(40, 0));
        assert_eq!(d.evaluation_interval(), SimDuration::from_secs(2));
        let p = incmr_mapreduce::JobProgress {
            job: incmr_mapreduce::JobId(0),
            splits_added: 10,
            splits_completed: 1,
            splits_running: 0,
            splits_pending: 0,
            records_processed: 100,
            map_output_records: 0,
        };
        let _ = d.evaluate(EvalContext::unlimited(&p, &status(40, 40)));
        assert_eq!(d.evaluation_interval(), SimDuration::from_secs(8));
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_ladder_panics() {
        let _ = AdaptiveDriver::new(
            Box::new(SamplingInputProvider::new(blocks(1), 1, 1)),
            vec![],
            AdaptiveThresholds::default(),
            1,
        );
    }
}
