//! The policy registry file — our equivalent of the paper's `policy.xml`
//! ("The available policies are defined in a policy.xml file", Section IV).
//!
//! The format is a small XML subset, exactly expressive enough for Table I
//! plus user-defined policies:
//!
//! ```xml
//! <policies>
//!   <policy name="LA">
//!     <workThreshold>10</workThreshold>
//!     <grabLimit>(AS > 0) ? 0.2*AS : 0.1*TS</grabLimit>
//!     <evaluationInterval>4000</evaluationInterval>
//!   </policy>
//! </policies>
//! ```
//!
//! `grabLimit` accepts: `Infinity`, numbers, `TS`, `AS`, `f*TS`, `f*AS`,
//! `max(a, b)`, `min(a, b)`, and the conditional `(AS > 0) ? a : b`.
//! `evaluationInterval` is in milliseconds and defaults to the paper's 4 s.

use std::fmt;

use incmr_simkit::SimDuration;

use crate::policy::{GrabLimit, Policy, PAPER_EVALUATION_INTERVAL};

/// Errors from parsing a policy file or a grab-limit expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyFileError {
    /// What went wrong, human-readable.
    pub message: String,
}

impl PolicyFileError {
    fn new(message: impl Into<String>) -> Self {
        PolicyFileError {
            message: message.into(),
        }
    }
}

impl fmt::Display for PolicyFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy file error: {}", self.message)
    }
}

impl std::error::Error for PolicyFileError {}

/// Parse a complete policy file into its policies, in document order.
pub fn parse_policy_file(text: &str) -> Result<Vec<Policy>, PolicyFileError> {
    let mut parser = XmlishParser::new(text);
    parser.expect_open("policies")?;
    let mut policies = Vec::new();
    while parser.peek_open("policy") {
        policies.push(parse_policy(&mut parser)?);
    }
    parser.expect_close("policies")?;
    if policies.is_empty() {
        return Err(PolicyFileError::new("no <policy> entries"));
    }
    Ok(policies)
}

fn parse_policy(parser: &mut XmlishParser) -> Result<Policy, PolicyFileError> {
    let attrs = parser.expect_open("policy")?;
    let name = attrs
        .iter()
        .find(|(k, _)| k == "name")
        .map(|(_, v)| v.clone())
        .ok_or_else(|| PolicyFileError::new("<policy> requires a name attribute"))?;
    let mut work_threshold = 0.0;
    let mut grab: Option<GrabLimit> = None;
    let mut interval = PAPER_EVALUATION_INTERVAL;
    loop {
        if parser.peek_close("policy") {
            break;
        }
        let (tag, body) = parser.leaf_element()?;
        match tag.as_str() {
            "workThreshold" => {
                work_threshold = body
                    .trim()
                    .parse()
                    .map_err(|_| PolicyFileError::new(format!("bad workThreshold: {body:?}")))?;
            }
            "grabLimit" => grab = Some(parse_grab_limit(&body)?),
            "evaluationInterval" => {
                let ms: u64 = body.trim().parse().map_err(|_| {
                    PolicyFileError::new(format!("bad evaluationInterval: {body:?}"))
                })?;
                interval = SimDuration::from_millis(ms);
            }
            other => return Err(PolicyFileError::new(format!("unknown element <{other}>"))),
        }
    }
    parser.expect_close("policy")?;
    let grab_limit =
        grab.ok_or_else(|| PolicyFileError::new(format!("policy {name} lacks <grabLimit>")))?;
    Ok(Policy {
        name,
        evaluation_interval: interval,
        work_threshold_pct: work_threshold,
        grab_limit,
    })
}

/// Parse a grab-limit expression (see module docs for the grammar).
pub fn parse_grab_limit(text: &str) -> Result<GrabLimit, PolicyFileError> {
    let mut p = ExprParser {
        rest: text.trim(),
        full: text,
    };
    let e = p.expr()?;
    p.skip_ws();
    if !p.rest.is_empty() {
        return Err(PolicyFileError::new(format!(
            "trailing input {:?} in grab limit {:?}",
            p.rest, p.full
        )));
    }
    Ok(e)
}

struct ExprParser<'a> {
    rest: &'a str,
    full: &'a str,
}

impl<'a> ExprParser<'a> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if let Some(r) = self.rest.strip_prefix(token) {
            self.rest = r;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), PolicyFileError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(PolicyFileError::new(format!(
                "expected {token:?} at {:?} in {:?}",
                self.rest, self.full
            )))
        }
    }

    fn expr(&mut self) -> Result<GrabLimit, PolicyFileError> {
        self.skip_ws();
        // Conditional: "(AS > 0) ? a : b"
        if self.eat("(") {
            self.expect("AS")?;
            self.expect(">")?;
            self.expect("0")?;
            self.expect(")")?;
            self.expect("?")?;
            let then = self.expr()?;
            self.expect(":")?;
            let otherwise = self.expr()?;
            return Ok(GrabLimit::IfAvailable(Box::new(then), Box::new(otherwise)));
        }
        if self.eat("Infinity") {
            return Ok(GrabLimit::Infinity);
        }
        if self.eat("max(") {
            let a = self.expr()?;
            self.expect(",")?;
            let b = self.expr()?;
            self.expect(")")?;
            return Ok(GrabLimit::Max(Box::new(a), Box::new(b)));
        }
        if self.eat("min(") {
            let a = self.expr()?;
            self.expect(",")?;
            let b = self.expr()?;
            self.expect(")")?;
            return Ok(GrabLimit::Min(Box::new(a), Box::new(b)));
        }
        if self.eat("TS") {
            return Ok(GrabLimit::FracTotal(1.0));
        }
        if self.eat("AS") {
            return Ok(GrabLimit::FracAvailable(1.0));
        }
        // Number, optionally "* TS" / "* AS".
        let num = self.number()?;
        self.skip_ws();
        if self.eat("*") {
            self.skip_ws();
            if self.eat("TS") {
                return Ok(GrabLimit::FracTotal(num));
            }
            if self.eat("AS") {
                return Ok(GrabLimit::FracAvailable(num));
            }
            return Err(PolicyFileError::new(format!(
                "expected TS or AS after '*' in {:?}",
                self.full
            )));
        }
        Ok(GrabLimit::Const(num))
    }

    fn number(&mut self) -> Result<f64, PolicyFileError> {
        self.skip_ws();
        let end = self
            .rest
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit() && *c != '.')
            .map(|(i, _)| i)
            .unwrap_or(self.rest.len());
        if end == 0 {
            return Err(PolicyFileError::new(format!(
                "expected a number at {:?} in {:?}",
                self.rest, self.full
            )));
        }
        let (num, rest) = self.rest.split_at(end);
        self.rest = rest;
        num.parse()
            .map_err(|_| PolicyFileError::new(format!("bad number {num:?} in {:?}", self.full)))
    }
}

/// Minimal XML-subset reader: open/close tags with optional `name="…"`
/// attributes and text leaves. No escaping, comments, or self-closing tags
/// — policy files don't need them.
struct XmlishParser<'a> {
    rest: &'a str,
}

impl<'a> XmlishParser<'a> {
    fn new(text: &'a str) -> Self {
        XmlishParser { rest: text }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn peek_open(&mut self, tag: &str) -> bool {
        self.skip_ws();
        self.rest.starts_with(&format!("<{tag}")) && !self.rest.starts_with("</")
    }

    fn peek_close(&mut self, tag: &str) -> bool {
        self.skip_ws();
        self.rest.starts_with(&format!("</{tag}>"))
    }

    fn expect_open(&mut self, tag: &str) -> Result<Vec<(String, String)>, PolicyFileError> {
        self.skip_ws();
        let Some(r) = self.rest.strip_prefix(&format!("<{tag}")) else {
            return Err(PolicyFileError::new(format!(
                "expected <{tag}> at {:?}",
                truncated(self.rest)
            )));
        };
        let close = r
            .find('>')
            .ok_or_else(|| PolicyFileError::new(format!("unclosed <{tag}>")))?;
        let attr_text = &r[..close];
        self.rest = &r[close + 1..];
        let mut attrs = Vec::new();
        for part in attr_text.split_whitespace() {
            let Some((k, v)) = part.split_once('=') else {
                return Err(PolicyFileError::new(format!(
                    "malformed attribute {part:?}"
                )));
            };
            let v = v.trim_matches('"');
            attrs.push((k.to_string(), v.to_string()));
        }
        Ok(attrs)
    }

    fn expect_close(&mut self, tag: &str) -> Result<(), PolicyFileError> {
        self.skip_ws();
        let closing = format!("</{tag}>");
        if let Some(r) = self.rest.strip_prefix(closing.as_str()) {
            self.rest = r;
            Ok(())
        } else {
            Err(PolicyFileError::new(format!(
                "expected {closing} at {:?}",
                truncated(self.rest)
            )))
        }
    }

    /// Read `<tag>text</tag>` and return `(tag, text)`.
    fn leaf_element(&mut self) -> Result<(String, String), PolicyFileError> {
        self.skip_ws();
        let Some(r) = self.rest.strip_prefix('<') else {
            return Err(PolicyFileError::new(format!(
                "expected an element at {:?}",
                truncated(self.rest)
            )));
        };
        let close = r
            .find('>')
            .ok_or_else(|| PolicyFileError::new("unclosed element"))?;
        let tag = r[..close].to_string();
        if tag.contains(' ') || tag.starts_with('/') {
            return Err(PolicyFileError::new(format!("unexpected tag <{tag}>")));
        }
        let rest = &r[close + 1..];
        let closing = format!("</{tag}>");
        let end = rest
            .find(closing.as_str())
            .ok_or_else(|| PolicyFileError::new(format!("missing {closing}")))?;
        let body = rest[..end].to_string();
        self.rest = &rest[end + closing.len()..];
        Ok((tag, body))
    }
}

fn truncated(s: &str) -> String {
    s.chars().take(32).collect()
}

/// The built-in Table I policies rendered as a policy file — used as the
/// default registry and as a parser round-trip fixture.
pub fn builtin_policy_file() -> String {
    let mut out = String::from("<policies>\n");
    for p in Policy::table1() {
        out.push_str(&format!(
            "  <policy name=\"{}\">\n    <workThreshold>{}</workThreshold>\n    <grabLimit>{}</grabLimit>\n    <evaluationInterval>{}</evaluationInterval>\n  </policy>\n",
            p.name,
            p.work_threshold_pct,
            p.grab_limit,
            p.evaluation_interval.as_millis(),
        ));
    }
    out.push_str("</policies>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_file_round_trips_table1() {
        let parsed = parse_policy_file(&builtin_policy_file()).unwrap();
        assert_eq!(parsed, Policy::table1());
    }

    #[test]
    fn parses_a_custom_policy() {
        let text = r#"
            <policies>
              <policy name="gentle">
                <workThreshold>7.5</workThreshold>
                <grabLimit>min(4, 0.05*TS)</grabLimit>
                <evaluationInterval>2000</evaluationInterval>
              </policy>
            </policies>
        "#;
        let ps = parse_policy_file(text).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].name, "gentle");
        assert_eq!(ps[0].work_threshold_pct, 7.5);
        assert_eq!(ps[0].evaluation_interval, SimDuration::from_secs(2));
        assert_eq!(ps[0].grab_limit.evaluate(200, 0), 4);
        assert_eq!(ps[0].grab_limit.evaluate(40, 0), 2);
    }

    #[test]
    fn interval_defaults_to_four_seconds() {
        let text = r#"<policies><policy name="x"><grabLimit>AS</grabLimit></policy></policies>"#;
        let ps = parse_policy_file(text).unwrap();
        assert_eq!(ps[0].evaluation_interval, SimDuration::from_secs(4));
        assert_eq!(ps[0].work_threshold_pct, 0.0);
    }

    #[test]
    fn grab_limit_expressions() {
        assert_eq!(parse_grab_limit("Infinity").unwrap(), GrabLimit::Infinity);
        assert_eq!(parse_grab_limit("12").unwrap(), GrabLimit::Const(12.0));
        assert_eq!(
            parse_grab_limit("0.5*TS").unwrap(),
            GrabLimit::FracTotal(0.5)
        );
        assert_eq!(
            parse_grab_limit(" 0.1 * AS ").unwrap(),
            GrabLimit::FracAvailable(0.1)
        );
        assert_eq!(
            parse_grab_limit("max(0.5*TS, AS)").unwrap(),
            Policy::ha().grab_limit
        );
        assert_eq!(
            parse_grab_limit("(AS > 0) ? 0.5*AS : 0.2*TS").unwrap(),
            Policy::ma().grab_limit
        );
    }

    #[test]
    fn expression_errors_are_reported() {
        assert!(parse_grab_limit("").is_err());
        assert!(parse_grab_limit("max(1").is_err());
        assert!(parse_grab_limit("0.5*XS").is_err());
        assert!(parse_grab_limit("AS AS").is_err());
        assert!(
            parse_grab_limit("(TS > 0) ? 1 : 2").is_err(),
            "only AS may be tested"
        );
    }

    #[test]
    fn file_errors_are_reported() {
        assert!(
            parse_policy_file("<policies></policies>").is_err(),
            "empty registry"
        );
        assert!(
            parse_policy_file("<policy name=\"x\"></policy>").is_err(),
            "missing root"
        );
        let no_name = r#"<policies><policy><grabLimit>AS</grabLimit></policy></policies>"#;
        assert!(parse_policy_file(no_name).is_err());
        let no_grab =
            r#"<policies><policy name="x"><workThreshold>1</workThreshold></policy></policies>"#;
        let err = parse_policy_file(no_grab).unwrap_err();
        assert!(err.to_string().contains("grabLimit"), "{err}");
        let unknown = r#"<policies><policy name="x"><grabLimit>AS</grabLimit><nope>1</nope></policy></policies>"#;
        assert!(parse_policy_file(unknown).is_err());
    }

    #[test]
    fn multiple_policies_in_order() {
        let text = r#"
            <policies>
              <policy name="a"><grabLimit>1</grabLimit></policy>
              <policy name="b"><grabLimit>2</grabLimit></policy>
            </policies>
        "#;
        let names: Vec<String> = parse_policy_file(text)
            .unwrap()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
