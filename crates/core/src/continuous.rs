//! Standing-query mode for dynamic sampling jobs (DESIGN.md §13).
//!
//! A [`ContinuousSampling`] provider behaves exactly like the paper's
//! [`SamplingInputProvider`] — random uniform draws, selectivity-driven
//! increments — with one difference at the boundary: when the unprocessed
//! pool drains *before* the sample target `k` is met, it answers
//! `NoInputAvailable` instead of `EndOfInput`. Under
//! `dynamic.job.continuous`, the runtime then **parks** the job (no
//! evaluation tick, no heartbeats once nothing else is active) and
//! re-awakens it from `MrRuntime::evolve` when new blocks land in the
//! namespace; those blocks arrive through [`EvalContext::arrived`] and are
//! folded into the pool here. The query completes — reduce phase, sample
//! delivered — only once `k` matches have been produced.
//!
//! The wakeup protocol end to end:
//!
//! 1. provider drains its pool below `k` → `NoInputAvailable`;
//! 2. runtime sees a continuous job with nothing running, pending, or
//!    arrived → parks it (and lets heartbeat chains expire when every
//!    active job is parked);
//! 3. `MrRuntime::evolve` appends blocks → records `InputArrived`, pushes
//!    the new ids into the job's arrival buffer, schedules an immediate
//!    re-evaluation;
//! 4. the evaluation's context carries the arrivals (exactly once) → this
//!    provider extends its pool and the draw cycle resumes.

use incmr_dfs::BlockId;
use incmr_mapreduce::{ClusterStatus, EvalContext};

use crate::input_provider::{InputProvider, InputResponse};
use crate::sampling_provider::SamplingInputProvider;

/// A [`SamplingInputProvider`] that stands instead of ending input when
/// its pool drains short of `k`. Pair with `dynamic.job.continuous=true`
/// so the runtime parks and wakes the job rather than wedging it.
pub struct ContinuousSampling {
    inner: SamplingInputProvider,
}

impl ContinuousSampling {
    /// A standing sampling query over an initial candidate pool (possibly
    /// empty — the query can start before any data exists), targeting `k`
    /// sample records. `seed` drives the random split selection.
    pub fn new(initial_splits: Vec<BlockId>, k: u64, seed: u64) -> Self {
        ContinuousSampling {
            inner: SamplingInputProvider::new(initial_splits, k, seed),
        }
    }

    /// The target sample size.
    pub fn sample_size(&self) -> u64 {
        self.inner.sample_size()
    }

    /// Splits handed out so far (initial grab plus every increment).
    pub fn splits_granted(&self) -> u64 {
        self.inner.splits_granted()
    }
}

impl InputProvider for ContinuousSampling {
    fn initial_input(&mut self, cluster: &ClusterStatus, grab_limit: u64) -> Vec<BlockId> {
        self.inner.initial_input(cluster, grab_limit)
    }

    fn next_input(&mut self, ctx: EvalContext<'_>) -> InputResponse {
        if !ctx.arrived.is_empty() {
            self.inner.extend_pool(ctx.arrived.iter().copied());
        }
        match self.inner.next_input(ctx) {
            // The pool drained below `k`: stand (park) rather than end the
            // query — `evolve` growth refills the pool. `k` already met
            // still ends input, completing the standing query.
            InputResponse::EndOfInput
                if ctx.progress.map_output_records < self.inner.sample_size() =>
            {
                InputResponse::NoInputAvailable
            }
            response => response,
        }
    }

    fn remaining(&self) -> usize {
        self.inner.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_mapreduce::{JobId, JobProgress};

    fn blocks(range: std::ops::Range<u32>) -> Vec<BlockId> {
        range.map(BlockId).collect()
    }

    fn status() -> ClusterStatus {
        ClusterStatus {
            total_map_slots: 40,
            occupied_map_slots: 0,
            running_jobs: 1,
            queued_map_tasks: 0,
        }
    }

    fn progress(added: u32, completed: u32, records: u64, matches: u64) -> JobProgress {
        JobProgress {
            job: JobId(0),
            splits_added: added,
            splits_completed: completed,
            splits_running: added - completed,
            splits_pending: 0,
            records_processed: records,
            map_output_records: matches,
        }
    }

    #[test]
    fn drained_pool_below_k_stands_instead_of_ending() {
        let mut p = ContinuousSampling::new(blocks(0..4), 100, 1);
        assert_eq!(p.initial_input(&status(), 4).len(), 4);
        assert_eq!(p.remaining(), 0);
        let r = p.next_input(EvalContext::unlimited(
            &progress(4, 4, 4_000, 10),
            &status(),
        ));
        assert_eq!(
            r,
            InputResponse::NoInputAvailable,
            "pool empty, k unmet: stand"
        );
    }

    #[test]
    fn k_met_still_ends_input() {
        let mut p = ContinuousSampling::new(blocks(0..4), 10, 1);
        p.initial_input(&status(), 4);
        let r = p.next_input(EvalContext::unlimited(
            &progress(4, 4, 4_000, 10),
            &status(),
        ));
        assert_eq!(r, InputResponse::EndOfInput, "target met: query completes");
    }

    #[test]
    fn arrived_blocks_refill_the_pool_and_are_drawn() {
        let mut p = ContinuousSampling::new(blocks(0..2), 1_000, 1);
        p.initial_input(&status(), 2);
        assert_eq!(p.remaining(), 0);
        let fresh = blocks(2..6);
        let prog = progress(2, 2, 2_000, 5);
        let st = status();
        let ctx = EvalContext::unlimited(&prog, &st).with_arrived(&fresh);
        let r = p.next_input(ctx);
        let InputResponse::InputAvailable(drawn) = r else {
            panic!("arrivals should be drawable: {r:?}");
        };
        assert!(!drawn.is_empty());
        assert!(drawn.iter().all(|b| b.0 >= 2), "drawn from the arrivals");
        assert_eq!(p.remaining() + drawn.len(), 4, "nothing lost");
    }

    #[test]
    fn empty_initial_pool_is_allowed() {
        let mut p = ContinuousSampling::new(Vec::new(), 10, 1);
        assert!(p.initial_input(&status(), 8).is_empty());
        let r = p.next_input(EvalContext::unlimited(&progress(0, 0, 0, 0), &status()));
        assert_eq!(r, InputResponse::NoInputAvailable);
    }
}
