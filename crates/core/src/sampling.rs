//! The predicate-based-sampling map and reduce logic — Algorithms 1 and 2
//! of the paper.
//!
//! * **Map** (Algorithm 1): scan every record of the split; while fewer
//!   than `k` matches have been found *by this task*, emit each record
//!   satisfying the predicate under a dummy key. Each map task caps at `k`
//!   because "it is possible that none of the other map tasks output any
//!   desirable results".
//! * **Reduce** (Algorithm 2): the single reduce task receives every
//!   emitted value under the dummy key and outputs the first `k` (or all,
//!   if fewer). The footnote's "random k instead, to get more random
//!   results" variant is [`SampleMode::RandomK`], implemented as a
//!   reservoir sample.

use incmr_data::{BatchSelection, Predicate, Record, RecordBatch};
use incmr_mapreduce::{Combiner, Key, KeyedBatch, MapResult, Mapper, Reducer, SplitData};
use incmr_simkit::rng::DetRng;
use rand::Rng;

/// The dummy key all sampling map outputs share, forcing a single reduce
/// group.
pub const DUMMY_KEY: &str = "__k_dummy__";

/// How the reducer trims an over-full candidate list down to `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// Take the first `k` values (paper Algorithm 2).
    FirstK,
    /// Reservoir-sample `k` values with the given seed (paper footnote 1).
    RandomK {
        /// Seed for the reservoir's RNG.
        seed: u64,
    },
}

/// Algorithm 1: the sampling map function.
#[derive(Debug, Clone)]
pub struct SamplingMapper {
    predicate: Predicate,
    k: u64,
    projection: std::sync::Arc<[usize]>,
    dummy: Key,
}

impl SamplingMapper {
    /// A mapper emitting up to `k` records matching `predicate` per split.
    pub fn new(predicate: Predicate, k: u64) -> Self {
        Self::with_projection(predicate, k, Vec::new())
    }

    /// Like [`SamplingMapper::new`], additionally projecting each emitted
    /// record down to the given column indices (map-side projection, as the
    /// paper's `SELECT ORDERKEY, PARTKEY, SUPPKEY` template implies). An
    /// empty projection keeps whole records.
    pub fn with_projection(predicate: Predicate, k: u64, projection: Vec<usize>) -> Self {
        assert!(k > 0, "sample size must be positive");
        SamplingMapper {
            predicate,
            k,
            projection: projection.into(),
            dummy: Key::from(DUMMY_KEY),
        }
    }

    /// The predicate being evaluated.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    fn emit(&self, r: Record) -> (Key, Record) {
        let value = if self.projection.is_empty() {
            r
        } else {
            r.project(&self.projection)
        };
        (Key::clone(&self.dummy), value)
    }

    /// Wrap a capped selection over `batch` into the single keyed batch
    /// this mapper emits — zero row materialisation.
    fn emit_batch(&self, batch: std::sync::Arc<RecordBatch>, mut sel: Vec<u32>) -> MapResult {
        let records_read = batch.len() as u64;
        sel.truncate(self.k as usize);
        MapResult {
            batches: vec![KeyedBatch {
                key: Key::clone(&self.dummy),
                rows: BatchSelection::new(batch, sel, std::sync::Arc::clone(&self.projection)),
            }],
            records_read,
            ..MapResult::default()
        }
    }
}

impl Mapper for SamplingMapper {
    fn run(&self, data: SplitData) -> MapResult {
        match data {
            // Full batch mode: the real Algorithm 1 loop, vectorised —
            // one branch-free predicate pass fills the selection vector,
            // then the per-task cap truncates it. The emitted payload is
            // an `Arc` bump plus the selection indices; no `Record` is
            // built until the reduce boundary.
            SplitData::Batch(batch) => {
                let sel = self.predicate.eval_batch(&batch);
                self.emit_batch(batch, sel)
            }
            // Planted batch mode: every row matches by construction, so
            // the selection is the identity prefix of length min(k, n).
            SplitData::PlantedBatch {
                total_records,
                matches,
            } => {
                debug_assert_eq!(
                    self.predicate.eval_batch(&matches).len(),
                    matches.len(),
                    "planted contract violated"
                );
                let keep = (self.k as usize).min(matches.len());
                let mut out = self.emit_batch(matches, (0..keep as u32).collect());
                out.records_read = total_records;
                out
            }
            // Row reference path: scan everything, evaluate the predicate
            // scalar, emit while found < k. Records are moved, not cloned.
            SplitData::Records(records) => {
                let records_read = records.len() as u64;
                let mut pairs = Vec::new();
                for record in records {
                    if (pairs.len() as u64) < self.k && self.predicate.eval(&record) {
                        pairs.push(self.emit(record));
                    }
                }
                MapResult {
                    pairs,
                    records_read,
                    ..MapResult::default()
                }
            }
            // Planted rows: `matches` are by construction exactly the
            // records the predicate accepts, in scan order; the cap and the
            // counters behave identically. Overflow beyond k is accounted
            // (it would be shuffled in Hadoop) but not materialised.
            SplitData::Planted {
                total_records,
                matches,
            } => {
                debug_assert!(
                    matches.iter().all(|r| self.predicate.eval(r)),
                    "planted contract violated"
                );
                let keep = (self.k as usize).min(matches.len());
                let pairs = matches
                    .into_iter()
                    .take(keep)
                    .map(|r| self.emit(r))
                    .collect();
                MapResult {
                    pairs,
                    records_read: total_records,
                    ..MapResult::default()
                }
            }
        }
    }
}

/// Algorithm 2: the sampling reduce function.
#[derive(Debug, Clone)]
pub struct SamplingReducer {
    k: u64,
    mode: SampleMode,
}

impl SamplingReducer {
    /// A reducer producing a sample of at most `k` values.
    pub fn new(k: u64, mode: SampleMode) -> Self {
        assert!(k > 0, "sample size must be positive");
        SamplingReducer { k, mode }
    }
}

impl Reducer for SamplingReducer {
    fn reduce(&self, key: &Key, values: &[Record], output: &mut Vec<(Key, Record)>) {
        let k = self.k as usize;
        if values.len() <= k {
            output.extend(values.iter().map(|v| (Key::clone(key), v.clone())));
            return;
        }
        match self.mode {
            SampleMode::FirstK => {
                output.extend(values[..k].iter().map(|v| (Key::clone(key), v.clone())));
            }
            SampleMode::RandomK { seed } => {
                // Vitter's Algorithm R over the value list.
                let mut rng = DetRng::seed_from(seed);
                let mut reservoir: Vec<&Record> = values[..k].iter().collect();
                for (i, v) in values.iter().enumerate().skip(k) {
                    let j = rng.gen_range(0..=i);
                    if j < k {
                        reservoir[j] = v;
                    }
                }
                output.extend(reservoir.into_iter().map(|v| (Key::clone(key), v.clone())));
            }
        }
    }
}

/// The sampling job's map-side combiner: a LIMIT push-down. No more than
/// `k` values can ever contribute to the final sample, so anything past
/// the first `k` pairs a map task emits is dead weight in the shuffle.
/// [`SamplingMapper`] already caps its own emission at `k`, so for the
/// standard sampling job this combiner is a behaviour-preserving no-op —
/// it exists to guard uncapped mappers (and to demonstrate the combiner
/// plumbing end to end; see `benches/shuffle.rs`).
#[derive(Debug, Clone)]
pub struct SampleCombiner {
    k: u64,
}

impl SampleCombiner {
    /// Keep at most `k` pairs per map task.
    pub fn new(k: u64) -> Self {
        assert!(k > 0, "sample size must be positive");
        SampleCombiner { k }
    }
}

impl Combiner for SampleCombiner {
    fn combine(&self, mut pairs: Vec<(Key, Record)>) -> Vec<(Key, Record)> {
        pairs.truncate(self.k as usize);
        pairs
    }

    /// LIMIT push-down stays columnar: truncating a selection vector is
    /// the whole combine, so batches never need materialising.
    fn combine_batches(
        &self,
        mut batches: Vec<KeyedBatch>,
    ) -> Result<Vec<KeyedBatch>, Vec<KeyedBatch>> {
        let mut budget = self.k as usize;
        batches.retain_mut(|b| {
            let take = budget.min(b.rows.len());
            b.rows.truncate(take);
            budget -= take;
            take > 0
        });
        Ok(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::{
        generator::{RecordFactory, SplitGenerator, SplitSpec},
        lineitem::{col, LineItemFactory},
        Value,
    };

    fn factory() -> LineItemFactory {
        LineItemFactory::new(col::QUANTITY, Value::Int(200))
    }

    fn full_split(records: u64, matching: u64, seed: u64) -> SplitData {
        let f = factory();
        SplitData::Records(
            SplitGenerator::new(&f, SplitSpec::new(records, matching, seed))
                .full_iter()
                .collect(),
        )
    }

    fn planted_split(records: u64, matching: u64, seed: u64) -> SplitData {
        let f = factory();
        SplitData::Planted {
            total_records: records,
            matches: SplitGenerator::new(&f, SplitSpec::new(records, matching, seed))
                .planted_matches(),
        }
    }

    fn batch_split(records: u64, matching: u64, seed: u64) -> SplitData {
        let f = factory();
        SplitData::Batch(std::sync::Arc::new(
            SplitGenerator::new(&f, SplitSpec::new(records, matching, seed)).full_batch(),
        ))
    }

    fn planted_batch_split(records: u64, matching: u64, seed: u64) -> SplitData {
        let f = factory();
        SplitData::PlantedBatch {
            total_records: records,
            matches: std::sync::Arc::new(
                SplitGenerator::new(&f, SplitSpec::new(records, matching, seed)).planted_batch(),
            ),
        }
    }

    /// Flatten a MapResult (pairs then batch rows) into concrete pairs.
    fn all_pairs(out: &MapResult) -> Vec<(Key, Record)> {
        let mut pairs = out.pairs.clone();
        for b in &out.batches {
            pairs.extend(b.rows.iter_records().map(|r| (Key::clone(&b.key), r)));
        }
        pairs
    }

    #[test]
    fn full_mode_emits_matches_under_dummy_key() {
        let m = SamplingMapper::new(factory().predicate(), 100);
        let out = m.run(full_split(1_000, 17, 3));
        assert_eq!(out.pairs.len(), 17);
        assert_eq!(out.records_read, 1_000, "Algorithm 1 scans the whole split");
        assert!(out.pairs.iter().all(|(k, _)| &**k == DUMMY_KEY));
        assert!(out.pairs.iter().all(|(_, r)| m.predicate().eval(r)));
    }

    #[test]
    fn map_output_caps_at_k_per_task() {
        let m = SamplingMapper::new(factory().predicate(), 5);
        let out = m.run(full_split(1_000, 17, 3));
        assert_eq!(out.pairs.len(), 5);
        assert_eq!(out.records_read, 1_000);
    }

    #[test]
    fn projection_is_applied_map_side() {
        let m = SamplingMapper::with_projection(
            factory().predicate(),
            100,
            vec![col::ORDERKEY, col::SUPPKEY],
        );
        for data in [full_split(1_000, 9, 4), planted_split(1_000, 9, 4)] {
            let out = m.run(data);
            assert_eq!(out.pairs.len(), 9);
            assert!(out.pairs.iter().all(|(_, r)| r.arity() == 2));
        }
    }

    #[test]
    fn planted_mode_matches_full_mode() {
        let m = SamplingMapper::new(factory().predicate(), 8);
        let a = m.run(full_split(2_000, 30, 7));
        let b = m.run(planted_split(2_000, 30, 7));
        assert_eq!(a.records_read, b.records_read);
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn batch_modes_match_row_modes_exactly() {
        // The vectorised map over a columnar split must agree with the
        // scalar row path pair-for-pair, including the per-task cap and
        // the shuffle-byte accounting, in both scan modes.
        for (m, label) in [
            (SamplingMapper::new(factory().predicate(), 8), "capped"),
            (
                SamplingMapper::new(factory().predicate(), 1_000),
                "uncapped",
            ),
            (
                SamplingMapper::with_projection(
                    factory().predicate(),
                    8,
                    vec![col::ORDERKEY, col::SUPPKEY],
                ),
                "projected",
            ),
        ] {
            let rows = m.run(full_split(2_000, 30, 7));
            let batch = m.run(batch_split(2_000, 30, 7));
            assert_eq!(all_pairs(&batch), all_pairs(&rows), "full/{label}");
            assert_eq!(batch.records_read, rows.records_read, "full/{label}");
            assert_eq!(
                batch.materialized_bytes(),
                rows.materialized_bytes(),
                "full/{label}"
            );

            let rows = m.run(planted_split(2_000, 30, 7));
            let batch = m.run(planted_batch_split(2_000, 30, 7));
            assert_eq!(all_pairs(&batch), all_pairs(&rows), "planted/{label}");
            assert_eq!(batch.records_read, rows.records_read, "planted/{label}");
            assert_eq!(
                batch.materialized_bytes(),
                rows.materialized_bytes(),
                "planted/{label}"
            );
        }
    }

    #[test]
    fn combiner_batch_path_truncates_without_materialising() {
        let m = SamplingMapper::new(factory().predicate(), 1_000);
        let out = m.run(batch_split(2_000, 30, 7));
        let c = SampleCombiner::new(9);
        let combined = c
            .combine_batches(out.batches)
            .expect("sampling combiner keeps batches columnar");
        let total: usize = combined.iter().map(|b| b.rows.len()).sum();
        assert_eq!(total, 9);
        // Same survivors the row combine would keep: the selection prefix.
        let rows = m.run(full_split(2_000, 30, 7));
        let expect = c.combine(rows.pairs);
        let got: Vec<(Key, Record)> = combined
            .iter()
            .flat_map(|b| b.rows.iter_records().map(|r| (Key::clone(&b.key), r)))
            .collect();
        assert_eq!(got, expect[..9].to_vec());
    }

    fn recs(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(vec![Value::Int(i as i64)]))
            .collect()
    }

    #[test]
    fn reduce_passes_small_lists_through() {
        let r = SamplingReducer::new(10, SampleMode::FirstK);
        let mut out = Vec::new();
        r.reduce(&Key::from(DUMMY_KEY), &recs(4), &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn reduce_first_k_takes_a_prefix() {
        let r = SamplingReducer::new(3, SampleMode::FirstK);
        let mut out = Vec::new();
        r.reduce(&Key::from(DUMMY_KEY), &recs(10), &mut out);
        let got: Vec<i64> = out
            .iter()
            .map(|(_, rec)| match rec.get(0) {
                Value::Int(v) => *v,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn reduce_random_k_is_seeded_and_k_sized() {
        let r = SamplingReducer::new(5, SampleMode::RandomK { seed: 9 });
        let values = recs(100);
        let mut a = Vec::new();
        let mut b = Vec::new();
        r.reduce(&Key::from(DUMMY_KEY), &values, &mut a);
        r.reduce(&Key::from(DUMMY_KEY), &values, &mut b);
        assert_eq!(a.len(), 5);
        assert_eq!(a, b, "same seed, same sample");
        let r2 = SamplingReducer::new(5, SampleMode::RandomK { seed: 10 });
        let mut c = Vec::new();
        r2.reduce(&Key::from(DUMMY_KEY), &values, &mut c);
        assert_ne!(a, c, "different seed, different sample");
    }

    #[test]
    fn combiner_truncates_to_k_and_keeps_prefix_order() {
        let c = SampleCombiner::new(3);
        let key = Key::from(DUMMY_KEY);
        let pairs: Vec<(Key, Record)> = recs(10)
            .into_iter()
            .map(|r| (Key::clone(&key), r))
            .collect();
        let out = c.combine(pairs.clone());
        assert_eq!(out.len(), 3);
        assert_eq!(out[..], pairs[..3]);
        assert_eq!(c.combine(pairs[..2].to_vec()).len(), 2, "short lists pass");
    }

    #[test]
    fn reservoir_is_approximately_uniform() {
        // Sample 1 of 4 many times; each element should appear ~25%.
        let values = recs(4);
        let mut counts = [0u32; 4];
        for seed in 0..4_000 {
            let r = SamplingReducer::new(1, SampleMode::RandomK { seed });
            let mut out = Vec::new();
            r.reduce(&Key::from(DUMMY_KEY), &values, &mut out);
            let Value::Int(v) = out[0].1.get(0) else {
                panic!()
            };
            counts[*v as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (800..=1_200).contains(&c),
                "reservoir badly skewed: {counts:?}"
            );
        }
    }
}
