//! # incmr-core
//!
//! The paper's primary contribution, as a library: **incremental job
//! expansion for MapReduce**, applied to efficient predicate-based
//! sampling (Grover & Carey, ICDE 2012).
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`input_provider::InputProvider`] — the pluggable, client-side logic
//!   that decides a dynamic job's intake of input (Section III-A), with the
//!   three responses of Figure 3 (`EndOfInput` / `InputAvailable` /
//!   `NoInputAvailable`);
//! * [`policy::Policy`] — EvaluationInterval, WorkThreshold, and GrabLimit
//!   (Section III-B), with the five built-ins of Table I (`Hadoop`, `HA`,
//!   `MA`, `LA`, `C`) and a small expression language for grab limits;
//! * [`policy_file`] — a `policy.xml`-style registry so deployments can
//!   define their own policies (Section IV);
//! * [`estimator`] — runtime selectivity and records-per-split estimation
//!   (Section IV's "expected output from pending map tasks" arithmetic);
//! * [`sampling_provider::SamplingInputProvider`] — the Input Provider for
//!   predicate-based sampling;
//! * [`continuous::ContinuousSampling`] — its standing-query variant:
//!   instead of ending input when the pool drains short of `k`, the job
//!   parks and is re-awoken when new blocks land (`MrRuntime::evolve`);
//! * [`dynamic_driver::DynamicDriver`] — the JobClient-side evaluation loop
//!   that gates provider invocations by the work threshold and caps intake
//!   by the grab limit;
//! * [`sampling`] — Algorithms 1 and 2 (the sampling mapper and reducer,
//!   plus the footnote's reservoir-sampling "random k" variant);
//! * [`scan`] — the select-project mapper used by the *Non-Sampling* job
//!   class in the heterogeneous-workload experiments;
//! * [`sampling_job`] — convenience assembly of a complete dynamic
//!   sampling job from a dataset, a policy, and `k`.

pub mod adaptive;
pub mod continuous;
pub mod dynamic_driver;
pub mod estimating_provider;
pub mod estimator;
pub mod input_provider;
pub mod policy;
pub mod policy_file;
pub mod sampling;
pub mod sampling_job;
pub mod sampling_provider;
pub mod scan;

pub use adaptive::{AdaptiveDriver, AdaptiveThresholds};
pub use continuous::ContinuousSampling;
pub use dynamic_driver::DynamicDriver;
pub use estimating_provider::{EstimatingInputProvider, INITIAL_AGG_SPLITS};
pub use estimator::{ProgressEstimate, SelectivityEstimator};
pub use input_provider::{InputProvider, InputResponse};
pub use policy::{GrabLimit, Policy};
pub use policy_file::{parse_policy_file, PolicyFileError};
pub use sampling::{SampleCombiner, SampleMode, SamplingMapper, SamplingReducer, DUMMY_KEY};
pub use sampling_job::{
    build_adaptive_sampling_job, build_sampling_job, build_sampling_job_with, build_scan_job,
    sample_outcome, SampleOutcome,
};
pub use sampling_provider::SamplingInputProvider;
pub use scan::ScanMapper;
