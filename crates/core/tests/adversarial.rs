//! Adversarial Input Providers against the runtime's guard-rail plane.
//!
//! Every hostile behaviour here must terminate *deterministically* with a
//! documented typed error (or a documented recovery) — no runtime panic,
//! no infinite event loop — and behave byte-identically at 1, 4, and 8
//! data-plane threads (the guard rails live entirely in the control
//! plane, which parallelism must not perturb).

use std::fmt::Debug;
use std::sync::Arc;

use incmr_core::{DynamicDriver, InputProvider, InputResponse, Policy};
use incmr_data::{Dataset, DatasetSpec, SkewLevel};
use incmr_dfs::{BlockId, ClusterTopology, EvenRoundRobin, Namespace};
use incmr_mapreduce::{
    ClusterConfig, ClusterStatus, CostModel, DatasetInputFormat, EvalContext, FifoScheduler,
    GuardrailMetrics, JobError, JobSpec, Key, MapResult, Mapper, MrRuntime, Parallelism,
    ProviderError, ProviderStage, ScanMode, SplitData,
};

struct MatchAllMapper;

impl Mapper for MatchAllMapper {
    fn run(&self, data: SplitData) -> MapResult {
        let total_records = data.total_records();
        let (SplitData::Planted { matches, .. } | SplitData::Records(matches)) = data.into_rows()
        else {
            unreachable!()
        };
        let key = Key::from("k");
        MapResult {
            pairs: matches.into_iter().map(|r| (Key::clone(&key), r)).collect(),
            records_read: total_records,
            ..MapResult::default()
        }
    }
}

fn world(threads: u32, partitions: u32) -> (MrRuntime, Arc<Dataset>) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = incmr_simkit::rng::DetRng::seed_from(13);
    let spec = DatasetSpec::small("adv", partitions, 2_000, SkewLevel::Zero, 13);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user().with_parallelism(Parallelism::threads(threads)),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    (rt, ds)
}

/// Run `f` at 1, 4, and 8 threads and insist the observable outcome is
/// identical; return the 1-thread outcome for further assertions.
fn pinned<T: PartialEq + Debug>(f: impl Fn(u32) -> T) -> T {
    let serial = f(1);
    for threads in [4, 8] {
        let t = f(threads);
        assert_eq!(serial, t, "outcome diverged at {threads} threads");
    }
    serial
}

/// What a run leaves behind, for cross-thread-count comparison.
fn observe(
    rt: &MrRuntime,
    id: incmr_mapreduce::JobId,
) -> (
    bool,
    Option<JobError>,
    u32,
    GuardrailMetrics,
    incmr_simkit::SimTime,
) {
    let r = rt.job_result(id);
    (
        r.failed,
        r.error.clone(),
        r.splits_processed,
        rt.metrics().guardrails(),
        rt.now(),
    )
}

// ---------------------------------------------------------------------------
// Panicking providers
// ---------------------------------------------------------------------------

/// Panics on its `n`th provider call (0 = `initial_input`), once.
struct PanicAt {
    blocks: Vec<BlockId>,
    calls: u32,
    panic_on: u32,
}

impl PanicAt {
    fn maybe_detonate(&mut self) {
        let call = self.calls;
        self.calls += 1;
        if call == self.panic_on {
            panic!("provider exploded at call {call}");
        }
    }
}

impl InputProvider for PanicAt {
    fn initial_input(&mut self, _c: &ClusterStatus, grab: u64) -> Vec<BlockId> {
        self.maybe_detonate();
        let n = (grab as usize).min(self.blocks.len());
        self.blocks.drain(..n).collect()
    }

    fn next_input(&mut self, ctx: EvalContext<'_>) -> InputResponse {
        self.maybe_detonate();
        if self.blocks.is_empty() {
            return InputResponse::EndOfInput;
        }
        let n = (ctx.grab_limit as usize).min(self.blocks.len());
        InputResponse::InputAvailable(self.blocks.drain(..n).collect())
    }

    fn remaining(&self) -> usize {
        self.blocks.len()
    }
}

fn job_for(ds: &Arc<Dataset>) -> incmr_mapreduce::JobSpecBuilder {
    JobSpec::builder()
        .input(DatasetInputFormat::new(Arc::clone(ds), ScanMode::Planted))
        .mapper(MatchAllMapper)
}

fn driver_with(
    provider: impl InputProvider + 'static,
    policy: Policy,
    total: u32,
) -> Box<DynamicDriver> {
    Box::new(DynamicDriver::new(Box::new(provider), policy, total))
}

#[test]
fn panic_in_initial_input_fails_the_job_with_a_typed_error() {
    let (failed, error, splits, g, _) = pinned(|threads| {
        let (mut rt, ds) = world(threads, 8);
        let blocks = ds.splits().iter().map(|p| p.block).collect();
        let driver = driver_with(
            PanicAt {
                blocks,
                calls: 0,
                panic_on: 0,
            },
            Policy::ha(),
            8,
        );
        let id = rt.submit(job_for(&ds).build(), driver);
        rt.run_until_idle();
        observe(&rt, id)
    });
    assert!(failed);
    assert_eq!(splits, 0);
    assert_eq!(g.provider_panics, 1);
    assert_eq!(g.provider_errors, 1);
    match error {
        Some(JobError::Provider(ProviderError::Panicked { stage, message })) => {
            assert_eq!(stage, ProviderStage::InitialInput);
            assert!(message.contains("exploded at call 0"), "{message}");
        }
        other => panic!("expected a Panicked provider error, got {other:?}"),
    }
}

#[test]
fn panic_during_evaluation_fails_the_job_mid_flight() {
    let (failed, error, _, g, _) = pinned(|threads| {
        let (mut rt, ds) = world(threads, 12);
        let blocks = ds.splits().iter().map(|p| p.block).collect();
        // Survives initial_input, detonates on the first next_input.
        let driver = driver_with(
            PanicAt {
                blocks,
                calls: 0,
                panic_on: 1,
            },
            Policy::conservative(),
            12,
        );
        let id = rt.submit(job_for(&ds).build(), driver);
        rt.run_until_idle();
        observe(&rt, id)
    });
    assert!(failed);
    assert_eq!(g.provider_panics, 1);
    assert!(matches!(
        error,
        Some(JobError::Provider(ProviderError::Panicked {
            stage: ProviderStage::Evaluate,
            ..
        }))
    ));
}

#[test]
fn retry_budget_absorbs_a_single_panic_and_the_job_completes() {
    let (failed, error, splits, g, _) = pinned(|threads| {
        let (mut rt, ds) = world(threads, 6);
        let blocks = ds.splits().iter().map(|p| p.block).collect();
        let driver = driver_with(
            PanicAt {
                blocks,
                calls: 0,
                panic_on: 1,
            },
            Policy::ha(),
            6,
        );
        let id = rt.submit(job_for(&ds).provider_retry_budget(2).build(), driver);
        rt.run_until_idle();
        observe(&rt, id)
    });
    assert!(!failed, "one panic is inside the retry budget");
    assert_eq!(error, None);
    assert_eq!(splits, 6, "job recovered and drained its input");
    assert_eq!(g.provider_panics, 1);
    assert_eq!(g.provider_retries, 1);
}

// ---------------------------------------------------------------------------
// Duplicate-returning provider
// ---------------------------------------------------------------------------

/// Hands out overlapping batches: the same splits twice, then ends.
struct DuplicateProvider {
    blocks: Vec<BlockId>,
    calls: u32,
}

impl InputProvider for DuplicateProvider {
    fn initial_input(&mut self, _c: &ClusterStatus, _grab: u64) -> Vec<BlockId> {
        self.blocks[..6].to_vec()
    }

    fn next_input(&mut self, _ctx: EvalContext<'_>) -> InputResponse {
        self.calls += 1;
        match self.calls {
            // Overlaps blocks 3..6 with the initial batch, and repeats
            // block 7 inside its own batch.
            1 => InputResponse::InputAvailable(
                self.blocks[3..8]
                    .iter()
                    .copied()
                    .chain([self.blocks[7]])
                    .collect(),
            ),
            _ => InputResponse::EndOfInput,
        }
    }

    fn remaining(&self) -> usize {
        0
    }
}

#[test]
fn duplicate_splits_are_dropped_not_rerun() {
    let (failed, error, splits, g, _) = pinned(|threads| {
        let (mut rt, ds) = world(threads, 10);
        let blocks: Vec<_> = ds.splits().iter().map(|p| p.block).collect();
        let driver = driver_with(DuplicateProvider { blocks, calls: 0 }, Policy::ha(), 10);
        let id = rt.submit(job_for(&ds).build(), driver);
        rt.run_until_idle();
        observe(&rt, id)
    });
    assert!(
        !failed,
        "duplicates are a correctness hazard, not fatal: {error:?}"
    );
    // Initial 0..6 plus the fresh 6,7 from the overlapping batch.
    assert_eq!(splits, 8, "each split runs exactly once");
    // 3 duplicates against already-claimed splits + 1 intra-batch repeat.
    assert_eq!(g.duplicate_splits_dropped, 4);
}

// ---------------------------------------------------------------------------
// Over-grabbing provider
// ---------------------------------------------------------------------------

/// Ignores the grab limit entirely and dumps its whole candidate set.
struct OverGrabber {
    blocks: Vec<BlockId>,
    handed_out: bool,
}

impl InputProvider for OverGrabber {
    fn initial_input(&mut self, _c: &ClusterStatus, _grab: u64) -> Vec<BlockId> {
        self.handed_out = true;
        self.blocks.clone()
    }

    fn next_input(&mut self, _ctx: EvalContext<'_>) -> InputResponse {
        InputResponse::EndOfInput
    }

    fn remaining(&self) -> usize {
        if self.handed_out {
            0
        } else {
            self.blocks.len()
        }
    }
}

#[test]
fn over_grab_is_clamped_to_the_policy_limit() {
    let (failed, _, splits, g, _) = pinned(|threads| {
        let (mut rt, ds) = world(threads, 40);
        let blocks: Vec<_> = ds.splits().iter().map(|p| p.block).collect();
        // Conservative policy on an idle 40-slot cluster: grab = 0.1*TS = 4.
        let driver = driver_with(
            OverGrabber {
                blocks,
                handed_out: false,
            },
            Policy::conservative(),
            40,
        );
        let id = rt.submit(job_for(&ds).build(), driver);
        rt.run_until_idle();
        observe(&rt, id)
    });
    assert!(!failed);
    assert_eq!(splits, 4, "the 40-split dump was clamped to the grab limit");
    assert_eq!(g.grab_limit_clamps, 1);
}

// ---------------------------------------------------------------------------
// Forever-waiting provider (livelock)
// ---------------------------------------------------------------------------

/// Returns `NoInputAvailable` on every consultation, forever.
struct ForeverWait;

impl InputProvider for ForeverWait {
    fn initial_input(&mut self, _c: &ClusterStatus, _grab: u64) -> Vec<BlockId> {
        Vec::new()
    }

    fn next_input(&mut self, _ctx: EvalContext<'_>) -> InputResponse {
        InputResponse::NoInputAvailable
    }

    fn remaining(&self) -> usize {
        1 // claims there is more coming; there never is
    }
}

#[test]
fn forever_waiting_provider_trips_the_wedge_watchdog() {
    let (failed, error, splits, g, now) = pinned(|threads| {
        let (mut rt, ds) = world(threads, 4);
        let driver = driver_with(ForeverWait, Policy::ha(), 4);
        let id = rt.submit(job_for(&ds).max_idle_evaluations(8).build(), driver);
        rt.run_until_idle(); // must return: the watchdog breaks the loop
        observe(&rt, id)
    });
    assert!(failed);
    assert_eq!(splits, 0);
    assert_eq!(
        error,
        Some(JobError::Wedged {
            idle_evaluations: 8
        })
    );
    assert_eq!(g.jobs_wedged, 1);
    assert!(
        now > incmr_simkit::SimTime::ZERO,
        "watchdog needed simulated time"
    );
}

#[test]
fn default_watchdog_catches_wedges_without_any_configuration() {
    // No knobs set: the built-in limit still terminates the loop.
    let (failed, error, _, g, _) = pinned(|threads| {
        let (mut rt, ds) = world(threads, 4);
        let driver = driver_with(ForeverWait, Policy::ha(), 4);
        let id = rt.submit(job_for(&ds).build(), driver);
        rt.run_until_idle();
        observe(&rt, id)
    });
    assert!(failed);
    assert_eq!(
        error,
        Some(JobError::Wedged {
            idle_evaluations: incmr_mapreduce::DEFAULT_MAX_IDLE_EVALUATIONS
        })
    );
    assert_eq!(g.jobs_wedged, 1);
}

// ---------------------------------------------------------------------------
// Unknown-block provider
// ---------------------------------------------------------------------------

/// Requests a block id far outside the namespace, then behaves.
struct UnknownBlockProvider {
    blocks: Vec<BlockId>,
    calls: u32,
}

impl InputProvider for UnknownBlockProvider {
    fn initial_input(&mut self, _c: &ClusterStatus, _grab: u64) -> Vec<BlockId> {
        vec![self.blocks[0]]
    }

    fn next_input(&mut self, _ctx: EvalContext<'_>) -> InputResponse {
        self.calls += 1;
        match self.calls {
            1 => InputResponse::InputAvailable(vec![BlockId(u32::MAX)]),
            2 => InputResponse::InputAvailable(self.blocks[1..].to_vec()),
            _ => InputResponse::EndOfInput,
        }
    }

    fn remaining(&self) -> usize {
        self.blocks.len()
    }
}

#[test]
fn unknown_block_without_retries_is_fatal() {
    let (failed, error, _, g, _) = pinned(|threads| {
        let (mut rt, ds) = world(threads, 6);
        let blocks: Vec<_> = ds.splits().iter().map(|p| p.block).collect();
        let driver = driver_with(UnknownBlockProvider { blocks, calls: 0 }, Policy::ha(), 6);
        let id = rt.submit(job_for(&ds).build(), driver);
        rt.run_until_idle();
        observe(&rt, id)
    });
    assert!(failed);
    assert_eq!(
        error,
        Some(JobError::Provider(ProviderError::UnknownBlock {
            block: BlockId(u32::MAX)
        }))
    );
    assert_eq!(g.unknown_blocks, 1);
    assert_eq!(g.provider_panics, 0, "a bad directive is not a panic");
}

#[test]
fn unknown_block_inside_the_retry_budget_reconsults_and_completes() {
    let (failed, error, splits, g, _) = pinned(|threads| {
        let (mut rt, ds) = world(threads, 6);
        let blocks: Vec<_> = ds.splits().iter().map(|p| p.block).collect();
        let driver = driver_with(UnknownBlockProvider { blocks, calls: 0 }, Policy::ha(), 6);
        let id = rt.submit(job_for(&ds).provider_retry_budget(1).build(), driver);
        rt.run_until_idle();
        observe(&rt, id)
    });
    assert!(!failed, "one bad directive is inside the budget: {error:?}");
    assert_eq!(splits, 6, "re-consultation recovered the full input");
    assert_eq!(g.unknown_blocks, 1);
    assert_eq!(g.provider_retries, 1);
}
