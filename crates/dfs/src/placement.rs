//! Block-placement policies.
//!
//! Where a block's replicas land determines both load balance across disks
//! and the achievable scheduling locality. The paper "desired a balanced
//! distribution of load across the 40 disks and hence required the input
//! data to be evenly distributed across the disks with no replication"
//! (Section V-B) — that is [`EvenRoundRobin`]. [`RandomPlacement`] (with
//! optional replication) is provided for ablations.

use std::fmt;

use incmr_simkit::rng::DetRng;

use crate::topology::{ClusterTopology, DiskId, NodeId};

/// Chooses the disks that will hold each block of a file.
pub trait PlacementPolicy {
    /// Replica locations for the `index`-th block of a file. Must return at
    /// least one disk and no duplicates.
    fn place(&mut self, index: usize, topology: &ClusterTopology, rng: &mut DetRng) -> Vec<DiskId>;
}

/// Deterministic round-robin over all disks, single replica — the paper's
/// even, unreplicated layout. Consecutive blocks land on consecutive disks,
/// so any 40-block file covers all 40 disks exactly once.
#[derive(Debug, Clone, Default)]
pub struct EvenRoundRobin {
    cursor: u32,
}

impl EvenRoundRobin {
    /// Start placing at disk 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start placing at a specific disk offset (lets multiple dataset copies
    /// interleave instead of stacking their first blocks on disk 0).
    pub fn starting_at(offset: u32) -> Self {
        EvenRoundRobin { cursor: offset }
    }
}

impl PlacementPolicy for EvenRoundRobin {
    fn place(
        &mut self,
        _index: usize,
        topology: &ClusterTopology,
        _rng: &mut DetRng,
    ) -> Vec<DiskId> {
        let disk = DiskId(self.cursor % topology.num_disks());
        self.cursor = self.cursor.wrapping_add(1);
        vec![disk]
    }
}

/// Places every block on one fixed disk — a pathological layout used to
/// exercise remote-read paths and hotspot behaviour in tests and
/// ablations.
#[derive(Debug, Clone, Copy)]
pub struct PinnedPlacement {
    disk: DiskId,
}

impl PinnedPlacement {
    /// Pin all blocks to `disk`.
    pub fn new(disk: DiskId) -> Self {
        PinnedPlacement { disk }
    }
}

impl PlacementPolicy for PinnedPlacement {
    fn place(
        &mut self,
        _index: usize,
        topology: &ClusterTopology,
        _rng: &mut DetRng,
    ) -> Vec<DiskId> {
        assert!(
            self.disk.0 < topology.num_disks(),
            "pinned disk out of range"
        );
        vec![self.disk]
    }
}

/// Uniform-random placement with `replication` distinct replicas (HDFS-like
/// when `replication = 3`, modulo rack awareness).
#[derive(Debug, Clone)]
pub struct RandomPlacement {
    replication: u8,
}

impl RandomPlacement {
    /// Placement with the given replica count.
    ///
    /// # Panics
    /// Panics if `replication` is zero.
    pub fn new(replication: u8) -> Self {
        assert!(replication > 0, "need at least one replica");
        RandomPlacement { replication }
    }
}

/// Rejected replication configuration (user input — typed errors, no
/// panics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementConfigError {
    /// `replication = 0` stores no copy at all.
    ZeroReplication,
    /// More replicas requested than the cluster has nodes — the "never two
    /// replicas on one node" invariant would be unsatisfiable.
    ReplicationExceedsNodes {
        /// Requested replication factor.
        replication: u8,
        /// Nodes available to hold distinct replicas.
        nodes: u16,
    },
    /// Rack-aware placement needs at least two racks to spread across.
    NotEnoughRacks {
        /// Racks in the topology.
        racks: u16,
    },
}

impl fmt::Display for PlacementConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementConfigError::ZeroReplication => {
                write!(f, "replication factor must be at least 1")
            }
            PlacementConfigError::ReplicationExceedsNodes { replication, nodes } => write!(
                f,
                "replication {replication} exceeds the {nodes} node(s) available"
            ),
            PlacementConfigError::NotEnoughRacks { racks } => {
                write!(
                    f,
                    "rack-aware placement needs >= 2 racks, topology has {racks}"
                )
            }
        }
    }
}

impl std::error::Error for PlacementConfigError {}

/// HDFS-style replicated placement with factor `r`: every block gets exactly
/// `r` replicas on `r` *distinct nodes*, and when the topology has more than
/// one rack the replica set spans at least two racks. Fully deterministic —
/// the layout depends only on the block index and the topology, never on the
/// RNG, so two namespaces built with the same policy are byte-identical
/// regardless of seed.
///
/// Primary replicas round-robin across nodes (block `i` is homed on node
/// `i % nodes`), which keeps map locality balanced exactly like
/// [`EvenRoundRobin`] does at `r = 1`; the remaining replicas walk the
/// following nodes, preferring ones in racks not yet covered.
#[derive(Debug, Clone, Copy)]
pub struct ReplicatedPlacement {
    replication: u8,
}

impl ReplicatedPlacement {
    /// Placement with `replication` replicas, validated against `topology`.
    /// Spreads across racks when the topology has more than one, but does
    /// not require it.
    pub fn try_new(
        replication: u8,
        topology: &ClusterTopology,
    ) -> Result<Self, PlacementConfigError> {
        if replication == 0 {
            return Err(PlacementConfigError::ZeroReplication);
        }
        if replication as u16 > topology.num_nodes() {
            return Err(PlacementConfigError::ReplicationExceedsNodes {
                replication,
                nodes: topology.num_nodes(),
            });
        }
        Ok(ReplicatedPlacement { replication })
    }

    /// Like [`ReplicatedPlacement::try_new`] but additionally requires the
    /// topology to have at least two racks, so the rack-spread invariant is
    /// guaranteed rather than best-effort.
    pub fn try_rack_aware(
        replication: u8,
        topology: &ClusterTopology,
    ) -> Result<Self, PlacementConfigError> {
        if topology.num_racks() < 2 {
            return Err(PlacementConfigError::NotEnoughRacks {
                racks: topology.num_racks(),
            });
        }
        ReplicatedPlacement::try_new(replication, topology)
    }

    /// The configured replication factor.
    pub fn replication(&self) -> u8 {
        self.replication
    }

    /// The deterministic replica nodes for block `index`: primary on
    /// `index % nodes`, then the following nodes in id order, except that
    /// while only one rack is covered a node in a *new* rack is preferred.
    fn replica_nodes(&self, index: usize, topology: &ClusterTopology) -> Vec<NodeId> {
        let n = topology.num_nodes();
        let primary = NodeId((index % n as usize) as u16);
        let mut chosen = vec![primary];
        let mut offset = 1u16;
        while chosen.len() < self.replication as usize {
            let candidate = NodeId((primary.0 + offset) % n);
            offset += 1;
            if chosen.contains(&candidate) {
                continue;
            }
            // Until a second rack is covered, skip candidates that would
            // keep all replicas in the primary's rack — unless no such
            // candidate exists at all (single-rack topologies).
            let one_rack_so_far = chosen
                .iter()
                .all(|&c| topology.rack_of(c) == topology.rack_of(primary));
            if one_rack_so_far
                && topology.num_racks() > 1
                && topology.rack_of(candidate) == topology.rack_of(primary)
            {
                continue;
            }
            chosen.push(candidate);
        }
        chosen
    }
}

impl PlacementPolicy for ReplicatedPlacement {
    fn place(
        &mut self,
        index: usize,
        topology: &ClusterTopology,
        _rng: &mut DetRng,
    ) -> Vec<DiskId> {
        // Within each node, stripe successive visits of the round-robin
        // across that node's disks so replicas balance per-disk too.
        let spin = (index / topology.num_nodes() as usize) as u32;
        self.replica_nodes(index, topology)
            .into_iter()
            .map(|node| {
                let disks: Vec<DiskId> = topology.disks_of(node).collect();
                disks[(spin as usize) % disks.len()]
            })
            .collect()
    }
}

impl PlacementPolicy for RandomPlacement {
    fn place(
        &mut self,
        _index: usize,
        topology: &ClusterTopology,
        rng: &mut DetRng,
    ) -> Vec<DiskId> {
        let all: Vec<DiskId> = topology.disks().collect();
        rng.sample_without_replacement(&all, self.replication as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_all_disks_evenly() {
        let topo = ClusterTopology::paper_cluster();
        let mut policy = EvenRoundRobin::new();
        let mut rng = DetRng::seed_from(1);
        let mut per_disk = vec![0u32; topo.num_disks() as usize];
        for i in 0..80 {
            let loc = policy.place(i, &topo, &mut rng);
            assert_eq!(loc.len(), 1);
            per_disk[loc[0].0 as usize] += 1;
        }
        assert!(
            per_disk.iter().all(|&c| c == 2),
            "80 blocks over 40 disks = 2 each"
        );
    }

    #[test]
    fn round_robin_offset_shifts_start() {
        let topo = ClusterTopology::paper_cluster();
        let mut rng = DetRng::seed_from(1);
        let mut p = EvenRoundRobin::starting_at(39);
        assert_eq!(p.place(0, &topo, &mut rng), vec![DiskId(39)]);
        assert_eq!(p.place(1, &topo, &mut rng), vec![DiskId(0)]);
    }

    #[test]
    fn random_placement_gives_distinct_replicas() {
        let topo = ClusterTopology::paper_cluster();
        let mut policy = RandomPlacement::new(3);
        let mut rng = DetRng::seed_from(7);
        for i in 0..50 {
            let mut loc = policy.place(i, &topo, &mut rng);
            assert_eq!(loc.len(), 3);
            loc.sort();
            loc.dedup();
            assert_eq!(loc.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn random_placement_is_deterministic_under_seed() {
        let topo = ClusterTopology::paper_cluster();
        let run = |seed| {
            let mut policy = RandomPlacement::new(2);
            let mut rng = DetRng::seed_from(seed);
            (0..10)
                .map(|i| policy.place(i, &topo, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replication_panics() {
        let _ = RandomPlacement::new(0);
    }

    #[test]
    fn replicated_placement_spreads_nodes_and_racks() {
        let topo = ClusterTopology::paper_cluster().with_racks(2);
        let mut policy = ReplicatedPlacement::try_rack_aware(3, &topo).unwrap();
        let mut rng = DetRng::seed_from(1);
        for i in 0..80 {
            let locs = policy.place(i, &topo, &mut rng);
            assert_eq!(locs.len(), 3);
            let mut nodes: Vec<_> = locs.iter().map(|&d| topo.node_of(d)).collect();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), 3, "never two replicas on one node");
            let mut racks: Vec<_> = nodes.iter().map(|&n| topo.rack_of(n)).collect();
            racks.sort();
            racks.dedup();
            assert!(racks.len() >= 2, "replicas span at least two racks");
        }
    }

    #[test]
    fn replicated_placement_ignores_rng_seed() {
        let topo = ClusterTopology::paper_cluster().with_racks(2);
        let run = |seed| {
            let mut policy = ReplicatedPlacement::try_new(3, &topo).unwrap();
            let mut rng = DetRng::seed_from(seed);
            (0..40)
                .map(|i| policy.place(i, &topo, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(12345), "layout is seed-independent");
    }

    #[test]
    fn replicated_placement_balances_primaries_round_robin() {
        let topo = ClusterTopology::paper_cluster();
        let mut policy = ReplicatedPlacement::try_new(2, &topo).unwrap();
        let mut rng = DetRng::seed_from(1);
        for i in 0..20 {
            let locs = policy.place(i, &topo, &mut rng);
            assert_eq!(
                topo.node_of(locs[0]),
                crate::topology::NodeId((i % 10) as u16),
                "primary homes round-robin across nodes"
            );
        }
    }

    #[test]
    fn replication_config_is_validated_not_asserted() {
        let topo = ClusterTopology::new(3, 2, 1);
        assert_eq!(
            ReplicatedPlacement::try_new(0, &topo).unwrap_err(),
            PlacementConfigError::ZeroReplication
        );
        assert_eq!(
            ReplicatedPlacement::try_new(4, &topo).unwrap_err(),
            PlacementConfigError::ReplicationExceedsNodes {
                replication: 4,
                nodes: 3
            }
        );
        assert_eq!(
            ReplicatedPlacement::try_rack_aware(2, &topo).unwrap_err(),
            PlacementConfigError::NotEnoughRacks { racks: 1 }
        );
        assert!(ReplicatedPlacement::try_rack_aware(2, &topo.with_racks(2)).is_ok());
        // Errors render for operators.
        assert!(PlacementConfigError::ZeroReplication
            .to_string()
            .contains("at least 1"));
    }

    #[test]
    fn pinned_placement_concentrates_everything() {
        let topo = ClusterTopology::paper_cluster();
        let mut p = PinnedPlacement::new(DiskId(17));
        let mut rng = DetRng::seed_from(1);
        for i in 0..20 {
            assert_eq!(p.place(i, &topo, &mut rng), vec![DiskId(17)]);
        }
    }

    #[test]
    #[should_panic(expected = "pinned disk out of range")]
    fn pinned_out_of_range_panics() {
        let topo = ClusterTopology::new(1, 1, 1);
        let mut rng = DetRng::seed_from(1);
        PinnedPlacement::new(DiskId(5)).place(0, &topo, &mut rng);
    }
}
