//! Block-placement policies.
//!
//! Where a block's replicas land determines both load balance across disks
//! and the achievable scheduling locality. The paper "desired a balanced
//! distribution of load across the 40 disks and hence required the input
//! data to be evenly distributed across the disks with no replication"
//! (Section V-B) — that is [`EvenRoundRobin`]. [`RandomPlacement`] (with
//! optional replication) is provided for ablations.

use incmr_simkit::rng::DetRng;

use crate::topology::{ClusterTopology, DiskId};

/// Chooses the disks that will hold each block of a file.
pub trait PlacementPolicy {
    /// Replica locations for the `index`-th block of a file. Must return at
    /// least one disk and no duplicates.
    fn place(&mut self, index: usize, topology: &ClusterTopology, rng: &mut DetRng) -> Vec<DiskId>;
}

/// Deterministic round-robin over all disks, single replica — the paper's
/// even, unreplicated layout. Consecutive blocks land on consecutive disks,
/// so any 40-block file covers all 40 disks exactly once.
#[derive(Debug, Clone, Default)]
pub struct EvenRoundRobin {
    cursor: u32,
}

impl EvenRoundRobin {
    /// Start placing at disk 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start placing at a specific disk offset (lets multiple dataset copies
    /// interleave instead of stacking their first blocks on disk 0).
    pub fn starting_at(offset: u32) -> Self {
        EvenRoundRobin { cursor: offset }
    }
}

impl PlacementPolicy for EvenRoundRobin {
    fn place(
        &mut self,
        _index: usize,
        topology: &ClusterTopology,
        _rng: &mut DetRng,
    ) -> Vec<DiskId> {
        let disk = DiskId(self.cursor % topology.num_disks());
        self.cursor = self.cursor.wrapping_add(1);
        vec![disk]
    }
}

/// Places every block on one fixed disk — a pathological layout used to
/// exercise remote-read paths and hotspot behaviour in tests and
/// ablations.
#[derive(Debug, Clone, Copy)]
pub struct PinnedPlacement {
    disk: DiskId,
}

impl PinnedPlacement {
    /// Pin all blocks to `disk`.
    pub fn new(disk: DiskId) -> Self {
        PinnedPlacement { disk }
    }
}

impl PlacementPolicy for PinnedPlacement {
    fn place(
        &mut self,
        _index: usize,
        topology: &ClusterTopology,
        _rng: &mut DetRng,
    ) -> Vec<DiskId> {
        assert!(
            self.disk.0 < topology.num_disks(),
            "pinned disk out of range"
        );
        vec![self.disk]
    }
}

/// Uniform-random placement with `replication` distinct replicas (HDFS-like
/// when `replication = 3`, modulo rack awareness).
#[derive(Debug, Clone)]
pub struct RandomPlacement {
    replication: u8,
}

impl RandomPlacement {
    /// Placement with the given replica count.
    ///
    /// # Panics
    /// Panics if `replication` is zero.
    pub fn new(replication: u8) -> Self {
        assert!(replication > 0, "need at least one replica");
        RandomPlacement { replication }
    }
}

impl PlacementPolicy for RandomPlacement {
    fn place(
        &mut self,
        _index: usize,
        topology: &ClusterTopology,
        rng: &mut DetRng,
    ) -> Vec<DiskId> {
        let all: Vec<DiskId> = topology.disks().collect();
        rng.sample_without_replacement(&all, self.replication as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_all_disks_evenly() {
        let topo = ClusterTopology::paper_cluster();
        let mut policy = EvenRoundRobin::new();
        let mut rng = DetRng::seed_from(1);
        let mut per_disk = vec![0u32; topo.num_disks() as usize];
        for i in 0..80 {
            let loc = policy.place(i, &topo, &mut rng);
            assert_eq!(loc.len(), 1);
            per_disk[loc[0].0 as usize] += 1;
        }
        assert!(
            per_disk.iter().all(|&c| c == 2),
            "80 blocks over 40 disks = 2 each"
        );
    }

    #[test]
    fn round_robin_offset_shifts_start() {
        let topo = ClusterTopology::paper_cluster();
        let mut rng = DetRng::seed_from(1);
        let mut p = EvenRoundRobin::starting_at(39);
        assert_eq!(p.place(0, &topo, &mut rng), vec![DiskId(39)]);
        assert_eq!(p.place(1, &topo, &mut rng), vec![DiskId(0)]);
    }

    #[test]
    fn random_placement_gives_distinct_replicas() {
        let topo = ClusterTopology::paper_cluster();
        let mut policy = RandomPlacement::new(3);
        let mut rng = DetRng::seed_from(7);
        for i in 0..50 {
            let mut loc = policy.place(i, &topo, &mut rng);
            assert_eq!(loc.len(), 3);
            loc.sort();
            loc.dedup();
            assert_eq!(loc.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn random_placement_is_deterministic_under_seed() {
        let topo = ClusterTopology::paper_cluster();
        let run = |seed| {
            let mut policy = RandomPlacement::new(2);
            let mut rng = DetRng::seed_from(seed);
            (0..10)
                .map(|i| policy.place(i, &topo, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replication_panics() {
        let _ = RandomPlacement::new(0);
    }

    #[test]
    fn pinned_placement_concentrates_everything() {
        let topo = ClusterTopology::paper_cluster();
        let mut p = PinnedPlacement::new(DiskId(17));
        let mut rng = DetRng::seed_from(1);
        for i in 0..20 {
            assert_eq!(p.place(i, &topo, &mut rng), vec![DiskId(17)]);
        }
    }

    #[test]
    #[should_panic(expected = "pinned disk out of range")]
    fn pinned_out_of_range_panics() {
        let topo = ClusterTopology::new(1, 1, 1);
        let mut rng = DetRng::seed_from(1);
        PinnedPlacement::new(DiskId(5)).place(0, &topo, &mut rng);
    }
}
