//! # incmr-dfs
//!
//! A simulated distributed filesystem in the style of HDFS, providing the
//! substrate the MapReduce framework reads its input splits from.
//!
//! The paper's experiments depend on three DFS-level properties, all modelled
//! here:
//!
//! 1. **Partitioning** — each file is a sequence of blocks (= input splits),
//!    each with a byte length and a record count ([`Block`]).
//! 2. **Placement** — blocks live on specific disks of specific nodes; the
//!    paper requires "the input data to be evenly distributed across the
//!    disks with no replication" ([`placement::EvenRoundRobin`]).
//! 3. **Locality** — a map task reading a block stored on its own node is
//!    *local*; otherwise the read crosses the network. The scheduler's
//!    locality behaviour (Section V-F: FIFO 57% vs Fair 88%) is driven by
//!    [`Namespace::is_local`].
//!
//! Byte contents are not stored — record payloads are produced on demand by
//! the deterministic generator in `incmr-data`, keyed by block id.

pub mod namespace;
pub mod placement;
pub mod topology;

pub use namespace::{Block, BlockId, BlockSpec, DfsError, DfsFile, FileId, Namespace};
pub use placement::{
    EvenRoundRobin, PinnedPlacement, PlacementConfigError, PlacementPolicy, RandomPlacement,
    ReplicatedPlacement,
};
pub use topology::{ClusterTopology, DiskId, NodeId, RackId};
