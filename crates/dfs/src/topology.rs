//! Physical cluster topology: nodes and their disks.
//!
//! The paper's testbed is "a 10-node IBM x3650 cluster … four cores, 12GB of
//! RAM, and four 300GB hard disks … a total of 40 cores and 40 disks"
//! (Section V-A). [`ClusterTopology::paper_cluster`] builds exactly that.

use std::fmt;

/// A cluster node (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

/// A disk, addressed globally across the cluster (0-based).
///
/// Disk `d` belongs to node `d / disks_per_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

/// A failure-domain rack (0-based). Node `n` lives in rack `n % racks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub u16);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// Shape of the cluster hardware: how many nodes, disks/cores per node, and
/// how the nodes are striped across failure-domain racks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterTopology {
    nodes: u16,
    disks_per_node: u8,
    cores_per_node: u8,
    racks: u16,
}

impl ClusterTopology {
    /// A single-rack topology with the given shape (the paper's testbed is
    /// one rack).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(nodes: u16, disks_per_node: u8, cores_per_node: u8) -> Self {
        assert!(nodes > 0 && disks_per_node > 0 && cores_per_node > 0);
        ClusterTopology {
            nodes,
            disks_per_node,
            cores_per_node,
            racks: 1,
        }
    }

    /// The same topology with its nodes striped across `racks` racks
    /// (node `n` lands in rack `n % racks`).
    ///
    /// # Panics
    /// Panics if `racks` is zero or exceeds the node count (a rack with no
    /// node in it is not a failure domain).
    pub fn with_racks(self, racks: u16) -> Self {
        assert!(
            racks > 0 && racks <= self.nodes,
            "racks must be in 1..=nodes ({} nodes, {racks} racks)",
            self.nodes
        );
        ClusterTopology { racks, ..self }
    }

    /// The paper's 10-node, 4-disk, 4-core testbed (Section V-A).
    pub fn paper_cluster() -> Self {
        ClusterTopology::new(10, 4, 4)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u16 {
        self.nodes
    }

    /// Disks attached to each node.
    pub fn disks_per_node(&self) -> u8 {
        self.disks_per_node
    }

    /// CPU cores per node.
    pub fn cores_per_node(&self) -> u8 {
        self.cores_per_node
    }

    /// Number of failure-domain racks (1 unless set via
    /// [`ClusterTopology::with_racks`]).
    pub fn num_racks(&self) -> u16 {
        self.racks
    }

    /// The rack a node lives in.
    ///
    /// # Panics
    /// Panics if the node id is out of range.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        assert!(node.0 < self.nodes, "node {node} out of range");
        RackId(node.0 % self.racks)
    }

    /// Total disks in the cluster.
    pub fn num_disks(&self) -> u32 {
        self.nodes as u32 * self.disks_per_node as u32
    }

    /// Total cores in the cluster.
    pub fn num_cores(&self) -> u32 {
        self.nodes as u32 * self.cores_per_node as u32
    }

    /// The node a disk is attached to.
    ///
    /// # Panics
    /// Panics if the disk id is out of range.
    pub fn node_of(&self, disk: DiskId) -> NodeId {
        assert!(disk.0 < self.num_disks(), "disk {disk} out of range");
        NodeId((disk.0 / self.disks_per_node as u32) as u16)
    }

    /// Iterator over the disks of a node.
    ///
    /// # Panics
    /// Panics if the node id is out of range.
    pub fn disks_of(&self, node: NodeId) -> impl Iterator<Item = DiskId> {
        assert!(node.0 < self.nodes, "node {node} out of range");
        let base = node.0 as u32 * self.disks_per_node as u32;
        (base..base + self.disks_per_node as u32).map(DiskId)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// Iterator over all disk ids.
    pub fn disks(&self) -> impl Iterator<Item = DiskId> {
        (0..self.num_disks()).map(DiskId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shape() {
        let t = ClusterTopology::paper_cluster();
        assert_eq!(t.num_nodes(), 10);
        assert_eq!(t.num_disks(), 40);
        assert_eq!(t.num_cores(), 40);
    }

    #[test]
    fn disk_to_node_mapping() {
        let t = ClusterTopology::new(3, 4, 2);
        assert_eq!(t.node_of(DiskId(0)), NodeId(0));
        assert_eq!(t.node_of(DiskId(3)), NodeId(0));
        assert_eq!(t.node_of(DiskId(4)), NodeId(1));
        assert_eq!(t.node_of(DiskId(11)), NodeId(2));
    }

    #[test]
    fn disks_of_node_are_its_own() {
        let t = ClusterTopology::new(3, 4, 2);
        let disks: Vec<_> = t.disks_of(NodeId(1)).collect();
        assert_eq!(disks, vec![DiskId(4), DiskId(5), DiskId(6), DiskId(7)]);
        for d in disks {
            assert_eq!(t.node_of(d), NodeId(1));
        }
    }

    #[test]
    fn iterators_cover_everything() {
        let t = ClusterTopology::new(2, 3, 1);
        assert_eq!(t.nodes().count(), 2);
        assert_eq!(t.disks().count(), 6);
    }

    #[test]
    #[should_panic]
    fn out_of_range_disk_panics() {
        ClusterTopology::new(1, 1, 1).node_of(DiskId(5));
    }

    #[test]
    fn default_topology_is_one_rack() {
        let t = ClusterTopology::paper_cluster();
        assert_eq!(t.num_racks(), 1);
        for n in t.nodes() {
            assert_eq!(t.rack_of(n), RackId(0));
        }
    }

    #[test]
    fn racks_stripe_nodes_round_robin() {
        let t = ClusterTopology::paper_cluster().with_racks(3);
        assert_eq!(t.num_racks(), 3);
        assert_eq!(t.rack_of(NodeId(0)), RackId(0));
        assert_eq!(t.rack_of(NodeId(1)), RackId(1));
        assert_eq!(t.rack_of(NodeId(2)), RackId(2));
        assert_eq!(t.rack_of(NodeId(3)), RackId(0));
        // Every rack is non-empty.
        for r in 0..3 {
            assert!(t.nodes().any(|n| t.rack_of(n) == RackId(r)));
        }
    }

    #[test]
    #[should_panic(expected = "racks must be in 1..=nodes")]
    fn more_racks_than_nodes_panics() {
        ClusterTopology::new(2, 1, 1).with_racks(3);
    }

    #[test]
    #[should_panic(expected = "racks must be in 1..=nodes")]
    fn zero_racks_panics() {
        ClusterTopology::new(2, 1, 1).with_racks(0);
    }
}
