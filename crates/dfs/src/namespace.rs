//! The DFS namespace: files, their blocks, and block locations.
//!
//! Blocks are the unit the MapReduce framework schedules over — each block is
//! one *input split*, processed by one map task. A block records its byte
//! length and record count (what the cost model and the Input Provider's
//! records-per-split estimate need), plus its replica locations (what the
//! scheduler's locality logic needs).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use incmr_simkit::rng::DetRng;

use crate::placement::PlacementPolicy;
use crate::topology::{ClusterTopology, NodeId};
use crate::DiskId;

/// A file in the namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// A block (= input split), globally unique across all files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// Size description of one block at file-creation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// Length in bytes (drives I/O cost).
    pub bytes: u64,
    /// Number of records contained (drives CPU cost and selectivity math).
    pub records: u64,
}

/// A stored block: its file, position within the file, size, and replicas.
#[derive(Debug, Clone)]
pub struct Block {
    /// Globally-unique id.
    pub id: BlockId,
    /// Owning file.
    pub file: FileId,
    /// Index of this block within its file.
    pub index: u32,
    /// Length in bytes.
    pub bytes: u64,
    /// Number of records.
    pub records: u64,
    /// Disks holding a replica. Never empty at creation; node deaths (via
    /// [`Namespace::drop_node_replicas`]) can drain it to empty — the block
    /// is then *lost* until re-replicated from nowhere (it cannot be), so
    /// readers must check [`Namespace::live_replicas`] first.
    pub locations: Vec<DiskId>,
    /// Replication factor this block was placed with — the target the
    /// re-replication daemon restores towards after replica loss.
    pub replication: u8,
    /// Content version: 0 at creation, bumped by every
    /// [`Namespace::mutate_blocks`] rewrite. The memoization plane keys
    /// cached map output on `(job signature, block, version)`, so a bump
    /// invalidates exactly this block's cache entries.
    pub version: u32,
}

/// A file: a name and an ordered list of blocks.
#[derive(Debug, Clone)]
pub struct DfsFile {
    /// Globally-unique id.
    pub id: FileId,
    /// Namespace path (unique).
    pub name: String,
    /// Blocks in file order.
    pub blocks: Vec<BlockId>,
}

/// Errors from namespace operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// A file with this name already exists.
    DuplicateName(String),
    /// Lookup of an unknown file name.
    NoSuchFile(String),
    /// Every replica of the block is on a dead node — the data is
    /// unavailable (and, unless a holder rejoins, lost).
    NoLiveReplica(BlockId),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::DuplicateName(n) => write!(f, "file already exists: {n}"),
            DfsError::NoSuchFile(n) => write!(f, "no such file: {n}"),
            DfsError::NoLiveReplica(b) => write!(f, "no live replica of {b}"),
        }
    }
}

impl std::error::Error for DfsError {}

/// The filesystem namespace plus the topology it is laid out on.
#[derive(Debug, Clone)]
pub struct Namespace {
    topology: ClusterTopology,
    files: Vec<DfsFile>,
    blocks: Vec<Block>,
    by_name: HashMap<String, FileId>,
}

impl Namespace {
    /// An empty namespace on the given topology.
    pub fn new(topology: ClusterTopology) -> Self {
        Namespace {
            topology,
            files: Vec::new(),
            blocks: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The topology this namespace is laid out on.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Create a file from block specs, placing each block with `policy`.
    pub fn create_file(
        &mut self,
        name: &str,
        specs: &[BlockSpec],
        policy: &mut dyn PlacementPolicy,
        rng: &mut DetRng,
    ) -> Result<FileId, DfsError> {
        if self.by_name.contains_key(name) {
            return Err(DfsError::DuplicateName(name.to_string()));
        }
        let file_id = FileId(self.files.len() as u32);
        let mut block_ids = Vec::with_capacity(specs.len());
        for (index, spec) in specs.iter().enumerate() {
            let locations = policy.place(index, &self.topology, rng);
            assert!(!locations.is_empty(), "placement returned no replicas");
            let id = BlockId(self.blocks.len() as u32);
            self.blocks.push(Block {
                id,
                file: file_id,
                index: index as u32,
                bytes: spec.bytes,
                records: spec.records,
                replication: locations.len() as u8,
                locations,
                version: 0,
            });
            block_ids.push(id);
        }
        self.files.push(DfsFile {
            id: file_id,
            name: name.to_string(),
            blocks: block_ids,
        });
        self.by_name.insert(name.to_string(), file_id);
        Ok(file_id)
    }

    /// Append new blocks to an existing file (the evolve API's "new data
    /// arrived" half). Each block is placed with `policy` at its file-local
    /// index, continuing where `create_file` left off, so an append under
    /// the same policy/rng state lays out exactly like a larger initial
    /// file. Appended blocks start at version 0.
    ///
    /// Returns the new block ids in file order.
    ///
    /// # Panics
    /// Panics on a `file` id not issued by this namespace.
    pub fn append_blocks(
        &mut self,
        file: FileId,
        specs: &[BlockSpec],
        policy: &mut dyn PlacementPolicy,
        rng: &mut DetRng,
    ) -> Vec<BlockId> {
        let base = self.files[file.0 as usize].blocks.len();
        let mut block_ids = Vec::with_capacity(specs.len());
        for (offset, spec) in specs.iter().enumerate() {
            let index = base + offset;
            let locations = policy.place(index, &self.topology, rng);
            assert!(!locations.is_empty(), "placement returned no replicas");
            let id = BlockId(self.blocks.len() as u32);
            self.blocks.push(Block {
                id,
                file,
                index: index as u32,
                bytes: spec.bytes,
                records: spec.records,
                replication: locations.len() as u8,
                locations,
                version: 0,
            });
            block_ids.push(id);
        }
        self.files[file.0 as usize]
            .blocks
            .extend_from_slice(&block_ids);
        block_ids
    }

    /// Rewrite existing blocks in place (the evolve API's "data changed"
    /// half): each block's version counter is bumped and the block is
    /// re-placed with `policy` at its file-local index — a rewrite lands
    /// wherever the placement policy's current state puts it, exactly as a
    /// real DFS rewrite allocates fresh extents. Sizes are unchanged.
    ///
    /// Returns the new version of each block, in argument order.
    ///
    /// # Panics
    /// Panics on a block id not issued by this namespace.
    pub fn mutate_blocks(
        &mut self,
        blocks: &[BlockId],
        policy: &mut dyn PlacementPolicy,
        rng: &mut DetRng,
    ) -> Vec<u32> {
        blocks
            .iter()
            .map(|&id| {
                let index = self.blocks[id.0 as usize].index as usize;
                let locations = policy.place(index, &self.topology, rng);
                assert!(!locations.is_empty(), "placement returned no replicas");
                let b = &mut self.blocks[id.0 as usize];
                b.version += 1;
                b.replication = locations.len() as u8;
                b.locations = locations;
                b.version
            })
            .collect()
    }

    /// A block's current content version (0 until first mutated).
    ///
    /// # Panics
    /// Panics on an id not issued by this namespace.
    pub fn version_of(&self, id: BlockId) -> u32 {
        self.blocks[id.0 as usize].version
    }

    /// Look up a file by name.
    pub fn file_by_name(&self, name: &str) -> Result<&DfsFile, DfsError> {
        self.by_name
            .get(name)
            .map(|id| &self.files[id.0 as usize])
            .ok_or_else(|| DfsError::NoSuchFile(name.to_string()))
    }

    /// A file's metadata.
    ///
    /// # Panics
    /// Panics on an id not issued by this namespace.
    pub fn file(&self, id: FileId) -> &DfsFile {
        &self.files[id.0 as usize]
    }

    /// A block's metadata.
    ///
    /// # Panics
    /// Panics on an id not issued by this namespace.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Block ids of a file, in file order.
    pub fn blocks_of(&self, file: FileId) -> &[BlockId] {
        &self.file(file).blocks
    }

    /// True if some replica of `block` lives on a disk of `node`.
    pub fn is_local(&self, block: BlockId, node: NodeId) -> bool {
        self.block(block)
            .locations
            .iter()
            .any(|&d| self.topology.node_of(d) == node)
    }

    /// A replica disk of `block` on `node`, if any (the disk a local map
    /// task would read from).
    pub fn local_replica(&self, block: BlockId, node: NodeId) -> Option<DiskId> {
        self.block(block)
            .locations
            .iter()
            .copied()
            .find(|&d| self.topology.node_of(d) == node)
    }

    /// The first *live* replica — the disk a remote read targets. With an
    /// empty `dead_nodes` set this is simply the first replica (with
    /// replication 1, the only copy).
    ///
    /// # Errors
    /// [`DfsError::NoLiveReplica`] when every holder of the block is dead.
    pub fn primary_replica(
        &self,
        block: BlockId,
        dead_nodes: &BTreeSet<NodeId>,
    ) -> Result<DiskId, DfsError> {
        self.block(block)
            .locations
            .iter()
            .copied()
            .find(|&d| !dead_nodes.contains(&self.topology.node_of(d)))
            .ok_or(DfsError::NoLiveReplica(block))
    }

    /// Replica disks of `block` on nodes *not* in `dead_nodes`, in
    /// placement order — the locations a scheduler or failover read may
    /// actually use. Empty when the block is unavailable.
    pub fn live_replicas(&self, block: BlockId, dead_nodes: &BTreeSet<NodeId>) -> Vec<DiskId> {
        self.block(block)
            .locations
            .iter()
            .copied()
            .filter(|&d| !dead_nodes.contains(&self.topology.node_of(d)))
            .collect()
    }

    /// Permanently remove every replica hosted on `node`'s disks — the
    /// data-loss half of a node death (the node's storage is gone; if it
    /// rejoins later it comes back empty). Returns the ids of blocks that
    /// lost a replica, in id order. Blocks whose `locations` drain to empty
    /// are *lost* until a holder is restored externally.
    pub fn drop_node_replicas(&mut self, node: NodeId) -> Vec<BlockId> {
        let mut affected = Vec::new();
        for b in &mut self.blocks {
            let before = b.locations.len();
            b.locations.retain(|&d| self.topology.node_of(d) != node);
            if b.locations.len() < before {
                affected.push(b.id);
            }
        }
        affected
    }

    /// Add a replica of `block` on `disk` (re-replication). No-op guard:
    /// panics if the disk already holds the block — the caller picks fresh
    /// holders.
    ///
    /// # Panics
    /// Panics on an id not issued by this namespace or a duplicate replica.
    pub fn add_replica(&mut self, block: BlockId, disk: DiskId) {
        assert!(
            disk.0 < self.topology.num_disks(),
            "disk {disk} out of range"
        );
        let b = &mut self.blocks[block.0 as usize];
        assert!(!b.locations.contains(&disk), "{disk} already holds {block}");
        b.locations.push(disk);
    }

    /// Blocks with fewer live replicas than their placement-time target,
    /// given the current dead set — the re-replication daemon's work queue,
    /// in block-id order.
    pub fn under_replicated(&self, dead_nodes: &BTreeSet<NodeId>) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|b| {
                let live = b
                    .locations
                    .iter()
                    .filter(|&&d| !dead_nodes.contains(&self.topology.node_of(d)))
                    .count();
                live < b.replication as usize
            })
            .map(|b| b.id)
            .collect()
    }

    /// Total number of blocks across all files.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of files.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Blocks stored per disk — the load-balance view used to validate the
    /// "evenly distributed across the disks" requirement.
    pub fn blocks_per_disk(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.topology.num_disks() as usize];
        for b in &self.blocks {
            for d in &b.locations {
                counts[d.0 as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::EvenRoundRobin;

    fn specs(n: usize) -> Vec<BlockSpec> {
        (0..n)
            .map(|i| BlockSpec {
                bytes: 1000 + i as u64,
                records: 10 + i as u64,
            })
            .collect()
    }

    fn ns_with_file(n_blocks: usize) -> (Namespace, FileId) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(1);
        let id = ns
            .create_file("t", &specs(n_blocks), &mut EvenRoundRobin::new(), &mut rng)
            .unwrap();
        (ns, id)
    }

    #[test]
    fn create_and_lookup() {
        let (ns, id) = ns_with_file(5);
        assert_eq!(ns.file_by_name("t").unwrap().id, id);
        assert_eq!(ns.blocks_of(id).len(), 5);
        assert_eq!(ns.num_blocks(), 5);
        let b = ns.block(ns.blocks_of(id)[3]);
        assert_eq!(b.bytes, 1003);
        assert_eq!(b.records, 13);
        assert_eq!(b.index, 3);
        assert_eq!(b.file, id);
    }

    #[test]
    fn duplicate_name_rejected() {
        let (mut ns, _) = ns_with_file(1);
        let mut rng = DetRng::seed_from(2);
        let err = ns
            .create_file("t", &specs(1), &mut EvenRoundRobin::new(), &mut rng)
            .unwrap_err();
        assert_eq!(err, DfsError::DuplicateName("t".into()));
    }

    #[test]
    fn missing_file_lookup_errors() {
        let (ns, _) = ns_with_file(1);
        assert!(matches!(
            ns.file_by_name("nope"),
            Err(DfsError::NoSuchFile(_))
        ));
    }

    #[test]
    fn locality_matches_placement() {
        let (ns, id) = ns_with_file(40);
        // Round-robin from disk 0: block i lives on disk i, node i/4.
        let blocks = ns.blocks_of(id).to_vec();
        assert!(ns.is_local(blocks[0], NodeId(0)));
        assert!(!ns.is_local(blocks[0], NodeId(1)));
        assert!(ns.is_local(blocks[7], NodeId(1)));
        assert_eq!(ns.local_replica(blocks[7], NodeId(1)), Some(DiskId(7)));
        assert_eq!(ns.local_replica(blocks[7], NodeId(2)), None);
        assert_eq!(
            ns.primary_replica(blocks[7], &BTreeSet::new()),
            Ok(DiskId(7))
        );
    }

    #[test]
    fn even_layout_balances_disks() {
        let (ns, _) = ns_with_file(80);
        assert!(ns.blocks_per_disk().iter().all(|&c| c == 2));
    }

    #[test]
    fn append_extends_file_and_continues_layout() {
        let (mut ns, id) = ns_with_file(3);
        let mut rng = DetRng::seed_from(9);
        let mut policy = EvenRoundRobin::new();
        // Advance the policy past the original 3 blocks so appends continue
        // the round-robin where creation left off.
        for i in 0..3 {
            policy.place(i, ns.topology(), &mut rng);
        }
        let new = ns.append_blocks(id, &specs(2), &mut policy, &mut rng);
        assert_eq!(new, vec![BlockId(3), BlockId(4)]);
        assert_eq!(ns.num_blocks(), 5);
        assert_eq!(ns.blocks_of(id).len(), 5);
        let b = ns.block(BlockId(3));
        assert_eq!(b.index, 3);
        assert_eq!(b.version, 0);
        assert_eq!(b.locations, vec![DiskId(3)]);
    }

    #[test]
    fn mutate_bumps_versions_monotonically() {
        let (mut ns, _) = ns_with_file(4);
        let mut rng = DetRng::seed_from(9);
        assert_eq!(ns.version_of(BlockId(2)), 0);
        let v1 = ns.mutate_blocks(&[BlockId(2)], &mut EvenRoundRobin::new(), &mut rng);
        assert_eq!(v1, vec![1]);
        let v2 = ns.mutate_blocks(
            &[BlockId(2), BlockId(0)],
            &mut EvenRoundRobin::new(),
            &mut rng,
        );
        assert_eq!(v2, vec![2, 1]);
        assert_eq!(ns.version_of(BlockId(2)), 2);
        assert_eq!(ns.version_of(BlockId(0)), 1);
        assert_eq!(ns.version_of(BlockId(1)), 0, "untouched blocks keep v0");
    }

    #[test]
    fn mutate_replaces_locations_but_keeps_sizes() {
        let (mut ns, _) = ns_with_file(4);
        let before = ns.block(BlockId(1)).clone();
        let mut rng = DetRng::seed_from(9);
        // A fresh round-robin places file index 1 on disk 1 again — use a
        // pinned policy to force a visible move.
        ns.mutate_blocks(
            &[BlockId(1)],
            &mut crate::placement::PinnedPlacement::new(DiskId(7)),
            &mut rng,
        );
        let after = ns.block(BlockId(1));
        assert_eq!(after.locations, vec![DiskId(7)]);
        assert_eq!(after.bytes, before.bytes);
        assert_eq!(after.records, before.records);
        assert_eq!(after.index, before.index);
    }

    #[test]
    fn primary_replica_fails_over_to_first_live_holder() {
        let topo = ClusterTopology::new(4, 2, 1).with_racks(2);
        let mut ns = Namespace::new(topo);
        let mut rng = DetRng::seed_from(1);
        let mut policy = crate::placement::ReplicatedPlacement::try_new(2, &topo).unwrap();
        ns.create_file("t", &specs(1), &mut policy, &mut rng)
            .unwrap();
        let b = BlockId(0);
        let locs = ns.block(b).locations.clone();
        assert_eq!(locs.len(), 2);
        let first_node = topo.node_of(locs[0]);
        let mut dead = BTreeSet::new();
        assert_eq!(ns.primary_replica(b, &dead), Ok(locs[0]));
        dead.insert(first_node);
        assert_eq!(ns.primary_replica(b, &dead), Ok(locs[1]));
        assert_eq!(ns.live_replicas(b, &dead), vec![locs[1]]);
        dead.insert(topo.node_of(locs[1]));
        assert_eq!(
            ns.primary_replica(b, &dead),
            Err(DfsError::NoLiveReplica(b))
        );
        assert!(ns.live_replicas(b, &dead).is_empty());
    }

    #[test]
    fn drop_node_replicas_strips_and_reports() {
        let topo = ClusterTopology::new(4, 2, 1).with_racks(2);
        let mut ns = Namespace::new(topo);
        let mut rng = DetRng::seed_from(1);
        let mut policy = crate::placement::ReplicatedPlacement::try_new(2, &topo).unwrap();
        ns.create_file("t", &specs(8), &mut policy, &mut rng)
            .unwrap();
        let held: Vec<BlockId> = (0..8)
            .map(BlockId)
            .filter(|&b| ns.is_local(b, NodeId(1)))
            .collect();
        assert!(!held.is_empty());
        let affected = ns.drop_node_replicas(NodeId(1));
        assert_eq!(affected, held);
        for b in affected {
            assert!(!ns.is_local(b, NodeId(1)));
            assert_eq!(ns.block(b).replication, 2, "target survives the loss");
            assert_eq!(ns.block(b).locations.len(), 1);
        }
        assert_eq!(
            ns.under_replicated(&BTreeSet::new()),
            held,
            "stripped blocks are below their placement-time target"
        );
        assert!(ns.drop_node_replicas(NodeId(1)).is_empty(), "idempotent");
    }

    #[test]
    fn add_replica_restores_target() {
        let topo = ClusterTopology::new(2, 1, 1);
        let mut ns = Namespace::new(topo);
        let mut rng = DetRng::seed_from(1);
        let mut policy = crate::placement::ReplicatedPlacement::try_new(2, &topo).unwrap();
        ns.create_file("t", &specs(1), &mut policy, &mut rng)
            .unwrap();
        ns.drop_node_replicas(NodeId(0));
        assert_eq!(ns.under_replicated(&BTreeSet::new()), vec![BlockId(0)]);
        ns.add_replica(BlockId(0), DiskId(0));
        assert!(ns.under_replicated(&BTreeSet::new()).is_empty());
        assert_eq!(ns.block(BlockId(0)).locations, vec![DiskId(1), DiskId(0)]);
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn duplicate_replica_panics() {
        let (mut ns, _) = ns_with_file(1);
        let d = ns.block(BlockId(0)).locations[0];
        ns.add_replica(BlockId(0), d);
    }

    #[test]
    fn dead_holders_count_as_under_replicated() {
        let (ns, _) = ns_with_file(4);
        // r = 1 round-robin: block i on disk i, node i/4 — killing node 0
        // makes blocks 0..4 under-replicated without mutating the namespace.
        let mut dead = BTreeSet::new();
        dead.insert(NodeId(0));
        assert_eq!(
            ns.under_replicated(&dead),
            vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)]
        );
    }

    #[test]
    fn multiple_files_get_distinct_blocks() {
        let (mut ns, a) = ns_with_file(3);
        let mut rng = DetRng::seed_from(3);
        let b = ns
            .create_file("u", &specs(2), &mut EvenRoundRobin::new(), &mut rng)
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(ns.num_files(), 2);
        assert_eq!(ns.num_blocks(), 5);
        let all: Vec<u32> = ns
            .blocks_of(a)
            .iter()
            .chain(ns.blocks_of(b))
            .map(|b| b.0)
            .collect();
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }
}
