//! First-class integration tests for the DFS crate: placement
//! determinism, topology/locality wiring, and the evolve API's version
//! and layout invariants (append/mutate edge cases).

use proptest::prelude::*;

use incmr_dfs::{
    BlockId, BlockSpec, ClusterTopology, DiskId, EvenRoundRobin, Namespace, NodeId,
    PinnedPlacement, RandomPlacement, ReplicatedPlacement,
};
use incmr_simkit::rng::DetRng;

fn specs(n: usize) -> Vec<BlockSpec> {
    (0..n)
        .map(|i| BlockSpec {
            bytes: 64_000_000,
            records: 20_000 + i as u64,
        })
        .collect()
}

fn paper_ns(n_blocks: usize) -> (Namespace, incmr_dfs::FileId) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(42);
    let id = ns
        .create_file("t", &specs(n_blocks), &mut EvenRoundRobin::new(), &mut rng)
        .unwrap();
    (ns, id)
}

// ---------------------------------------------------------------- placement

#[test]
fn placement_is_a_pure_function_of_policy_state_and_seed() {
    let layout = |seed: u64| {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(seed);
        let id = ns
            .create_file("t", &specs(40), &mut RandomPlacement::new(2), &mut rng)
            .unwrap();
        ns.blocks_of(id)
            .iter()
            .map(|&b| ns.block(b).locations.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(layout(7), layout(7), "same seed, same layout");
    assert_ne!(layout(7), layout(8), "different seed, different layout");
}

#[test]
fn append_after_create_equals_one_big_create() {
    // Creating 30 blocks then appending 10 under the same continuing policy
    // state lays out identically to creating 40 at once.
    let mut big = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(1);
    let big_id = big
        .create_file("t", &specs(40), &mut EvenRoundRobin::new(), &mut rng)
        .unwrap();

    let mut grown = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(1);
    let mut policy = EvenRoundRobin::new();
    let grown_id = grown
        .create_file("t", &specs(40)[..30], &mut policy, &mut rng)
        .unwrap();
    grown.append_blocks(grown_id, &specs(40)[30..], &mut policy, &mut rng);

    assert_eq!(grown.num_blocks(), big.num_blocks());
    for i in 0..40u32 {
        let a = big.block(BlockId(i));
        let b = grown.block(BlockId(i));
        assert_eq!(a.locations, b.locations, "block {i} placement");
        assert_eq!(a.records, b.records);
        assert_eq!(a.index, b.index);
        assert_eq!(b.version, 0);
    }
    let _ = big_id;
}

#[test]
fn locality_tracks_mutation_induced_moves() {
    let (mut ns, _) = paper_ns(4);
    // Block 0 starts on disk 0 (node 0).
    assert!(ns.is_local(BlockId(0), NodeId(0)));
    let mut rng = DetRng::seed_from(5);
    ns.mutate_blocks(
        &[BlockId(0)],
        &mut PinnedPlacement::new(DiskId(39)),
        &mut rng,
    );
    assert!(!ns.is_local(BlockId(0), NodeId(0)), "replica moved away");
    assert!(ns.is_local(BlockId(0), NodeId(9)), "now on the last node");
    assert_eq!(
        ns.primary_replica(BlockId(0), &std::collections::BTreeSet::new()),
        Ok(DiskId(39))
    );
    assert_eq!(ns.local_replica(BlockId(0), NodeId(9)), Some(DiskId(39)));
}

// ------------------------------------------------------------------ evolve

#[test]
fn append_to_empty_file_starts_at_index_zero() {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(3);
    let id = ns
        .create_file("empty", &[], &mut EvenRoundRobin::new(), &mut rng)
        .unwrap();
    assert_eq!(ns.blocks_of(id).len(), 0);
    let new = ns.append_blocks(id, &specs(2), &mut EvenRoundRobin::new(), &mut rng);
    assert_eq!(new, vec![BlockId(0), BlockId(1)]);
    assert_eq!(ns.block(BlockId(0)).index, 0);
    assert_eq!(ns.block(BlockId(1)).index, 1);
}

#[test]
fn append_of_nothing_is_a_no_op() {
    let (mut ns, id) = paper_ns(3);
    let mut rng = DetRng::seed_from(3);
    let new = ns.append_blocks(id, &[], &mut EvenRoundRobin::new(), &mut rng);
    assert!(new.is_empty());
    assert_eq!(ns.num_blocks(), 3);
}

#[test]
fn appends_interleave_across_files_with_global_block_ids() {
    let (mut ns, a) = paper_ns(2);
    let mut rng = DetRng::seed_from(3);
    let b = ns
        .create_file("u", &specs(2), &mut EvenRoundRobin::new(), &mut rng)
        .unwrap();
    let new_a = ns.append_blocks(a, &specs(1), &mut EvenRoundRobin::new(), &mut rng);
    let new_b = ns.append_blocks(b, &specs(1), &mut EvenRoundRobin::new(), &mut rng);
    assert_eq!(new_a, vec![BlockId(4)], "global ids keep growing densely");
    assert_eq!(new_b, vec![BlockId(5)]);
    assert_eq!(ns.block(BlockId(4)).index, 2, "file-local index continues");
    assert_eq!(ns.blocks_of(a), &[BlockId(0), BlockId(1), BlockId(4)]);
    assert_eq!(ns.blocks_of(b), &[BlockId(2), BlockId(3), BlockId(5)]);
}

#[test]
fn repeated_mutation_of_one_block_counts_every_rewrite() {
    let (mut ns, _) = paper_ns(1);
    let mut rng = DetRng::seed_from(3);
    for expect in 1..=5u32 {
        let v = ns.mutate_blocks(&[BlockId(0)], &mut EvenRoundRobin::new(), &mut rng);
        assert_eq!(v, vec![expect]);
    }
    assert_eq!(ns.version_of(BlockId(0)), 5);
}

#[test]
fn mutating_the_same_block_twice_in_one_call_bumps_twice() {
    let (mut ns, _) = paper_ns(2);
    let mut rng = DetRng::seed_from(3);
    let v = ns.mutate_blocks(
        &[BlockId(1), BlockId(1)],
        &mut EvenRoundRobin::new(),
        &mut rng,
    );
    assert_eq!(v, vec![1, 2]);
}

proptest! {
    /// Version counters over an arbitrary mutate schedule equal a simple
    /// recount of how often each block appeared, and never decrease.
    #[test]
    fn versions_are_monotone_mutation_counts(
        schedule in prop::collection::vec(prop::collection::vec(0u32..8, 0..4), 0..12)
    ) {
        let (mut ns, _) = paper_ns(8);
        let mut rng = DetRng::seed_from(11);
        let mut expected = [0u32; 8];
        for batch in &schedule {
            let ids: Vec<BlockId> = batch.iter().map(|&i| BlockId(i)).collect();
            let before: Vec<u32> = ids.iter().map(|&b| ns.version_of(b)).collect();
            let after = ns.mutate_blocks(&ids, &mut EvenRoundRobin::new(), &mut rng);
            for (b, a) in before.iter().zip(&after) {
                prop_assert!(a > b, "version must strictly increase per rewrite");
            }
            for &i in batch {
                expected[i as usize] += 1;
            }
        }
        for i in 0..8u32 {
            prop_assert_eq!(ns.version_of(BlockId(i)), expected[i as usize]);
        }
    }

    /// Replicated placement holds all four invariants across arbitrary
    /// shapes: exactly r replicas, no node holds two, rack-spread whenever
    /// the topology has >= 2 racks, and a layout independent of the RNG
    /// seed.
    #[test]
    fn replicated_placement_invariants(
        nodes in 2u16..12,
        disks_per_node in 1u8..4,
        racks in 1u16..5,
        r in 1u8..5,
        n_blocks in 1usize..60,
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
    ) {
        let racks = racks.min(nodes);
        let r = r.min(nodes as u8);
        let topo = ClusterTopology::new(nodes, disks_per_node, 1).with_racks(racks);
        let layout = |seed: u64| {
            let mut policy = ReplicatedPlacement::try_new(r, &topo).unwrap();
            let mut rng = DetRng::seed_from(seed);
            (0..n_blocks)
                .map(|i| {
                    use incmr_dfs::PlacementPolicy;
                    policy.place(i, &topo, &mut rng)
                })
                .collect::<Vec<Vec<DiskId>>>()
        };
        let a = layout(seed_a);
        prop_assert_eq!(&a, &layout(seed_b), "layout must not depend on seed");
        for locs in &a {
            prop_assert_eq!(locs.len(), r as usize, "exactly r replicas");
            let mut holders: Vec<NodeId> = locs.iter().map(|&d| topo.node_of(d)).collect();
            holders.sort();
            holders.dedup();
            prop_assert_eq!(holders.len(), r as usize, "no node holds two replicas");
            if racks >= 2 && r >= 2 {
                let mut rs: Vec<_> = holders.iter().map(|&n| topo.rack_of(n)).collect();
                rs.sort();
                rs.dedup();
                prop_assert!(rs.len() >= 2, "replicas must span racks");
            }
        }
    }

    /// Appends never disturb existing blocks' metadata or versions.
    #[test]
    fn append_preserves_existing_blocks(extra in 1usize..20) {
        let (mut ns, id) = paper_ns(6);
        let before: Vec<_> = (0..6u32)
            .map(|i| {
                let b = ns.block(BlockId(i));
                (b.locations.clone(), b.records, b.version)
            })
            .collect();
        let mut rng = DetRng::seed_from(13);
        ns.append_blocks(id, &specs(extra), &mut EvenRoundRobin::new(), &mut rng);
        prop_assert_eq!(ns.num_blocks(), 6 + extra);
        for i in 0..6u32 {
            let b = ns.block(BlockId(i));
            prop_assert_eq!(&b.locations, &before[i as usize].0);
            prop_assert_eq!(b.records, before[i as usize].1);
            prop_assert_eq!(b.version, before[i as usize].2);
        }
    }
}
