//! Property tests pinning the columnar path to the row path.
//!
//! Two families of invariants:
//!
//! 1. **Predicate equivalence** — for arbitrary batches (including NaN
//!    floats and type-mismatched literals) and arbitrary predicate trees,
//!    `Predicate::eval_batch` selects exactly the rows the scalar
//!    `Predicate::eval` accepts.
//! 2. **Generation equivalence** — for arbitrary split specs,
//!    `SplitGenerator::full_batch` / `planted_batch` materialise
//!    byte-for-byte the records `full_iter` / `planted_matches` produce,
//!    i.e. the columnar generator consumes the RNG streams identically.

use proptest::prelude::*;

use incmr_data::batch::RecordBatch;
use incmr_data::generator::{RecordFactory, SplitGenerator, SplitSpec};
use incmr_data::lineitem::{col, LineItemFactory};
use incmr_data::predicate::{CmpOp, Predicate};
use incmr_data::schema::{ColumnType, Schema};
use incmr_data::value::{Record, Value};

/// Test schema: one column of each type.
fn schema() -> Schema {
    Schema::new(vec![
        ("q", ColumnType::Int),
        ("p", ColumnType::Float),
        ("m", ColumnType::Str),
        ("d", ColumnType::Date),
    ])
}

const MODES: [&str; 4] = ["AIR", "SHIP", "RAIL", ""];

/// One row of the test schema. Floats include NaN and infinities.
fn arb_row() -> impl Strategy<Value = (i64, f64, usize, u32)> {
    (
        -5i64..5,
        prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(-0.0f64),
            -2.0f64..2.0,
        ],
        0usize..MODES.len(),
        0u32..8,
    )
}

fn to_batch(rows: &[(i64, f64, usize, u32)]) -> (RecordBatch, Vec<Record>) {
    let records: Vec<Record> = rows
        .iter()
        .map(|&(q, p, m, d)| {
            Record::new(vec![
                Value::Int(q),
                Value::Float(p),
                Value::Str(MODES[m].to_string()),
                Value::Date(d),
            ])
        })
        .collect();
    (RecordBatch::from_records(&schema(), &records), records)
}

/// Literals of every type, deliberately including values that mismatch
/// whichever column they get compared against.
fn arb_literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-5i64..5).prop_map(Value::Int),
        prop_oneof![Just(f64::NAN), -2.0f64..2.0].prop_map(Value::Float),
        (0usize..MODES.len()).prop_map(|i| Value::Str(MODES[i].to_string())),
        (0u32..8).prop_map(Value::Date),
    ]
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Arbitrary predicate trees over the test schema, up to depth 3.
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        (0usize..4, arb_op(), arb_literal()).prop_map(|(column, op, literal)| {
            Predicate::Compare {
                column,
                op,
                literal,
            }
        }),
        (0usize..4, arb_literal(), arb_literal())
            .prop_map(|(column, low, high)| { Predicate::Between { column, low, high } }),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Predicate::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Predicate::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Predicate::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Vectorised evaluation selects exactly the rows scalar evaluation
    /// accepts, for arbitrary batches and predicate trees.
    #[test]
    fn eval_batch_equals_per_record_eval(
        rows in proptest::collection::vec(arb_row(), 0..80),
        pred in arb_predicate(),
    ) {
        let (batch, records) = to_batch(&rows);
        let expect: Vec<u32> = records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| pred.eval(r).then_some(i as u32))
            .collect();
        prop_assert_eq!(pred.eval_batch(&batch), expect.clone());
        prop_assert_eq!(pred.eval_batch_scalar(&batch), expect);
    }

    /// Batch materialisation round-trips rows byte-for-byte.
    #[test]
    fn batch_roundtrips_records(rows in proptest::collection::vec(arb_row(), 0..60)) {
        let (batch, records) = to_batch(&rows);
        // NaN != NaN under Value's PartialEq, so compare via bit patterns.
        let bits = |rs: &[Record]| -> Vec<Vec<u64>> {
            rs.iter()
                .map(|r| {
                    r.values()
                        .iter()
                        .map(|v| match v {
                            Value::Int(i) => *i as u64,
                            Value::Float(f) => f.to_bits(),
                            Value::Date(d) => *d as u64,
                            Value::Str(s) => s.len() as u64 ^ 0xdead_0000,
                        })
                        .collect()
                })
                .collect()
        };
        prop_assert_eq!(bits(&batch.to_records()), bits(&records));
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(batch.row_width(i, &[]), r.width());
        }
    }

    /// Columnar split generation consumes the RNG streams exactly as the
    /// row path does: full scans agree byte-for-byte...
    #[test]
    fn full_batch_equals_full_iter(
        records in 1u64..600,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
        sentinel in 0usize..3,
    ) {
        let factory = sentinel_factory(sentinel);
        let matching = (records as f64 * frac) as u64;
        let g = SplitGenerator::new(&factory, SplitSpec::new(records, matching, seed));
        let rows: Vec<Record> = g.full_iter().collect();
        prop_assert_eq!(g.full_batch().to_records(), rows);
    }

    /// ...and so do planted scans, with `eval_batch` recovering exactly
    /// the planted positions from the full batch.
    #[test]
    fn planted_batch_and_selection_agree(
        records in 1u64..600,
        frac in 0.0f64..1.0,
        seed in any::<u64>(),
        sentinel in 0usize..3,
    ) {
        let factory = sentinel_factory(sentinel);
        let matching = (records as f64 * frac) as u64;
        let g = SplitGenerator::new(&factory, SplitSpec::new(records, matching, seed));
        prop_assert_eq!(g.planted_batch().to_records(), g.planted_matches());
        let sel = factory.predicate().eval_batch(&g.full_batch());
        let expect: Vec<u32> = g.matching_positions().iter().map(|&p| p as u32).collect();
        prop_assert_eq!(sel, expect);
    }
}

fn sentinel_factory(which: usize) -> LineItemFactory {
    match which {
        0 => LineItemFactory::new(col::QUANTITY, Value::Int(200)),
        1 => LineItemFactory::new(col::DISCOUNT, Value::Float(0.99)),
        _ => LineItemFactory::new(col::SHIPMODE, Value::Str("WARP".into())),
    }
}
