//! The TPC-H `LINEITEM` table: schema, natural column generators, and the
//! record factory used to *plant* predicate-matching records.
//!
//! The paper derives its evaluation dataset from LINEITEM and then rewrites
//! records so that, for each experiment predicate, exactly the planted
//! records match and everything else is guaranteed not to (Section V-B:
//! "we then modified the other records in each partition accordingly to
//! ensure that the remaining records contained random values not satisfying
//! the predicate"). [`LineItemFactory`] implements that construction: the
//! natural generators draw from the TPC-H value domains, and matching
//! records override one *sentinel column* with a value outside its natural
//! domain.

use incmr_simkit::rng::DetRng;
use rand::Rng;

use crate::batch::BatchBuilder;
use crate::generator::RecordFactory;
use crate::predicate::Predicate;
use crate::schema::{ColumnType, Schema};
use crate::value::{Record, Value};

/// Column indices within the LINEITEM schema, by name.
pub mod col {
    /// `L_ORDERKEY`
    pub const ORDERKEY: usize = 0;
    /// `L_PARTKEY`
    pub const PARTKEY: usize = 1;
    /// `L_SUPPKEY`
    pub const SUPPKEY: usize = 2;
    /// `L_LINENUMBER`
    pub const LINENUMBER: usize = 3;
    /// `L_QUANTITY`
    pub const QUANTITY: usize = 4;
    /// `L_EXTENDEDPRICE`
    pub const EXTENDEDPRICE: usize = 5;
    /// `L_DISCOUNT`
    pub const DISCOUNT: usize = 6;
    /// `L_TAX`
    pub const TAX: usize = 7;
    /// `L_RETURNFLAG`
    pub const RETURNFLAG: usize = 8;
    /// `L_LINESTATUS`
    pub const LINESTATUS: usize = 9;
    /// `L_SHIPDATE`
    pub const SHIPDATE: usize = 10;
    /// `L_SHIPMODE`
    pub const SHIPMODE: usize = 11;
}

/// The LINEITEM schema (a 12-column subset of TPC-H's 16; the dropped
/// columns are free-text comments that no paper experiment touches — their
/// bytes are accounted for in [`crate::dataset::ROW_BYTES`]).
pub fn schema() -> Schema {
    Schema::new(vec![
        ("L_ORDERKEY", ColumnType::Int),
        ("L_PARTKEY", ColumnType::Int),
        ("L_SUPPKEY", ColumnType::Int),
        ("L_LINENUMBER", ColumnType::Int),
        ("L_QUANTITY", ColumnType::Int),
        ("L_EXTENDEDPRICE", ColumnType::Float),
        ("L_DISCOUNT", ColumnType::Float),
        ("L_TAX", ColumnType::Float),
        ("L_RETURNFLAG", ColumnType::Str),
        ("L_LINESTATUS", ColumnType::Str),
        ("L_SHIPDATE", ColumnType::Date),
        ("L_SHIPMODE", ColumnType::Str),
    ])
}

const RETURN_FLAGS: [&str; 3] = ["R", "A", "N"];
const LINE_STATUS: [&str; 2] = ["O", "F"];
const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// One natural LINEITEM row before materialisation — the single source of
/// truth both the row and the columnar generation paths build from, so
/// their RNG streams are identical by construction.
struct NaturalRow<'a> {
    orderkey: i64,
    partkey: i64,
    suppkey: i64,
    linenumber: i64,
    quantity: i64,
    extendedprice: f64,
    discount: f64,
    tax: f64,
    returnflag: &'a str,
    linestatus: &'a str,
    shipdate: u32,
    shipmode: &'a str,
}

/// Natural value domains: quantity 1–50, discount 0.00–0.10, tax 0.00–0.08,
/// dates within 7 years of the epoch (all per the TPC-H spec).
///
/// The RNG draw order (quantity, unit price, then the fields in struct
/// order) is load-bearing: committed golden traces and planted splits
/// depend on it byte-for-byte.
fn draw_natural(rng: &mut DetRng) -> NaturalRow<'static> {
    let quantity = rng.gen_range(1..=50i64);
    let price_per_unit = rng.gen_range(900.0..=105_000.0f64) / 100.0;
    NaturalRow {
        orderkey: rng.gen_range(1..=6_000_000),
        partkey: rng.gen_range(1..=200_000),
        suppkey: rng.gen_range(1..=10_000),
        linenumber: rng.gen_range(1..=7),
        quantity,
        extendedprice: (quantity as f64 * price_per_unit * 100.0).round() / 100.0,
        discount: rng.gen_range(0..=10i64) as f64 / 100.0,
        tax: rng.gen_range(0..=8i64) as f64 / 100.0,
        returnflag: RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())],
        linestatus: LINE_STATUS[rng.gen_range(0..LINE_STATUS.len())],
        shipdate: rng.gen_range(0..2557),
        shipmode: SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())],
    }
}

impl NaturalRow<'_> {
    fn into_record(self) -> Record {
        Record::new(vec![
            Value::Int(self.orderkey),
            Value::Int(self.partkey),
            Value::Int(self.suppkey),
            Value::Int(self.linenumber),
            Value::Int(self.quantity),
            Value::Float(self.extendedprice),
            Value::Float(self.discount),
            Value::Float(self.tax),
            Value::Str(self.returnflag.to_string()),
            Value::Str(self.linestatus.to_string()),
            Value::Date(self.shipdate),
            Value::Str(self.shipmode.to_string()),
        ])
    }

    /// Append as one columnar row: typed pushes plus dictionary codes for
    /// the three string columns — no per-row heap allocation at all.
    fn append(&self, out: &mut BatchBuilder) {
        out.push_int(col::ORDERKEY, self.orderkey);
        out.push_int(col::PARTKEY, self.partkey);
        out.push_int(col::SUPPKEY, self.suppkey);
        out.push_int(col::LINENUMBER, self.linenumber);
        out.push_int(col::QUANTITY, self.quantity);
        out.push_float(col::EXTENDEDPRICE, self.extendedprice);
        out.push_float(col::DISCOUNT, self.discount);
        out.push_float(col::TAX, self.tax);
        out.push_str(col::RETURNFLAG, self.returnflag);
        out.push_str(col::LINESTATUS, self.linestatus);
        out.push_date(col::SHIPDATE, self.shipdate);
        out.push_str(col::SHIPMODE, self.shipmode);
        out.finish_row();
    }
}

fn natural_record(rng: &mut DetRng) -> Record {
    draw_natural(rng).into_record()
}

/// A record factory that plants matches by overriding one sentinel column
/// with an out-of-domain value.
#[derive(Debug, Clone)]
pub struct LineItemFactory {
    sentinel_column: usize,
    sentinel_value: Value,
}

impl LineItemFactory {
    /// Factory whose matching records carry `value` in `column`.
    ///
    /// # Panics
    /// Panics if `value` lies inside the column's natural domain (that
    /// would break the planted/natural separation) or the column is
    /// unknown.
    pub fn new(column: usize, value: Value) -> Self {
        let s = schema();
        assert!(column < s.arity(), "sentinel column out of range");
        let ok = match (column, &value) {
            (col::QUANTITY, Value::Int(v)) => !(1..=50).contains(v),
            (col::DISCOUNT, Value::Float(v)) => !(0.0..=0.10).contains(v),
            (col::TAX, Value::Float(v)) => !(0.0..=0.08).contains(v),
            (col::SHIPMODE, Value::Str(v)) => !SHIP_MODES.contains(&v.as_str()),
            _ => panic!("unsupported sentinel column {column}"),
        };
        assert!(ok, "sentinel value {value} is inside the natural domain");
        LineItemFactory {
            sentinel_column: column,
            sentinel_value: value,
        }
    }

    /// The sentinel column index.
    pub fn sentinel_column(&self) -> usize {
        self.sentinel_column
    }
}

impl RecordFactory for LineItemFactory {
    fn schema(&self) -> Schema {
        schema()
    }

    fn predicate(&self) -> Predicate {
        Predicate::eq(self.sentinel_column, self.sentinel_value.clone())
    }

    fn matching(&self, rng: &mut DetRng) -> Record {
        let mut values = natural_record(rng).values().to_vec();
        values[self.sentinel_column] = self.sentinel_value.clone();
        Record::new(values)
    }

    fn filler(&self, rng: &mut DetRng) -> Record {
        natural_record(rng)
    }

    fn append_matching(&self, rng: &mut DetRng, out: &mut BatchBuilder) {
        let mut row = draw_natural(rng);
        // Same construction as `matching`: draw the full natural row (so
        // the RNG stream is byte-identical to the row path, and
        // extendedprice keeps the *natural* quantity), then override the
        // sentinel column in place.
        match (self.sentinel_column, &self.sentinel_value) {
            (col::QUANTITY, Value::Int(v)) => row.quantity = *v,
            (col::DISCOUNT, Value::Float(v)) => row.discount = *v,
            (col::TAX, Value::Float(v)) => row.tax = *v,
            (col::SHIPMODE, Value::Str(v)) => row.shipmode = v.as_str(),
            _ => unreachable!("sentinel validated in LineItemFactory::new"),
        }
        row.append(out);
    }

    fn append_filler(&self, rng: &mut DetRng, out: &mut BatchBuilder) {
        draw_natural(rng).append(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_twelve_named_columns() {
        let s = schema();
        assert_eq!(s.arity(), 12);
        assert_eq!(s.index_of("l_quantity"), Some(col::QUANTITY));
        assert_eq!(s.index_of("L_SHIPMODE"), Some(col::SHIPMODE));
    }

    #[test]
    fn matching_records_satisfy_predicate_fillers_do_not() {
        let f = LineItemFactory::new(col::QUANTITY, Value::Int(200));
        let p = f.predicate();
        let mut rng = DetRng::seed_from(1);
        for _ in 0..500 {
            assert!(p.eval(&f.matching(&mut rng)));
            assert!(!p.eval(&f.filler(&mut rng)));
        }
    }

    #[test]
    fn float_sentinels_work_exactly() {
        let f = LineItemFactory::new(col::DISCOUNT, Value::Float(0.99));
        let p = f.predicate();
        let mut rng = DetRng::seed_from(2);
        for _ in 0..500 {
            assert!(p.eval(&f.matching(&mut rng)));
            assert!(!p.eval(&f.filler(&mut rng)));
        }
    }

    #[test]
    fn natural_values_stay_in_domain() {
        let f = LineItemFactory::new(col::TAX, Value::Float(0.77));
        let mut rng = DetRng::seed_from(3);
        for _ in 0..200 {
            let r = f.filler(&mut rng);
            let Value::Int(q) = *r.get(col::QUANTITY) else {
                panic!()
            };
            assert!((1..=50).contains(&q));
            let Value::Float(d) = *r.get(col::DISCOUNT) else {
                panic!()
            };
            assert!((0.0..=0.10).contains(&d));
            let Value::Float(t) = *r.get(col::TAX) else {
                panic!()
            };
            assert!((0.0..=0.08).contains(&t));
        }
    }

    #[test]
    fn records_match_schema_types() {
        let s = schema();
        let f = LineItemFactory::new(col::QUANTITY, Value::Int(200));
        let mut rng = DetRng::seed_from(4);
        for r in [f.matching(&mut rng), f.filler(&mut rng)] {
            assert_eq!(r.arity(), s.arity());
            for (i, v) in r.values().iter().enumerate() {
                assert!(s.field(i).ty.admits(v), "column {i} got {}", v.type_name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "inside the natural domain")]
    fn in_domain_sentinel_panics() {
        let _ = LineItemFactory::new(col::QUANTITY, Value::Int(25));
    }
}
