//! The TPC-H `LINEITEM` table: schema, natural column generators, and the
//! record factory used to *plant* predicate-matching records.
//!
//! The paper derives its evaluation dataset from LINEITEM and then rewrites
//! records so that, for each experiment predicate, exactly the planted
//! records match and everything else is guaranteed not to (Section V-B:
//! "we then modified the other records in each partition accordingly to
//! ensure that the remaining records contained random values not satisfying
//! the predicate"). [`LineItemFactory`] implements that construction: the
//! natural generators draw from the TPC-H value domains, and matching
//! records override one *sentinel column* with a value outside its natural
//! domain.

use incmr_simkit::rng::DetRng;
use rand::Rng;

use crate::generator::RecordFactory;
use crate::predicate::Predicate;
use crate::schema::{ColumnType, Schema};
use crate::value::{Record, Value};

/// Column indices within the LINEITEM schema, by name.
pub mod col {
    /// `L_ORDERKEY`
    pub const ORDERKEY: usize = 0;
    /// `L_PARTKEY`
    pub const PARTKEY: usize = 1;
    /// `L_SUPPKEY`
    pub const SUPPKEY: usize = 2;
    /// `L_LINENUMBER`
    pub const LINENUMBER: usize = 3;
    /// `L_QUANTITY`
    pub const QUANTITY: usize = 4;
    /// `L_EXTENDEDPRICE`
    pub const EXTENDEDPRICE: usize = 5;
    /// `L_DISCOUNT`
    pub const DISCOUNT: usize = 6;
    /// `L_TAX`
    pub const TAX: usize = 7;
    /// `L_RETURNFLAG`
    pub const RETURNFLAG: usize = 8;
    /// `L_LINESTATUS`
    pub const LINESTATUS: usize = 9;
    /// `L_SHIPDATE`
    pub const SHIPDATE: usize = 10;
    /// `L_SHIPMODE`
    pub const SHIPMODE: usize = 11;
}

/// The LINEITEM schema (a 12-column subset of TPC-H's 16; the dropped
/// columns are free-text comments that no paper experiment touches — their
/// bytes are accounted for in [`crate::dataset::ROW_BYTES`]).
pub fn schema() -> Schema {
    Schema::new(vec![
        ("L_ORDERKEY", ColumnType::Int),
        ("L_PARTKEY", ColumnType::Int),
        ("L_SUPPKEY", ColumnType::Int),
        ("L_LINENUMBER", ColumnType::Int),
        ("L_QUANTITY", ColumnType::Int),
        ("L_EXTENDEDPRICE", ColumnType::Float),
        ("L_DISCOUNT", ColumnType::Float),
        ("L_TAX", ColumnType::Float),
        ("L_RETURNFLAG", ColumnType::Str),
        ("L_LINESTATUS", ColumnType::Str),
        ("L_SHIPDATE", ColumnType::Date),
        ("L_SHIPMODE", ColumnType::Str),
    ])
}

const RETURN_FLAGS: [&str; 3] = ["R", "A", "N"];
const LINE_STATUS: [&str; 2] = ["O", "F"];
const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Natural value domains: quantity 1–50, discount 0.00–0.10, tax 0.00–0.08,
/// dates within 7 years of the epoch (all per the TPC-H spec).
fn natural_record(rng: &mut DetRng) -> Record {
    let quantity = rng.gen_range(1..=50i64);
    let price_per_unit = rng.gen_range(900.0..=105_000.0f64) / 100.0;
    Record::new(vec![
        Value::Int(rng.gen_range(1..=6_000_000)),
        Value::Int(rng.gen_range(1..=200_000)),
        Value::Int(rng.gen_range(1..=10_000)),
        Value::Int(rng.gen_range(1..=7)),
        Value::Int(quantity),
        Value::Float((quantity as f64 * price_per_unit * 100.0).round() / 100.0),
        Value::Float(rng.gen_range(0..=10i64) as f64 / 100.0),
        Value::Float(rng.gen_range(0..=8i64) as f64 / 100.0),
        Value::Str(RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())].to_string()),
        Value::Str(LINE_STATUS[rng.gen_range(0..LINE_STATUS.len())].to_string()),
        Value::Date(rng.gen_range(0..2557)),
        Value::Str(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].to_string()),
    ])
}

/// A record factory that plants matches by overriding one sentinel column
/// with an out-of-domain value.
#[derive(Debug, Clone)]
pub struct LineItemFactory {
    sentinel_column: usize,
    sentinel_value: Value,
}

impl LineItemFactory {
    /// Factory whose matching records carry `value` in `column`.
    ///
    /// # Panics
    /// Panics if `value` lies inside the column's natural domain (that
    /// would break the planted/natural separation) or the column is
    /// unknown.
    pub fn new(column: usize, value: Value) -> Self {
        let s = schema();
        assert!(column < s.arity(), "sentinel column out of range");
        let ok = match (column, &value) {
            (col::QUANTITY, Value::Int(v)) => !(1..=50).contains(v),
            (col::DISCOUNT, Value::Float(v)) => !(0.0..=0.10).contains(v),
            (col::TAX, Value::Float(v)) => !(0.0..=0.08).contains(v),
            (col::SHIPMODE, Value::Str(v)) => !SHIP_MODES.contains(&v.as_str()),
            _ => panic!("unsupported sentinel column {column}"),
        };
        assert!(ok, "sentinel value {value} is inside the natural domain");
        LineItemFactory {
            sentinel_column: column,
            sentinel_value: value,
        }
    }

    /// The sentinel column index.
    pub fn sentinel_column(&self) -> usize {
        self.sentinel_column
    }
}

impl RecordFactory for LineItemFactory {
    fn schema(&self) -> Schema {
        schema()
    }

    fn predicate(&self) -> Predicate {
        Predicate::eq(self.sentinel_column, self.sentinel_value.clone())
    }

    fn matching(&self, rng: &mut DetRng) -> Record {
        let mut values = natural_record(rng).values().to_vec();
        values[self.sentinel_column] = self.sentinel_value.clone();
        Record::new(values)
    }

    fn filler(&self, rng: &mut DetRng) -> Record {
        natural_record(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_twelve_named_columns() {
        let s = schema();
        assert_eq!(s.arity(), 12);
        assert_eq!(s.index_of("l_quantity"), Some(col::QUANTITY));
        assert_eq!(s.index_of("L_SHIPMODE"), Some(col::SHIPMODE));
    }

    #[test]
    fn matching_records_satisfy_predicate_fillers_do_not() {
        let f = LineItemFactory::new(col::QUANTITY, Value::Int(200));
        let p = f.predicate();
        let mut rng = DetRng::seed_from(1);
        for _ in 0..500 {
            assert!(p.eval(&f.matching(&mut rng)));
            assert!(!p.eval(&f.filler(&mut rng)));
        }
    }

    #[test]
    fn float_sentinels_work_exactly() {
        let f = LineItemFactory::new(col::DISCOUNT, Value::Float(0.99));
        let p = f.predicate();
        let mut rng = DetRng::seed_from(2);
        for _ in 0..500 {
            assert!(p.eval(&f.matching(&mut rng)));
            assert!(!p.eval(&f.filler(&mut rng)));
        }
    }

    #[test]
    fn natural_values_stay_in_domain() {
        let f = LineItemFactory::new(col::TAX, Value::Float(0.77));
        let mut rng = DetRng::seed_from(3);
        for _ in 0..200 {
            let r = f.filler(&mut rng);
            let Value::Int(q) = *r.get(col::QUANTITY) else {
                panic!()
            };
            assert!((1..=50).contains(&q));
            let Value::Float(d) = *r.get(col::DISCOUNT) else {
                panic!()
            };
            assert!((0.0..=0.10).contains(&d));
            let Value::Float(t) = *r.get(col::TAX) else {
                panic!()
            };
            assert!((0.0..=0.08).contains(&t));
        }
    }

    #[test]
    fn records_match_schema_types() {
        let s = schema();
        let f = LineItemFactory::new(col::QUANTITY, Value::Int(200));
        let mut rng = DetRng::seed_from(4);
        for r in [f.matching(&mut rng), f.filler(&mut rng)] {
            assert_eq!(r.arity(), s.arity());
            for (i, v) in r.values().iter().enumerate() {
                assert!(s.field(i).ty.admits(v), "column {i} got {}", v.type_name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "inside the natural domain")]
    fn in_domain_sentinel_panics() {
        let _ = LineItemFactory::new(col::QUANTITY, Value::Int(25));
    }
}
