//! Deterministic per-split record streams.
//!
//! Each input split's contents are a pure function of `(seed, records,
//! matching)` and a [`RecordFactory`]. Matching records are planted at
//! seeded random positions; every other position holds a filler record that
//! is guaranteed not to satisfy the factory's predicate.
//!
//! Two access paths exist:
//!
//! * **Full scan** ([`SplitGenerator::full_iter`]) materialises every record
//!   in position order — this is what unit tests, property tests, and small
//!   examples run the real predicate over.
//! * **Planted scan** ([`SplitGenerator::planted_matches`]) materialises
//!   only the matching records (same contents, same order as the full scan's
//!   matches) — this is what large simulated map tasks use, so simulating a
//!   600M-row dataset never generates 600M rows.
//!
//! The two paths share RNG streams by construction (separate forks for
//! positions, matching contents, and filler contents), so *planted ≡
//! filter(full)* exactly; `tests/` pins that with a property test.

use std::collections::HashSet;

use incmr_simkit::rng::DetRng;
use rand::Rng;

use crate::batch::{BatchBuilder, RecordBatch};
use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::value::Record;

/// Produces the records of a dataset: planted matches and natural fillers.
pub trait RecordFactory {
    /// The schema all produced records conform to.
    fn schema(&self) -> Schema;
    /// The predicate that exactly the matching records satisfy.
    fn predicate(&self) -> Predicate;
    /// Generate one predicate-matching record.
    fn matching(&self, rng: &mut DetRng) -> Record;
    /// Generate one record guaranteed not to match.
    fn filler(&self, rng: &mut DetRng) -> Record;

    /// Append one matching record to a columnar builder. Must consume the
    /// RNG exactly as [`RecordFactory::matching`] does and append the same
    /// values; factories override it to skip the `Record` materialisation.
    fn append_matching(&self, rng: &mut DetRng, out: &mut BatchBuilder) {
        out.push_record(&self.matching(rng));
    }

    /// Append one filler record to a columnar builder (same contract as
    /// [`RecordFactory::append_matching`], against `filler`).
    fn append_filler(&self, rng: &mut DetRng, out: &mut BatchBuilder) {
        out.push_record(&self.filler(rng));
    }
}

/// Size and seed of one split's contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSpec {
    /// Total records in the split.
    pub records: u64,
    /// How many of them match the predicate.
    pub matching: u64,
    /// Seed for this split's streams.
    pub seed: u64,
}

impl SplitSpec {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics if `matching > records`.
    pub fn new(records: u64, matching: u64, seed: u64) -> Self {
        assert!(
            matching <= records,
            "cannot plant {matching} matches into {records} records"
        );
        SplitSpec {
            records,
            matching,
            seed,
        }
    }
}

/// Generator for one split's record stream.
pub struct SplitGenerator<'f, F: RecordFactory> {
    factory: &'f F,
    spec: SplitSpec,
}

impl<'f, F: RecordFactory> SplitGenerator<'f, F> {
    /// Bind a factory to a split spec.
    pub fn new(factory: &'f F, spec: SplitSpec) -> Self {
        SplitGenerator { factory, spec }
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> SplitSpec {
        self.spec
    }

    fn root(&self) -> DetRng {
        DetRng::seed_from(self.spec.seed)
    }

    /// The positions (ascending) at which matching records sit, chosen by
    /// Floyd's algorithm — `O(matching)` regardless of split size.
    pub fn matching_positions(&self) -> Vec<u64> {
        let mut rng = self.root().fork_named("positions");
        let n = self.spec.records;
        let k = self.spec.matching;
        let mut chosen: HashSet<u64> = HashSet::with_capacity(k as usize);
        for j in (n - k)..n {
            let t = rng.gen_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        let mut positions: Vec<u64> = chosen.into_iter().collect();
        positions.sort_unstable();
        positions
    }

    /// Every record of the split, in position order.
    pub fn full_iter(&self) -> impl Iterator<Item = Record> + '_ {
        let positions: HashSet<u64> = self.matching_positions().into_iter().collect();
        let mut match_rng = self.root().fork_named("matching");
        let mut fill_rng = self.root().fork_named("filler");
        (0..self.spec.records).map(move |pos| {
            if positions.contains(&pos) {
                self.factory.matching(&mut match_rng)
            } else {
                self.factory.filler(&mut fill_rng)
            }
        })
    }

    /// The whole split as one columnar batch, rows in position order.
    /// Consumes the RNG streams exactly as [`SplitGenerator::full_iter`]
    /// does, so `full_batch().to_records() == full_iter().collect()`
    /// byte-for-byte (pinned by a test below).
    pub fn full_batch(&self) -> RecordBatch {
        let schema = self.factory.schema();
        let mut out = BatchBuilder::new(&schema, self.spec.records as usize);
        let positions: HashSet<u64> = self.matching_positions().into_iter().collect();
        let mut match_rng = self.root().fork_named("matching");
        let mut fill_rng = self.root().fork_named("filler");
        for pos in 0..self.spec.records {
            if positions.contains(&pos) {
                self.factory.append_matching(&mut match_rng, &mut out);
            } else {
                self.factory.append_filler(&mut fill_rng, &mut out);
            }
        }
        out.finish()
    }

    /// Only the matching records as a columnar batch — the batched
    /// counterpart of [`SplitGenerator::planted_matches`].
    pub fn planted_batch(&self) -> RecordBatch {
        let schema = self.factory.schema();
        let mut out = BatchBuilder::new(&schema, self.spec.matching as usize);
        let mut match_rng = self.root().fork_named("matching");
        for _ in 0..self.spec.matching {
            self.factory.append_matching(&mut match_rng, &mut out);
        }
        out.finish()
    }

    /// Only the matching records, in the same order the full scan would
    /// encounter them. `O(matching)` time and space.
    pub fn planted_matches(&self) -> Vec<Record> {
        let mut match_rng = self.root().fork_named("matching");
        (0..self.spec.matching)
            .map(|_| self.factory.matching(&mut match_rng))
            .collect()
    }

    /// Run the real predicate over a full scan and count matches — test
    /// helper asserting the planted construction.
    pub fn count_matches_full(&self) -> u64 {
        let p = self.factory.predicate();
        self.full_iter().filter(|r| p.eval(r)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineitem::{col, LineItemFactory};
    use crate::value::Value;

    fn factory() -> LineItemFactory {
        LineItemFactory::new(col::QUANTITY, Value::Int(200))
    }

    #[test]
    fn full_scan_contains_exactly_the_planted_matches() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(2_000, 37, 99));
        assert_eq!(g.count_matches_full(), 37);
        assert_eq!(g.full_iter().count(), 2_000);
    }

    #[test]
    fn planted_equals_filtered_full_scan() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(1_500, 25, 7));
        let p = f.predicate();
        let from_full: Vec<Record> = g.full_iter().filter(|r| p.eval(r)).collect();
        let planted = g.planted_matches();
        assert_eq!(from_full, planted);
    }

    #[test]
    fn zero_matches_and_all_matches_edge_cases() {
        let f = factory();
        let none = SplitGenerator::new(&f, SplitSpec::new(100, 0, 1));
        assert_eq!(none.count_matches_full(), 0);
        assert!(none.planted_matches().is_empty());
        let all = SplitGenerator::new(&f, SplitSpec::new(50, 50, 1));
        assert_eq!(all.count_matches_full(), 50);
        assert_eq!(all.planted_matches().len(), 50);
    }

    #[test]
    fn positions_are_distinct_sorted_in_range() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(500, 100, 3));
        let pos = g.matching_positions();
        assert_eq!(pos.len(), 100);
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
        assert!(pos.iter().all(|&p| p < 500));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let f = factory();
        let a: Vec<Record> = SplitGenerator::new(&f, SplitSpec::new(200, 10, 5))
            .full_iter()
            .collect();
        let b: Vec<Record> = SplitGenerator::new(&f, SplitSpec::new(200, 10, 5))
            .full_iter()
            .collect();
        let c: Vec<Record> = SplitGenerator::new(&f, SplitSpec::new(200, 10, 6))
            .full_iter()
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "cannot plant")]
    fn overfull_split_panics() {
        let _ = SplitSpec::new(10, 11, 0);
    }

    #[test]
    fn full_batch_equals_full_iter_byte_for_byte() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(1_200, 31, 42));
        let rows: Vec<Record> = g.full_iter().collect();
        let batch = g.full_batch();
        assert_eq!(batch.len(), rows.len());
        assert_eq!(batch.to_records(), rows);
    }

    #[test]
    fn planted_batch_equals_planted_matches() {
        for sentinel in [
            LineItemFactory::new(col::QUANTITY, Value::Int(200)),
            LineItemFactory::new(col::SHIPMODE, Value::Str("WARP".into())),
        ] {
            let g = SplitGenerator::new(&sentinel, SplitSpec::new(800, 40, 9));
            assert_eq!(g.planted_batch().to_records(), g.planted_matches());
        }
    }

    #[test]
    fn batched_scan_predicate_agrees_with_planted_positions() {
        let f = factory();
        let g = SplitGenerator::new(&f, SplitSpec::new(2_000, 55, 17));
        let batch = g.full_batch();
        let sel = f.predicate().eval_batch(&batch);
        let expect: Vec<u32> = g.matching_positions().iter().map(|&p| p as u32).collect();
        assert_eq!(sel, expect);
    }
}
