//! End-to-end dataset construction: place a partitioned LINEITEM file on the
//! DFS and plan, per split, how many predicate-matching records it holds.
//!
//! Mirrors Table II of the paper: LINEITEM generated at scales 5–100, evenly
//! distributed across the 40 disks with no replication; a scale unit is
//! 6 M rows (TPC-H SF1 ≈ 6.0 M LINEITEM rows) in 8 partitions, so 5× → 30 M
//! rows in 40 partitions, 100× → 600 M rows in 800 partitions.

use std::collections::HashMap;
use std::sync::RwLock;

use incmr_dfs::{BlockId, BlockSpec, FileId, Namespace, PlacementPolicy};
use incmr_simkit::rng::DetRng;

use crate::generator::SplitSpec;
use crate::lineitem::LineItemFactory;
use crate::queries::{PaperPredicate, SkewLevel, PAPER_SELECTIVITY};
use crate::skew;

/// LINEITEM rows per scale unit (TPC-H SF1).
pub const ROWS_PER_SCALE: u64 = 6_000_000;

/// Input partitions per scale unit (5× → 40 partitions, matching the paper's
/// "5x input gets partitioned into 40 partitions when stored in HDFS").
pub const PARTITIONS_PER_SCALE: u32 = 8;

/// Modelled on-disk bytes per LINEITEM row (dbgen text rows average ≈126 B).
pub const ROW_BYTES: u64 = 126;

/// Everything needed to lay a dataset out and plant its matches.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// DFS file name (unique per dataset copy).
    pub name: String,
    /// Number of input partitions (= splits = blocks).
    pub partitions: u32,
    /// Records per partition.
    pub records_per_partition: u64,
    /// Skew of the matching-record distribution.
    pub skew: SkewLevel,
    /// Overall fraction of records that match the predicate.
    pub selectivity: f64,
    /// Root seed for this dataset's contents.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's configuration at a given TPC-H scale (5, 10, 20, 40,
    /// 100), with selectivity 0.05%.
    pub fn paper_scale(name: &str, scale: u32, skew: SkewLevel, seed: u64) -> Self {
        assert!(scale > 0);
        DatasetSpec {
            name: name.to_string(),
            partitions: scale * PARTITIONS_PER_SCALE,
            records_per_partition: ROWS_PER_SCALE / PARTITIONS_PER_SCALE as u64,
            skew,
            selectivity: PAPER_SELECTIVITY,
            seed,
        }
    }

    /// A small configuration for tests and examples.
    pub fn small(
        name: &str,
        partitions: u32,
        records_per_partition: u64,
        skew: SkewLevel,
        seed: u64,
    ) -> Self {
        assert!(partitions > 0 && records_per_partition > 0);
        DatasetSpec {
            name: name.to_string(),
            partitions,
            records_per_partition,
            skew,
            selectivity: PAPER_SELECTIVITY,
            seed,
        }
    }

    /// Total records across all partitions.
    pub fn total_records(&self) -> u64 {
        self.partitions as u64 * self.records_per_partition
    }

    /// Total matching records implied by the selectivity (rounded).
    pub fn total_matching(&self) -> u64 {
        (self.total_records() as f64 * self.selectivity).round() as u64
    }
}

/// One split's plan: which DFS block it is and what it contains.
#[derive(Debug, Clone, Copy)]
pub struct SplitPlan {
    /// The DFS block backing this split.
    pub block: BlockId,
    /// Its contents (records, planted matches, seed).
    pub spec: SplitSpec,
    /// Content version, mirroring the DFS block's counter: 0 as built,
    /// bumped by every [`Dataset::mutate`]. The memoization plane keys
    /// cached map output on this.
    pub version: u32,
}

/// The evolving half of a dataset: per-split plans, indexed by block.
/// Behind a lock because [`Dataset`] is shared as `Arc<Dataset>` with the
/// data plane while append/mutate schedules rewrite it between jobs.
#[derive(Debug)]
struct PlanState {
    plans: Vec<SplitPlan>,
    by_block: HashMap<BlockId, usize>,
}

/// A materialised (planned) dataset: the DFS file plus per-split plans.
///
/// Plans are interior-mutable so an `Arc<Dataset>` handed to the runtime's
/// input format stays valid while the dataset evolves ([`Dataset::append`] /
/// [`Dataset::mutate`]) between job runs.
#[derive(Debug)]
pub struct Dataset {
    spec: DatasetSpec,
    file: FileId,
    state: RwLock<PlanState>,
}

impl Clone for Dataset {
    fn clone(&self) -> Self {
        let state = self.state.read().expect("dataset plans");
        Dataset {
            spec: self.spec.clone(),
            file: self.file,
            state: RwLock::new(PlanState {
                plans: state.plans.clone(),
                by_block: state.by_block.clone(),
            }),
        }
    }
}

impl Dataset {
    /// Create the DFS file and plant matching records per the skew spec.
    ///
    /// # Panics
    /// Panics if the DFS file name already exists (datasets are created once
    /// per experiment) — construction errors here are programming bugs, not
    /// runtime conditions.
    pub fn build(
        namespace: &mut Namespace,
        spec: DatasetSpec,
        placement: &mut dyn PlacementPolicy,
        rng: &mut DetRng,
    ) -> Dataset {
        let mut skew_rng = rng.fork_named("skew");
        let counts = skew::assign_matching(
            spec.total_matching(),
            spec.partitions as usize,
            spec.skew.z(),
            &mut skew_rng,
        );
        let capacity = vec![spec.records_per_partition; spec.partitions as usize];
        let counts = skew::cap_to_capacity(counts, &capacity, &mut skew_rng);

        let block_specs: Vec<BlockSpec> = (0..spec.partitions)
            .map(|_| BlockSpec {
                bytes: spec.records_per_partition * ROW_BYTES,
                records: spec.records_per_partition,
            })
            .collect();
        let mut place_rng = rng.fork_named("placement");
        let file = namespace
            .create_file(&spec.name, &block_specs, placement, &mut place_rng)
            .expect("dataset file name must be unique");

        let seed_root = DetRng::seed_from(spec.seed);
        let plans: Vec<SplitPlan> = namespace
            .blocks_of(file)
            .iter()
            .enumerate()
            .map(|(i, &block)| SplitPlan {
                block,
                spec: SplitSpec::new(
                    spec.records_per_partition,
                    counts[i],
                    seed_root.fork(i as u64).seed(),
                ),
                version: 0,
            })
            .collect();
        let by_block = plans
            .iter()
            .enumerate()
            .map(|(i, p)| (p.block, i))
            .collect();
        Dataset {
            spec,
            file,
            state: RwLock::new(PlanState { plans, by_block }),
        }
    }

    /// Append `partitions` fresh splits to the dataset's DFS file.
    ///
    /// Appended splits carry the same record count and bytes as the
    /// original partitions, plant `records_per_partition × selectivity`
    /// matches each (arriving data is unskewed), and derive their content
    /// seed from the file-local index by the same formula as
    /// [`Dataset::build`]. Every field is a pure function of the spec and
    /// the split's index, so replaying an identical append/mutate
    /// schedule against a fresh build reproduces the plans exactly — the
    /// determinism contract the warm-vs-cold replay suite leans on.
    /// Returns the new block ids.
    pub fn append(
        &self,
        namespace: &mut Namespace,
        partitions: u32,
        placement: &mut dyn PlacementPolicy,
        rng: &mut DetRng,
    ) -> Vec<BlockId> {
        let block_specs: Vec<BlockSpec> = (0..partitions)
            .map(|_| BlockSpec {
                bytes: self.spec.records_per_partition * ROW_BYTES,
                records: self.spec.records_per_partition,
            })
            .collect();
        let new = namespace.append_blocks(self.file, &block_specs, placement, rng);
        let matching =
            (self.spec.records_per_partition as f64 * self.spec.selectivity).round() as u64;
        let seed_root = DetRng::seed_from(self.spec.seed);
        let mut state = self.state.write().expect("dataset plans");
        for &block in &new {
            let index = namespace.block(block).index as u64;
            let plan = SplitPlan {
                block,
                spec: SplitSpec::new(
                    self.spec.records_per_partition,
                    matching,
                    seed_root.fork(index).seed(),
                ),
                version: 0,
            };
            let slot = state.plans.len();
            state.by_block.insert(block, slot);
            state.plans.push(plan);
        }
        new
    }

    /// Rewrite the given blocks in place: bump each block's DFS version,
    /// re-place its replicas, and re-seed its contents.
    ///
    /// The rewritten split keeps its record and matching counts (total
    /// matching stays invariant across mutations) but draws a fresh
    /// content seed forked from `(index, version)`, so version `v ≥ 1` of
    /// a split generates different rows than version `v−1` — which is
    /// what makes stale memoized map output observably wrong if it were
    /// ever reused. Returns the new versions, in argument order.
    ///
    /// # Panics
    /// Panics if a block does not belong to this dataset.
    pub fn mutate(
        &self,
        namespace: &mut Namespace,
        blocks: &[BlockId],
        placement: &mut dyn PlacementPolicy,
        rng: &mut DetRng,
    ) -> Vec<u32> {
        let versions = namespace.mutate_blocks(blocks, placement, rng);
        let seed_root = DetRng::seed_from(self.spec.seed);
        let mut state = self.state.write().expect("dataset plans");
        for (&block, &version) in blocks.iter().zip(&versions) {
            let index = namespace.block(block).index as u64;
            let slot = state.by_block[&block];
            let plan = &mut state.plans[slot];
            plan.version = version;
            plan.spec = SplitSpec::new(
                plan.spec.records,
                plan.spec.matching,
                seed_root.fork(index).fork(version as u64).seed(),
            );
        }
        versions
    }

    /// The spec this dataset was built from.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The backing DFS file.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// A snapshot of all split plans, in block order.
    pub fn splits(&self) -> Vec<SplitPlan> {
        self.state.read().expect("dataset plans").plans.clone()
    }

    /// The current plan for a specific block.
    ///
    /// # Panics
    /// Panics if the block does not belong to this dataset.
    pub fn plan(&self, block: BlockId) -> SplitPlan {
        let state = self.state.read().expect("dataset plans");
        state.plans[state.by_block[&block]]
    }

    /// Whether a block belongs to this dataset.
    pub fn contains(&self, block: BlockId) -> bool {
        self.state
            .read()
            .expect("dataset plans")
            .by_block
            .contains_key(&block)
    }

    /// Matching-record count per partition (Figure 4's series).
    pub fn matching_counts(&self) -> Vec<u64> {
        self.state
            .read()
            .expect("dataset plans")
            .plans
            .iter()
            .map(|p| p.spec.matching)
            .collect()
    }

    /// Total planted matching records.
    pub fn total_matching(&self) -> u64 {
        self.state
            .read()
            .expect("dataset plans")
            .plans
            .iter()
            .map(|p| p.spec.matching)
            .sum()
    }

    /// The record factory for this dataset's experiment predicate.
    pub fn factory(&self) -> LineItemFactory {
        PaperPredicate::for_skew(self.spec.skew).factory()
    }
}

/// One row of Table II: properties of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// TPC-H scale.
    pub scale: u32,
    /// Total LINEITEM rows.
    pub rows: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Number of input partitions in the DFS.
    pub partitions: u32,
}

/// Compute Table II for the paper's scales (5, 10, 20, 40, 100).
pub fn table2(scales: &[u32]) -> Vec<Table2Row> {
    scales
        .iter()
        .map(|&scale| {
            let rows = scale as u64 * ROWS_PER_SCALE;
            Table2Row {
                scale,
                rows,
                bytes: rows * ROW_BYTES,
                partitions: scale * PARTITIONS_PER_SCALE,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_dfs::{ClusterTopology, EvenRoundRobin};

    fn build(skew: SkewLevel, seed: u64) -> (Namespace, Dataset) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(seed);
        let spec = DatasetSpec::paper_scale("lineitem_5x", 5, skew, seed);
        let ds = Dataset::build(&mut ns, spec, &mut EvenRoundRobin::new(), &mut rng);
        (ns, ds)
    }

    #[test]
    fn paper_scale_5x_matches_table2() {
        let spec = DatasetSpec::paper_scale("t", 5, SkewLevel::Zero, 1);
        assert_eq!(spec.partitions, 40);
        assert_eq!(spec.total_records(), 30_000_000);
        assert_eq!(spec.total_matching(), 15_000);
    }

    #[test]
    fn table2_rows() {
        let t = table2(&[5, 10, 20, 40, 100]);
        assert_eq!(t.len(), 5);
        assert_eq!(t[0].rows, 30_000_000);
        assert_eq!(t[0].partitions, 40);
        assert_eq!(t[4].rows, 600_000_000);
        assert_eq!(t[4].partitions, 800);
        assert!(
            t[4].bytes > 70 * 1024 * 1024 * 1024u64,
            "100x should be ~75 GB"
        );
    }

    #[test]
    fn build_places_one_block_per_disk_at_5x() {
        let (ns, ds) = build(SkewLevel::Zero, 1);
        assert_eq!(ds.splits().len(), 40);
        assert!(ns.blocks_per_disk().iter().all(|&c| c == 1));
    }

    #[test]
    fn zero_skew_plants_evenly() {
        let (_, ds) = build(SkewLevel::Zero, 1);
        assert_eq!(ds.matching_counts(), vec![375u64; 40]);
        assert_eq!(ds.total_matching(), 15_000);
    }

    #[test]
    fn high_skew_plants_a_heavy_partition() {
        let (_, ds) = build(SkewLevel::High, 2);
        let counts = ds.matching_counts();
        assert_eq!(counts.iter().sum::<u64>(), 15_000);
        let max = *counts.iter().max().unwrap();
        assert!(
            max > 8_000,
            "z=2 heavy partition holds most matches, got {max}"
        );
    }

    #[test]
    fn plan_lookup_by_block() {
        let (_, ds) = build(SkewLevel::Moderate, 3);
        for p in ds.splits() {
            assert!(ds.contains(p.block));
            assert_eq!(ds.plan(p.block).block, p.block);
        }
        assert_eq!(ds.total_matching(), 15_000);
    }

    #[test]
    fn split_seeds_are_distinct() {
        let (_, ds) = build(SkewLevel::Zero, 4);
        let mut seeds: Vec<u64> = ds.splits().iter().map(|p| p.spec.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 40);
    }

    #[test]
    fn same_seed_same_plan_different_seed_different_plan() {
        let (_, a) = build(SkewLevel::High, 7);
        let (_, b) = build(SkewLevel::High, 7);
        let (_, c) = build(SkewLevel::High, 8);
        assert_eq!(a.matching_counts(), b.matching_counts());
        assert_ne!(a.matching_counts(), c.matching_counts());
    }

    #[test]
    fn append_extends_plans_with_fresh_versioned_splits() {
        let (mut ns, ds) = build(SkewLevel::Zero, 9);
        let mut rng = DetRng::seed_from(9);
        let new = ds.append(&mut ns, 3, &mut EvenRoundRobin::starting_at(40), &mut rng);
        assert_eq!(new.len(), 3);
        assert_eq!(ds.splits().len(), 43);
        for &b in &new {
            let p = ds.plan(b);
            assert_eq!(p.version, 0);
            assert_eq!(p.spec.records, ds.spec().records_per_partition);
            assert_eq!(p.spec.matching, 375, "unskewed arrival: 750k × 0.05%");
            assert!(ds.contains(b));
        }
        // Appended seeds follow the build formula for their indexes.
        let root = DetRng::seed_from(9);
        assert_eq!(ds.plan(new[0]).spec.seed, root.fork(40).seed());
    }

    #[test]
    fn mutate_reseeds_and_bumps_plan_version() {
        let (mut ns, ds) = build(SkewLevel::Zero, 10);
        let target = ds.splits()[5].block;
        let before = ds.plan(target);
        let mut rng = DetRng::seed_from(10);
        let versions = ds.mutate(&mut ns, &[target], &mut EvenRoundRobin::new(), &mut rng);
        assert_eq!(versions, vec![1]);
        let after = ds.plan(target);
        assert_eq!(after.version, 1);
        assert_eq!(after.spec.records, before.spec.records);
        assert_eq!(after.spec.matching, before.spec.matching);
        assert_ne!(after.spec.seed, before.spec.seed, "rewrite draws new rows");
        assert_eq!(ds.total_matching(), 15_000, "matching total is invariant");
        assert_eq!(ns.version_of(target), 1, "DFS counter stays in lockstep");
    }

    #[test]
    fn replayed_evolve_schedule_reproduces_plans_exactly() {
        let run = || {
            let (mut ns, ds) = build(SkewLevel::Moderate, 11);
            let mut rng = DetRng::seed_from(77);
            ds.append(&mut ns, 2, &mut EvenRoundRobin::starting_at(40), &mut rng);
            let blocks: Vec<BlockId> = vec![ds.splits()[3].block, ds.splits()[41].block];
            ds.mutate(&mut ns, &blocks, &mut EvenRoundRobin::new(), &mut rng);
            ds.splits()
                .iter()
                .map(|p| (p.block, p.spec.seed, p.spec.matching, p.version))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
