//! Zipfian assignment of matching records to input partitions — the
//! generator behind the paper's Figure 4.
//!
//! "For every matching record, we draw its containing input partition from
//! the described Zipfian, thus resulting in a skew" (Section V-B). The rank
//! ordering is a property of the Zipf distribution, not of partition ids, so
//! after drawing counts per *rank* we assign ranks to physical partitions by
//! a seeded random permutation — the heavy partition can be anywhere on the
//! cluster, which is what makes uniform-random split selection by the Input
//! Provider meaningful.

use incmr_simkit::dist::Zipf;
use incmr_simkit::rng::DetRng;
use rand::Rng;

/// Distribute `total_matching` records over `partitions` partitions with
/// Zipf exponent `z`.
///
/// * `z == 0` reproduces the paper's "equal number of matching records in
///   each partition" exactly (deterministic even split), not a uniform
///   multinomial draw.
/// * `z > 0` draws each record's partition independently from
///   `Zipf(partitions, z)` and then permutes ranks onto partitions.
///
/// The returned vector has one count per partition and always sums to
/// `total_matching`.
pub fn assign_matching(
    total_matching: u64,
    partitions: usize,
    z: f64,
    rng: &mut DetRng,
) -> Vec<u64> {
    assert!(partitions > 0, "need at least one partition");
    if z == 0.0 {
        return Zipf::even_counts(total_matching, partitions);
    }
    let zipf = Zipf::new(partitions, z);
    let by_rank = zipf.sample_counts(total_matching, rng);
    // Permute ranks onto physical partitions.
    let perm: Vec<usize> =
        rng.sample_without_replacement(&(0..partitions).collect::<Vec<_>>(), partitions);
    let mut by_partition = vec![0u64; partitions];
    for (rank_idx, &count) in by_rank.iter().enumerate() {
        by_partition[perm[rank_idx]] = count;
    }
    by_partition
}

/// Cap per-partition matching counts at that partition's record capacity,
/// reassigning any overflow to the least-loaded partitions (round-robin by
/// spare capacity). Needed at extreme skew where a Zipf head could exceed a
/// partition's size.
pub fn cap_to_capacity(mut counts: Vec<u64>, capacity: &[u64], rng: &mut DetRng) -> Vec<u64> {
    assert_eq!(counts.len(), capacity.len());
    let mut overflow = 0u64;
    for (c, &cap) in counts.iter_mut().zip(capacity) {
        if *c > cap {
            overflow += *c - cap;
            *c = cap;
        }
    }
    while overflow > 0 {
        // Find partitions with spare room; spread the overflow randomly.
        let spare: Vec<usize> = (0..counts.len())
            .filter(|&i| counts[i] < capacity[i])
            .collect();
        assert!(
            !spare.is_empty(),
            "matching records exceed total dataset capacity"
        );
        let i = spare[rng.gen_range(0..spare.len())];
        let room = capacity[i] - counts[i];
        let take = room.min(overflow);
        counts[i] += take;
        overflow -= take;
    }
    counts
}

/// Summary statistics of a skew assignment, used by the Figure 4 regenerator
/// and its tests.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewSummary {
    /// Largest per-partition count.
    pub max: u64,
    /// Number of partitions with zero matching records.
    pub empty_partitions: usize,
    /// Fraction of all matches held by the single heaviest partition.
    pub top_share: f64,
}

/// Compute summary statistics for an assignment.
pub fn summarize(counts: &[u64]) -> SkewSummary {
    let total: u64 = counts.iter().sum();
    let max = counts.iter().copied().max().unwrap_or(0);
    SkewSummary {
        max,
        empty_partitions: counts.iter().filter(|&&c| c == 0).count(),
        top_share: if total == 0 {
            0.0
        } else {
            max as f64 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOTAL: u64 = 15_000; // 5x scale, 0.05% selectivity (paper Fig. 4)
    const PARTS: usize = 40;

    #[test]
    fn zero_skew_is_exactly_even() {
        let mut rng = DetRng::seed_from(1);
        let counts = assign_matching(TOTAL, PARTS, 0.0, &mut rng);
        assert_eq!(counts, vec![375u64; 40]);
    }

    #[test]
    fn totals_are_preserved_for_all_z() {
        for &z in &[0.0, 1.0, 2.0] {
            let mut rng = DetRng::seed_from(7);
            let counts = assign_matching(TOTAL, PARTS, z, &mut rng);
            assert_eq!(counts.iter().sum::<u64>(), TOTAL, "z = {z}");
            assert_eq!(counts.len(), PARTS);
        }
    }

    #[test]
    fn moderate_skew_top_partition_matches_paper_ballpark() {
        // Paper: z=1 puts ~3128 of 15000 in one partition (expected 23.4%).
        let mut rng = DetRng::seed_from(42);
        let counts = assign_matching(TOTAL, PARTS, 1.0, &mut rng);
        let s = summarize(&counts);
        assert!(
            (0.20..=0.27).contains(&s.top_share),
            "top share {} out of the z=1 ballpark",
            s.top_share
        );
    }

    #[test]
    fn high_skew_concentrates_in_one_partition() {
        // Paper: z=2 puts ~8700 of 15000 in one partition (expected 61.7%).
        let mut rng = DetRng::seed_from(42);
        let counts = assign_matching(TOTAL, PARTS, 2.0, &mut rng);
        let s = summarize(&counts);
        assert!(
            (0.55..=0.68).contains(&s.top_share),
            "top share {} out of the z=2 ballpark",
            s.top_share
        );
        // The light half of the partitions together hold almost nothing.
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let tail: u64 = sorted[..PARTS / 2].iter().sum();
        assert!(
            (tail as f64) < 0.05 * TOTAL as f64,
            "bottom half holds {tail} of {TOTAL}; z=2 should starve it"
        );
    }

    #[test]
    fn heavy_rank_lands_on_random_partition() {
        let pos = |seed: u64| {
            let mut rng = DetRng::seed_from(seed);
            let counts = assign_matching(TOTAL, PARTS, 2.0, &mut rng);
            counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0
        };
        let positions: Vec<usize> = (0..8).map(pos).collect();
        let mut distinct = positions.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() > 1,
            "heavy partition should move across seeds: {positions:?}"
        );
    }

    #[test]
    fn capping_preserves_total_and_respects_capacity() {
        let mut rng = DetRng::seed_from(3);
        let counts = vec![100, 0, 0, 0];
        let capacity = vec![30, 40, 40, 40];
        let capped = cap_to_capacity(counts, &capacity, &mut rng);
        assert_eq!(capped.iter().sum::<u64>(), 100);
        for (c, cap) in capped.iter().zip(&capacity) {
            assert!(c <= cap);
        }
    }

    #[test]
    #[should_panic(expected = "exceed total dataset capacity")]
    fn impossible_capacity_panics() {
        let mut rng = DetRng::seed_from(3);
        let _ = cap_to_capacity(vec![100], &[10], &mut rng);
    }

    #[test]
    fn summarize_empty() {
        let s = summarize(&[0, 0]);
        assert_eq!(s.max, 0);
        assert_eq!(s.top_share, 0.0);
        assert_eq!(s.empty_partitions, 2);
    }
}
