//! Columnar record batches: the zero-copy data plane.
//!
//! A [`RecordBatch`] stores one split's records in structure-of-arrays
//! (SoA) layout — one typed `Vec` per column instead of one `Vec<Value>`
//! per record. For the LINEITEM schema that turns a 12-`Value` row (with
//! three heap `String`s) into twelve contiguous columns: `i64`/`f64`
//! vectors for numerics, `u32` day-counts for dates, and
//! **dictionary-encoded** string columns (a `u32` code per row into a tiny
//! per-batch dictionary of `Arc<str>`s — LINEITEM's string columns have at
//! most 8 distinct values, so the per-row cost is 4 bytes and zero
//! allocations).
//!
//! Batches are immutable once built and always travel as
//! `Arc<RecordBatch>`: a map task's "split data" is a reference-count bump,
//! and its *output* is a [`BatchSelection`] — the same `Arc` plus a
//! [`SelectionVector`] of surviving row indices (and an optional
//! projection). Nothing is copied until the reduce/result boundary
//! materialises selected rows back into [`Record`]s.
//!
//! The row-oriented [`Record`]/[`Value`] model stays as the boundary
//! format (reducer inputs, job results, exotic mappers) and as the
//! reference implementation that property tests pin the columnar path
//! against.

use std::fmt;
use std::sync::Arc;

use crate::schema::{ColumnType, Schema};
use crate::value::{Record, Value};

/// Row indices selected from a batch, ascending. `u32` is ample: splits
/// hold at most a few million rows.
pub type SelectionVector = Vec<u32>;

/// A dictionary-encoded string column: one `u32` code per row into a
/// per-batch dictionary. Lookup is a linear scan — batch dictionaries stay
/// tiny (LINEITEM's widest string column has 8 distinct values); a
/// high-cardinality column would want a hash index here.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrColumn {
    /// Per-row dictionary codes.
    pub codes: Vec<u32>,
    /// Distinct values, in first-interned order.
    pub dict: Vec<Arc<str>>,
}

impl StrColumn {
    /// The string at `row`.
    pub fn get(&self, row: usize) -> &Arc<str> {
        &self.dict[self.codes[row] as usize]
    }

    /// Code for `s`, interning it if new.
    pub fn intern(&mut self, s: &str) -> u32 {
        match self.dict.iter().position(|d| &**d == s) {
            Some(i) => i as u32,
            None => {
                self.dict.push(Arc::from(s));
                (self.dict.len() - 1) as u32
            }
        }
    }
}

/// One column's values, typed per the schema.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Days since the TPC-H epoch.
    Date(Vec<u32>),
    /// Dictionary-encoded strings.
    Str(StrColumn),
}

impl ColumnData {
    fn with_capacity(ty: ColumnType, rows: usize) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::with_capacity(rows)),
            ColumnType::Float => ColumnData::Float(Vec::with_capacity(rows)),
            ColumnType::Date => ColumnData::Date(Vec::with_capacity(rows)),
            ColumnType::Str => ColumnData::Str(StrColumn {
                codes: Vec::with_capacity(rows),
                dict: Vec::new(),
            }),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Str(c) => c.codes.len(),
        }
    }

    /// Materialise the value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Date(v) => Value::Date(v[row]),
            ColumnData::Str(c) => Value::Str(c.get(row).to_string()),
        }
    }

    /// Serialized width in bytes of the value at `row` (matches
    /// [`Value::width`]).
    pub fn width(&self, row: usize) -> u64 {
        match self {
            ColumnData::Int(_) => 8,
            ColumnData::Float(_) => 8,
            ColumnData::Date(_) => 4,
            ColumnData::Str(c) => c.get(row).len() as u64,
        }
    }
}

/// An immutable SoA batch of records. Built once by a [`BatchBuilder`],
/// then shared as `Arc<RecordBatch>` — clones of the handle are
/// reference-count bumps, never data copies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecordBatch {
    columns: Vec<ColumnData>,
    rows: usize,
}

impl RecordBatch {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column at `idx`.
    ///
    /// # Panics
    /// Panics if out of range — batches are always built to match their
    /// schema, so this indicates a compiler/generator bug (same contract
    /// as [`Record::get`]).
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Materialise the value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialise one row as a [`Record`], optionally projected to the
    /// given column indices (empty = all columns). Byte-identical to what
    /// the row-oriented generator would have produced.
    pub fn record(&self, row: usize, projection: &[usize]) -> Record {
        if projection.is_empty() {
            Record::new((0..self.arity()).map(|c| self.value(row, c)).collect())
        } else {
            Record::new(projection.iter().map(|&c| self.value(row, c)).collect())
        }
    }

    /// Serialized width in bytes of one (optionally projected) row —
    /// matches [`Record::width`] of [`RecordBatch::record`] without
    /// materialising it.
    pub fn row_width(&self, row: usize, projection: &[usize]) -> u64 {
        if projection.is_empty() {
            self.columns.iter().map(|c| c.width(row)).sum()
        } else {
            projection.iter().map(|&c| self.columns[c].width(row)).sum()
        }
    }

    /// Materialise every row, in order (tests and the scalar fallback).
    pub fn to_records(&self) -> Vec<Record> {
        (0..self.rows).map(|r| self.record(r, &[])).collect()
    }

    /// Build a batch from rows (the scalar path; generators use
    /// [`BatchBuilder`] directly and never materialise rows).
    pub fn from_records(schema: &Schema, records: &[Record]) -> RecordBatch {
        let mut b = BatchBuilder::new(schema, records.len());
        for r in records {
            b.push_record(r);
        }
        b.finish()
    }
}

/// Append-only builder for a [`RecordBatch`].
#[derive(Debug)]
pub struct BatchBuilder {
    columns: Vec<ColumnData>,
    rows: usize,
}

impl BatchBuilder {
    /// A builder for `schema` with capacity for `rows` rows.
    pub fn new(schema: &Schema, rows: usize) -> Self {
        BatchBuilder {
            columns: schema
                .fields()
                .iter()
                .map(|f| ColumnData::with_capacity(f.ty, rows))
                .collect(),
            rows: 0,
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True before the first row is appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append an integer to column `col`.
    pub fn push_int(&mut self, col: usize, v: i64) {
        let ColumnData::Int(vec) = &mut self.columns[col] else {
            panic!("column {col} is not Int");
        };
        vec.push(v);
    }

    /// Append a float to column `col`.
    pub fn push_float(&mut self, col: usize, v: f64) {
        let ColumnData::Float(vec) = &mut self.columns[col] else {
            panic!("column {col} is not Float");
        };
        vec.push(v);
    }

    /// Append a date to column `col`.
    pub fn push_date(&mut self, col: usize, v: u32) {
        let ColumnData::Date(vec) = &mut self.columns[col] else {
            panic!("column {col} is not Date");
        };
        vec.push(v);
    }

    /// Intern `s` in column `col`'s dictionary and return its code
    /// (without appending a row — pair with [`BatchBuilder::push_code`]).
    pub fn intern(&mut self, col: usize, s: &str) -> u32 {
        let ColumnData::Str(c) = &mut self.columns[col] else {
            panic!("column {col} is not Str");
        };
        c.intern(s)
    }

    /// Append an already-interned dictionary code to column `col`.
    pub fn push_code(&mut self, col: usize, code: u32) {
        let ColumnData::Str(c) = &mut self.columns[col] else {
            panic!("column {col} is not Str");
        };
        debug_assert!((code as usize) < c.dict.len(), "unknown dict code");
        c.codes.push(code);
    }

    /// Append a string to column `col` (interning as needed).
    pub fn push_str(&mut self, col: usize, s: &str) {
        let ColumnData::Str(c) = &mut self.columns[col] else {
            panic!("column {col} is not Str");
        };
        let code = c.intern(s);
        c.codes.push(code);
    }

    /// Mark one row complete.
    ///
    /// # Panics
    /// Panics (debug) if any column is missing a value for the row.
    pub fn finish_row(&mut self) {
        self.rows += 1;
        debug_assert!(
            self.columns.iter().all(|c| c.len() == self.rows),
            "row {} incomplete: column lengths {:?}",
            self.rows,
            self.columns.iter().map(ColumnData::len).collect::<Vec<_>>()
        );
    }

    /// Append a whole [`Record`] (the scalar compatibility path).
    ///
    /// # Panics
    /// Panics if a value's type does not match its column.
    pub fn push_record(&mut self, r: &Record) {
        assert_eq!(r.arity(), self.columns.len(), "record arity mismatch");
        for (col, v) in r.values().iter().enumerate() {
            match v {
                Value::Int(i) => self.push_int(col, *i),
                Value::Float(f) => self.push_float(col, *f),
                Value::Date(d) => self.push_date(col, *d),
                Value::Str(s) => self.push_str(col, s),
            }
        }
        self.finish_row();
    }

    /// Seal the batch.
    pub fn finish(self) -> RecordBatch {
        debug_assert!(self.columns.iter().all(|c| c.len() == self.rows));
        RecordBatch {
            columns: self.columns,
            rows: self.rows,
        }
    }
}

/// A zero-copy view of selected (optionally projected) rows of a shared
/// batch — what the batched map path emits instead of cloned `Record`s.
/// Cloning one clones the `Arc` and the (4-byte-per-row) selection vector,
/// never the column data.
#[derive(Debug, Clone, Default)]
pub struct BatchSelection {
    /// The shared source batch.
    pub batch: Arc<RecordBatch>,
    /// Surviving row indices, in scan order.
    pub sel: SelectionVector,
    /// Columns each materialised row keeps (empty slice = all), shared so
    /// cloning a selection never re-allocates the projection.
    pub projection: Arc<[usize]>,
}

impl BatchSelection {
    /// Select `sel` rows of `batch`, projected to `projection` columns
    /// (empty = all).
    pub fn new(batch: Arc<RecordBatch>, sel: SelectionVector, projection: Arc<[usize]>) -> Self {
        debug_assert!(sel.iter().all(|&r| (r as usize) < batch.len()));
        BatchSelection {
            batch,
            sel,
            projection,
        }
    }

    /// Every row of `batch`, unprojected.
    pub fn all(batch: Arc<RecordBatch>) -> Self {
        let sel = (0..batch.len() as u32).collect();
        BatchSelection {
            batch,
            sel,
            projection: Arc::from([]),
        }
    }

    /// Selected row count.
    pub fn len(&self) -> usize {
        self.sel.len()
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.sel.is_empty()
    }

    /// Keep only the first `n` selected rows.
    pub fn truncate(&mut self, n: usize) {
        self.sel.truncate(n);
    }

    /// Materialise the `i`-th selected row (applying the projection).
    pub fn record(&self, i: usize) -> Record {
        self.batch.record(self.sel[i] as usize, &self.projection)
    }

    /// Serialized width of the `i`-th selected row, without materialising.
    pub fn width(&self, i: usize) -> u64 {
        self.batch.row_width(self.sel[i] as usize, &self.projection)
    }

    /// Total serialized width of all selected rows.
    pub fn total_width(&self) -> u64 {
        self.sel
            .iter()
            .map(|&r| self.batch.row_width(r as usize, &self.projection))
            .sum()
    }

    /// Materialising iterator over selected rows, in selection order.
    pub fn iter_records(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.len()).map(|i| self.record(i))
    }
}

impl fmt::Display for RecordBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RecordBatch[{} rows x {} cols]", self.rows, self.arity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("price", ColumnType::Float),
            ("flag", ColumnType::Str),
            ("day", ColumnType::Date),
        ])
    }

    fn sample() -> RecordBatch {
        let mut b = BatchBuilder::new(&schema(), 3);
        for (i, p, s, d) in [(1, 1.5, "A", 10u32), (2, 2.5, "B", 20), (3, 3.5, "A", 30)] {
            b.push_int(0, i);
            b.push_float(1, p);
            b.push_str(2, s);
            b.push_date(3, d);
            b.finish_row();
        }
        b.finish()
    }

    #[test]
    fn roundtrips_rows() {
        let batch = sample();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.arity(), 4);
        let rows = batch.to_records();
        assert_eq!(rows[1].get(0), &Value::Int(2));
        assert_eq!(rows[2].get(2), &Value::Str("A".into()));
        let rebuilt = RecordBatch::from_records(&schema(), &rows);
        assert_eq!(rebuilt, batch);
    }

    #[test]
    fn dictionary_shares_codes() {
        let batch = sample();
        let ColumnData::Str(c) = batch.column(2) else {
            panic!()
        };
        assert_eq!(c.dict.len(), 2, "two distinct flags");
        assert_eq!(c.codes, vec![0, 1, 0]);
    }

    #[test]
    fn widths_match_record_widths() {
        let batch = sample();
        for row in 0..batch.len() {
            assert_eq!(
                batch.row_width(row, &[]),
                batch.record(row, &[]).width(),
                "row {row}"
            );
            assert_eq!(
                batch.row_width(row, &[2, 0]),
                batch.record(row, &[2, 0]).width()
            );
        }
    }

    #[test]
    fn projection_orders_columns() {
        let batch = sample();
        let r = batch.record(0, &[3, 0]);
        assert_eq!(r.values(), &[Value::Date(10), Value::Int(1)]);
    }

    #[test]
    fn selection_views_rows_zero_copy() {
        let batch = Arc::new(sample());
        let sel = BatchSelection::new(Arc::clone(&batch), vec![2, 0], Arc::from([0usize]));
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.record(0).values(), &[Value::Int(3)]);
        assert_eq!(sel.record(1).values(), &[Value::Int(1)]);
        assert_eq!(sel.width(0), 8);
        let all = BatchSelection::all(Arc::clone(&batch));
        assert_eq!(all.len(), 3);
        assert_eq!(
            all.iter_records().collect::<Vec<_>>(),
            batch.to_records(),
            "identity selection materialises every row"
        );
    }

    #[test]
    fn truncate_keeps_prefix() {
        let batch = Arc::new(sample());
        let mut sel = BatchSelection::all(batch);
        sel.truncate(1);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel.record(0).values()[0], Value::Int(1));
    }

    #[test]
    fn empty_batch_is_fine() {
        let b = BatchBuilder::new(&schema(), 0).finish();
        assert!(b.is_empty());
        assert!(b.to_records().is_empty());
        let sel = BatchSelection::all(Arc::new(b));
        assert!(sel.is_empty());
        assert_eq!(sel.total_width(), 0);
    }

    #[test]
    #[should_panic(expected = "not Int")]
    fn type_confusion_panics() {
        let mut b = BatchBuilder::new(&schema(), 1);
        b.push_int(1, 3);
    }
}
