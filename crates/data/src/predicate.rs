//! Predicate AST and evaluator.
//!
//! This is what a `WHERE` clause compiles to, and what the sampling mapper
//! evaluates against every scanned record (paper Algorithm 1). The AST is
//! deliberately small — comparisons, `BETWEEN`, and boolean connectives —
//! matching the predicates the paper's evaluation uses, but composable
//! enough for arbitrary selection queries.

use std::cmp::Ordering;
use std::fmt;

use crate::schema::Schema;
use crate::value::{Record, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering result. Incomparable values (type
    /// mismatch, NaN) fail every comparison, per SQL's unknown semantics
    /// collapsed to false.
    pub fn test(&self, ord: Option<Ordering>) -> bool {
        let Some(ord) = ord else { return false };
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over records. Columns are referenced by index
/// (resolved against a schema by the query front end).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (the empty `WHERE` clause).
    True,
    /// `column <op> literal`
    Compare {
        /// Column index.
        column: usize,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        literal: Value,
    },
    /// `column BETWEEN low AND high` (inclusive).
    Between {
        /// Column index.
        column: usize,
        /// Lower bound (inclusive).
        low: Value,
        /// Upper bound (inclusive).
        high: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for `column = literal`.
    pub fn eq(column: usize, literal: Value) -> Self {
        Predicate::Compare {
            column,
            op: CmpOp::Eq,
            literal,
        }
    }

    /// Evaluate against a record.
    pub fn eval(&self, record: &Record) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Compare {
                column,
                op,
                literal,
            } => op.test(record.get(*column).compare(literal)),
            Predicate::Between { column, low, high } => {
                let v = record.get(*column);
                CmpOp::Ge.test(v.compare(low)) && CmpOp::Le.test(v.compare(high))
            }
            Predicate::And(a, b) => a.eval(record) && b.eval(record),
            Predicate::Or(a, b) => a.eval(record) || b.eval(record),
            Predicate::Not(a) => !a.eval(record),
        }
    }

    /// Largest column index referenced, if any (for arity validation).
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Predicate::True => None,
            Predicate::Compare { column, .. } | Predicate::Between { column, .. } => Some(*column),
            Predicate::And(a, b) | Predicate::Or(a, b) => a.max_column().max(b.max_column()),
            Predicate::Not(a) => a.max_column(),
        }
    }

    /// Render with column names from a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> PredicateDisplay<'a> {
        PredicateDisplay { pred: self, schema }
    }
}

/// Helper for schema-aware rendering of predicates.
pub struct PredicateDisplay<'a> {
    pred: &'a Predicate,
    schema: &'a Schema,
}

impl fmt::Display for PredicateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |c: usize| self.schema.field(c).name.as_str();
        match self.pred {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Compare {
                column,
                op,
                literal,
            } => write!(f, "{} {op} {literal}", name(*column)),
            Predicate::Between { column, low, high } => {
                write!(f, "{} BETWEEN {low} AND {high}", name(*column))
            }
            Predicate::And(a, b) => write!(
                f,
                "({} AND {})",
                a.display(self.schema),
                b.display(self.schema)
            ),
            Predicate::Or(a, b) => write!(
                f,
                "({} OR {})",
                a.display(self.schema),
                b.display(self.schema)
            ),
            Predicate::Not(a) => write!(f, "NOT {}", a.display(self.schema)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn rec(q: i64, d: f64) -> Record {
        Record::new(vec![Value::Int(q), Value::Float(d)])
    }

    #[test]
    fn comparisons() {
        let p = Predicate::Compare {
            column: 0,
            op: CmpOp::Ge,
            literal: Value::Int(10),
        };
        assert!(p.eval(&rec(10, 0.0)));
        assert!(p.eval(&rec(11, 0.0)));
        assert!(!p.eval(&rec(9, 0.0)));
    }

    #[test]
    fn between_is_inclusive() {
        let p = Predicate::Between {
            column: 1,
            low: Value::Float(0.05),
            high: Value::Float(0.07),
        };
        assert!(p.eval(&rec(0, 0.05)));
        assert!(p.eval(&rec(0, 0.07)));
        assert!(!p.eval(&rec(0, 0.071)));
    }

    #[test]
    fn connectives() {
        let a = Predicate::eq(0, Value::Int(1));
        let b = Predicate::eq(1, Value::Float(0.5));
        let and = Predicate::And(Box::new(a.clone()), Box::new(b.clone()));
        let or = Predicate::Or(Box::new(a.clone()), Box::new(b.clone()));
        let not = Predicate::Not(Box::new(a.clone()));
        assert!(and.eval(&rec(1, 0.5)));
        assert!(!and.eval(&rec(1, 0.4)));
        assert!(or.eval(&rec(1, 0.4)));
        assert!(or.eval(&rec(2, 0.5)));
        assert!(!or.eval(&rec(2, 0.4)));
        assert!(not.eval(&rec(2, 0.0)));
        assert!(Predicate::True.eval(&rec(0, 0.0)));
    }

    #[test]
    fn type_mismatch_fails_comparison() {
        let p = Predicate::eq(0, Value::Str("x".into()));
        assert!(!p.eval(&rec(1, 0.0)));
        // But Ne on incomparable values is also false (SQL unknown).
        let p = Predicate::Compare {
            column: 0,
            op: CmpOp::Ne,
            literal: Value::Str("x".into()),
        };
        assert!(!p.eval(&rec(1, 0.0)));
    }

    #[test]
    fn max_column_spans_the_tree() {
        let p = Predicate::And(
            Box::new(Predicate::eq(3, Value::Int(0))),
            Box::new(Predicate::Not(Box::new(Predicate::eq(7, Value::Int(0))))),
        );
        assert_eq!(p.max_column(), Some(7));
        assert_eq!(Predicate::True.max_column(), None);
    }

    #[test]
    fn display_uses_schema_names() {
        let s = Schema::new(vec![("qty", ColumnType::Int), ("disc", ColumnType::Float)]);
        let p = Predicate::And(
            Box::new(Predicate::eq(0, Value::Int(5))),
            Box::new(Predicate::Between {
                column: 1,
                low: Value::Float(0.01),
                high: Value::Float(0.02),
            }),
        );
        assert_eq!(
            p.display(&s).to_string(),
            "(qty = 5 AND disc BETWEEN 0.01 AND 0.02)"
        );
    }
}
