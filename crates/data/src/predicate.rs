//! Predicate AST and evaluator.
//!
//! This is what a `WHERE` clause compiles to, and what the sampling mapper
//! evaluates against every scanned record (paper Algorithm 1). The AST is
//! deliberately small — comparisons, `BETWEEN`, and boolean connectives —
//! matching the predicates the paper's evaluation uses, but composable
//! enough for arbitrary selection queries.

use std::cmp::Ordering;
use std::fmt;

use crate::batch::{ColumnData, RecordBatch, SelectionVector};
use crate::schema::Schema;
use crate::value::{Record, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering result. Incomparable values (type
    /// mismatch, NaN) fail every comparison, per SQL's unknown semantics
    /// collapsed to false.
    pub fn test(&self, ord: Option<Ordering>) -> bool {
        let Some(ord) = ord else { return false };
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over records. Columns are referenced by index
/// (resolved against a schema by the query front end).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (the empty `WHERE` clause).
    True,
    /// `column <op> literal`
    Compare {
        /// Column index.
        column: usize,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        literal: Value,
    },
    /// `column BETWEEN low AND high` (inclusive).
    Between {
        /// Column index.
        column: usize,
        /// Lower bound (inclusive).
        low: Value,
        /// Upper bound (inclusive).
        high: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for `column = literal`.
    pub fn eq(column: usize, literal: Value) -> Self {
        Predicate::Compare {
            column,
            op: CmpOp::Eq,
            literal,
        }
    }

    /// Evaluate against a record.
    pub fn eval(&self, record: &Record) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Compare {
                column,
                op,
                literal,
            } => op.test(record.get(*column).compare(literal)),
            Predicate::Between { column, low, high } => {
                let v = record.get(*column);
                CmpOp::Ge.test(v.compare(low)) && CmpOp::Le.test(v.compare(high))
            }
            Predicate::And(a, b) => a.eval(record) && b.eval(record),
            Predicate::Or(a, b) => a.eval(record) || b.eval(record),
            Predicate::Not(a) => !a.eval(record),
        }
    }

    /// Largest column index referenced, if any (for arity validation).
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Predicate::True => None,
            Predicate::Compare { column, .. } | Predicate::Between { column, .. } => Some(*column),
            Predicate::And(a, b) | Predicate::Or(a, b) => a.max_column().max(b.max_column()),
            Predicate::Not(a) => a.max_column(),
        }
    }

    /// Render with column names from a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> PredicateDisplay<'a> {
        PredicateDisplay { pred: self, schema }
    }

    /// Vectorised evaluation: the row indices of `batch` this predicate
    /// selects, ascending.
    ///
    /// Semantically identical to calling [`Predicate::eval`] on each
    /// materialised row — property-tested in `tests/batch_equivalence.rs`
    /// — but runs branch-free over whole columns: each comparison fills a
    /// byte mask in a tight per-type loop the compiler auto-vectorises,
    /// and connectives combine masks with `&`/`|`/`^`. NaN and
    /// type-mismatch comparisons collapse to constant-false masks exactly
    /// as [`Value::compare`] returning `None` does in the scalar path (in
    /// particular `Ne` is computed as `(a < b) | (a > b)`, which is false
    /// for NaN, *not* as `a != b`, which would be true).
    pub fn eval_batch(&self, batch: &RecordBatch) -> SelectionVector {
        let mut mask = vec![0u8; batch.len()];
        self.fill_mask(batch, &mut mask);
        mask.iter()
            .enumerate()
            .filter_map(|(i, &m)| (m != 0).then_some(i as u32))
            .collect()
    }

    /// Reference implementation of [`Predicate::eval_batch`]: materialise
    /// each row and run the scalar evaluator. This is the fallback for
    /// predicates outside the vectorisable AST (none exist today — every
    /// node has a mask kernel) and the oracle the equivalence proptests
    /// compare against.
    pub fn eval_batch_scalar(&self, batch: &RecordBatch) -> SelectionVector {
        (0..batch.len())
            .filter_map(|i| self.eval(&batch.record(i, &[])).then_some(i as u32))
            .collect()
    }

    /// Write this predicate's truth value for every row of `batch` into
    /// `mask` (1 = selected), overwriting its contents.
    fn fill_mask(&self, batch: &RecordBatch, mask: &mut [u8]) {
        match self {
            Predicate::True => mask.fill(1),
            Predicate::Compare {
                column,
                op,
                literal,
            } => fill_compare_mask(batch.column(*column), *op, literal, mask),
            // BETWEEN is evaluated exactly as the scalar path does:
            // `v >= low AND v <= high`, each half with its own literal's
            // type rules.
            Predicate::Between { column, low, high } => {
                fill_compare_mask(batch.column(*column), CmpOp::Ge, low, mask);
                let mut hi = vec![0u8; mask.len()];
                fill_compare_mask(batch.column(*column), CmpOp::Le, high, &mut hi);
                for (m, h) in mask.iter_mut().zip(&hi) {
                    *m &= h;
                }
            }
            Predicate::And(a, b) => {
                a.fill_mask(batch, mask);
                let mut rhs = vec![0u8; mask.len()];
                b.fill_mask(batch, &mut rhs);
                for (m, r) in mask.iter_mut().zip(&rhs) {
                    *m &= r;
                }
            }
            Predicate::Or(a, b) => {
                a.fill_mask(batch, mask);
                let mut rhs = vec![0u8; mask.len()];
                b.fill_mask(batch, &mut rhs);
                for (m, r) in mask.iter_mut().zip(&rhs) {
                    *m |= r;
                }
            }
            Predicate::Not(a) => {
                a.fill_mask(batch, mask);
                for m in mask.iter_mut() {
                    *m ^= 1;
                }
            }
        }
    }
}

/// Mask kernel for one `column <op> literal` comparison. Dispatches once
/// on (column type, literal type), then runs a tight monomorphised loop.
/// Pairs [`Value::compare`] deems incomparable yield an all-false mask.
fn fill_compare_mask(col: &ColumnData, op: CmpOp, literal: &Value, mask: &mut [u8]) {
    match (col, literal) {
        (ColumnData::Int(vals), Value::Int(lit)) => cmp_mask(vals, *lit, op, mask),
        (ColumnData::Float(vals), Value::Float(lit)) => cmp_mask(vals, *lit, op, mask),
        (ColumnData::Date(vals), Value::Date(lit)) => cmp_mask(vals, *lit, op, mask),
        // Int/float mixing follows the scalar path: widen to f64.
        (ColumnData::Int(vals), Value::Float(lit)) => {
            cmp_mask_by(vals, *lit, op, mask, |v| v as f64)
        }
        (ColumnData::Float(vals), Value::Int(lit)) => cmp_mask(vals, *lit as f64, op, mask),
        (ColumnData::Str(col), Value::Str(lit)) => {
            // One comparison per *dictionary entry*, then a table lookup
            // per row — string compares cost O(|dict|), not O(rows).
            let table: Vec<u8> = col
                .dict
                .iter()
                .map(|d| op.test(Some(d.as_ref().cmp(lit.as_str()))) as u8)
                .collect();
            for (m, &code) in mask.iter_mut().zip(&col.codes) {
                *m = table[code as usize];
            }
        }
        // Incomparable type pairs: Value::compare returns None, every
        // CmpOp::test(None) is false.
        _ => mask.fill(0),
    }
}

/// Branch-free comparison loop. `Ne` is `(v < lit) | (v > lit)` rather
/// than `v != lit` so NaN (incomparable in the scalar path) fails it;
/// for totally ordered types the two are identical.
fn cmp_mask<T: PartialOrd + Copy>(vals: &[T], lit: T, op: CmpOp, mask: &mut [u8]) {
    cmp_mask_by(vals, lit, op, mask, |v| v)
}

/// [`cmp_mask`] with a per-element conversion (int column vs float
/// literal), kept generic so each (type, op) pair monomorphises to a
/// vectorisable loop.
fn cmp_mask_by<T: Copy, U: PartialOrd + Copy>(
    vals: &[T],
    lit: U,
    op: CmpOp,
    mask: &mut [u8],
    conv: impl Fn(T) -> U + Copy,
) {
    macro_rules! run {
        ($test:expr) => {
            for (m, &v) in mask.iter_mut().zip(vals) {
                let v = conv(v);
                *m = $test(v) as u8;
            }
        };
    }
    match op {
        CmpOp::Eq => run!(|v: U| v == lit),
        CmpOp::Ne => run!(|v: U| (v < lit) | (v > lit)),
        CmpOp::Lt => run!(|v: U| v < lit),
        CmpOp::Le => run!(|v: U| v <= lit),
        CmpOp::Gt => run!(|v: U| v > lit),
        CmpOp::Ge => run!(|v: U| v >= lit),
    }
}

/// Helper for schema-aware rendering of predicates.
pub struct PredicateDisplay<'a> {
    pred: &'a Predicate,
    schema: &'a Schema,
}

impl fmt::Display for PredicateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |c: usize| self.schema.field(c).name.as_str();
        match self.pred {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Compare {
                column,
                op,
                literal,
            } => write!(f, "{} {op} {literal}", name(*column)),
            Predicate::Between { column, low, high } => {
                write!(f, "{} BETWEEN {low} AND {high}", name(*column))
            }
            Predicate::And(a, b) => write!(
                f,
                "({} AND {})",
                a.display(self.schema),
                b.display(self.schema)
            ),
            Predicate::Or(a, b) => write!(
                f,
                "({} OR {})",
                a.display(self.schema),
                b.display(self.schema)
            ),
            Predicate::Not(a) => write!(f, "NOT {}", a.display(self.schema)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn rec(q: i64, d: f64) -> Record {
        Record::new(vec![Value::Int(q), Value::Float(d)])
    }

    #[test]
    fn comparisons() {
        let p = Predicate::Compare {
            column: 0,
            op: CmpOp::Ge,
            literal: Value::Int(10),
        };
        assert!(p.eval(&rec(10, 0.0)));
        assert!(p.eval(&rec(11, 0.0)));
        assert!(!p.eval(&rec(9, 0.0)));
    }

    #[test]
    fn between_is_inclusive() {
        let p = Predicate::Between {
            column: 1,
            low: Value::Float(0.05),
            high: Value::Float(0.07),
        };
        assert!(p.eval(&rec(0, 0.05)));
        assert!(p.eval(&rec(0, 0.07)));
        assert!(!p.eval(&rec(0, 0.071)));
    }

    #[test]
    fn connectives() {
        let a = Predicate::eq(0, Value::Int(1));
        let b = Predicate::eq(1, Value::Float(0.5));
        let and = Predicate::And(Box::new(a.clone()), Box::new(b.clone()));
        let or = Predicate::Or(Box::new(a.clone()), Box::new(b.clone()));
        let not = Predicate::Not(Box::new(a.clone()));
        assert!(and.eval(&rec(1, 0.5)));
        assert!(!and.eval(&rec(1, 0.4)));
        assert!(or.eval(&rec(1, 0.4)));
        assert!(or.eval(&rec(2, 0.5)));
        assert!(!or.eval(&rec(2, 0.4)));
        assert!(not.eval(&rec(2, 0.0)));
        assert!(Predicate::True.eval(&rec(0, 0.0)));
    }

    #[test]
    fn type_mismatch_fails_comparison() {
        let p = Predicate::eq(0, Value::Str("x".into()));
        assert!(!p.eval(&rec(1, 0.0)));
        // But Ne on incomparable values is also false (SQL unknown).
        let p = Predicate::Compare {
            column: 0,
            op: CmpOp::Ne,
            literal: Value::Str("x".into()),
        };
        assert!(!p.eval(&rec(1, 0.0)));
    }

    #[test]
    fn max_column_spans_the_tree() {
        let p = Predicate::And(
            Box::new(Predicate::eq(3, Value::Int(0))),
            Box::new(Predicate::Not(Box::new(Predicate::eq(7, Value::Int(0))))),
        );
        assert_eq!(p.max_column(), Some(7));
        assert_eq!(Predicate::True.max_column(), None);
    }

    #[test]
    fn display_uses_schema_names() {
        let s = Schema::new(vec![("qty", ColumnType::Int), ("disc", ColumnType::Float)]);
        let p = Predicate::And(
            Box::new(Predicate::eq(0, Value::Int(5))),
            Box::new(Predicate::Between {
                column: 1,
                low: Value::Float(0.01),
                high: Value::Float(0.02),
            }),
        );
        assert_eq!(
            p.display(&s).to_string(),
            "(qty = 5 AND disc BETWEEN 0.01 AND 0.02)"
        );
    }

    // --- vectorised-vs-scalar pinning (NaN, mixed numerics, edge cases) ---

    use crate::batch::RecordBatch;

    fn nschema() -> Schema {
        Schema::new(vec![("q", ColumnType::Int), ("d", ColumnType::Float)])
    }

    fn batch_of(rows: &[(i64, f64)]) -> RecordBatch {
        let records: Vec<Record> = rows.iter().map(|&(q, d)| rec(q, d)).collect();
        RecordBatch::from_records(&nschema(), &records)
    }

    /// Both paths on the same batch must agree exactly.
    fn assert_paths_agree(p: &Predicate, batch: &RecordBatch) {
        assert_eq!(
            p.eval_batch(batch),
            p.eval_batch_scalar(batch),
            "vectorised != scalar for {p:?}"
        );
    }

    fn cmp(column: usize, op: CmpOp, literal: Value) -> Predicate {
        Predicate::Compare {
            column,
            op,
            literal,
        }
    }

    #[test]
    fn batch_nan_elements_fail_every_operator() {
        let batch = batch_of(&[(1, f64::NAN), (2, 0.5), (3, f64::NAN)]);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let p = cmp(1, op, Value::Float(0.5));
            assert_paths_agree(&p, &batch);
            // NaN rows never appear, whatever the operator.
            assert!(p.eval_batch(&batch).iter().all(|&i| i == 1), "{op:?}");
        }
    }

    #[test]
    fn batch_nan_literal_selects_nothing() {
        let batch = batch_of(&[(1, 0.5), (2, f64::NAN)]);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let p = cmp(1, op, Value::Float(f64::NAN));
            assert_paths_agree(&p, &batch);
            assert!(p.eval_batch(&batch).is_empty(), "{op:?}");
        }
        // ...including through NOT, where NaN rows *do* pass (unknown
        // collapsed to false, then negated).
        let not = Predicate::Not(Box::new(cmp(1, CmpOp::Eq, Value::Float(f64::NAN))));
        assert_paths_agree(&not, &batch);
        assert_eq!(not.eval_batch(&batch), vec![0, 1]);
    }

    #[test]
    fn batch_nan_between_matches_scalar() {
        let batch = batch_of(&[(0, f64::NAN), (0, 0.05), (0, 0.2)]);
        let p = Predicate::Between {
            column: 1,
            low: Value::Float(0.0),
            high: Value::Float(0.1),
        };
        assert_paths_agree(&p, &batch);
        assert_eq!(p.eval_batch(&batch), vec![1]);
    }

    #[test]
    fn batch_mixed_int_float_comparisons() {
        let batch = batch_of(&[(1, 1.0), (2, 2.5), (3, 3.0)]);
        // Int column vs float literal widens per element.
        let p = cmp(0, CmpOp::Ge, Value::Float(2.0));
        assert_paths_agree(&p, &batch);
        assert_eq!(p.eval_batch(&batch), vec![1, 2]);
        // Float column vs int literal widens the literal.
        let p = cmp(1, CmpOp::Eq, Value::Int(3));
        assert_paths_agree(&p, &batch);
        assert_eq!(p.eval_batch(&batch), vec![2]);
        // Ne over floats with an int literal stays NaN-aware.
        let nan = batch_of(&[(0, f64::NAN), (0, 4.0)]);
        let p = cmp(1, CmpOp::Ne, Value::Int(3));
        assert_paths_agree(&p, &nan);
        assert_eq!(p.eval_batch(&nan), vec![1]);
    }

    #[test]
    fn batch_type_mismatch_is_constant_false() {
        let batch = batch_of(&[(1, 1.0), (2, 2.0)]);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt] {
            let p = cmp(0, op, Value::Str("x".into()));
            assert_paths_agree(&p, &batch);
            assert!(p.eval_batch(&batch).is_empty());
        }
    }

    #[test]
    fn batch_empty_input() {
        let batch = batch_of(&[]);
        let p = Predicate::Or(
            Box::new(cmp(0, CmpOp::Eq, Value::Int(1))),
            Box::new(Predicate::Not(Box::new(Predicate::True))),
        );
        assert_paths_agree(&p, &batch);
        assert!(p.eval_batch(&batch).is_empty());
        assert!(Predicate::True.eval_batch(&batch).is_empty());
    }

    #[test]
    fn batch_connectives_and_strings() {
        let schema = Schema::new(vec![("q", ColumnType::Int), ("mode", ColumnType::Str)]);
        let records: Vec<Record> = [(1, "AIR"), (2, "SHIP"), (3, "AIR"), (4, "RAIL")]
            .iter()
            .map(|&(q, m)| Record::new(vec![Value::Int(q), Value::Str(m.into())]))
            .collect();
        let batch = RecordBatch::from_records(&schema, &records);
        let p = Predicate::And(
            Box::new(cmp(1, CmpOp::Eq, Value::Str("AIR".into()))),
            Box::new(cmp(0, CmpOp::Gt, Value::Int(1))),
        );
        assert_paths_agree(&p, &batch);
        assert_eq!(p.eval_batch(&batch), vec![2]);
        let p = Predicate::Or(
            Box::new(cmp(1, CmpOp::Lt, Value::Str("B".into()))),
            Box::new(cmp(0, CmpOp::Eq, Value::Int(2))),
        );
        assert_paths_agree(&p, &batch);
        assert_eq!(p.eval_batch(&batch), vec![0, 1, 2]);
    }
}
