//! Column schemas: names, types, and name→index resolution.

use std::fmt;

use crate::value::Value;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Days since the TPC-H epoch.
    Date,
}

impl ColumnType {
    /// Whether a runtime value inhabits this type.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_)) // ints coerce to float
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Date, Value::Date(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "STRING",
            ColumnType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// One column: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (matched case-insensitively).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate (case-insensitive) column names.
    pub fn new(fields: Vec<(&str, ColumnType)>) -> Self {
        let fields: Vec<Field> = fields
            .into_iter()
            .map(|(name, ty)| Field {
                name: name.to_string(),
                ty,
            })
            .collect();
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[i + 1..] {
                assert!(
                    !f.name.eq_ignore_ascii_case(&g.name),
                    "duplicate column name: {}",
                    f.name
                );
            }
        }
        Schema { fields }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The field at a position.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Resolve a column name (case-insensitive) to its index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fld.name, fld.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_is_case_insensitive() {
        let s = Schema::new(vec![
            ("L_ORDERKEY", ColumnType::Int),
            ("l_comment", ColumnType::Str),
        ]);
        assert_eq!(s.index_of("l_orderkey"), Some(0));
        assert_eq!(s.index_of("L_COMMENT"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn admits_checks_types_with_int_to_float_coercion() {
        assert!(ColumnType::Int.admits(&Value::Int(1)));
        assert!(!ColumnType::Int.admits(&Value::Float(1.0)));
        assert!(ColumnType::Float.admits(&Value::Int(1)));
        assert!(ColumnType::Float.admits(&Value::Float(1.0)));
        assert!(ColumnType::Date.admits(&Value::Date(0)));
        assert!(!ColumnType::Str.admits(&Value::Int(0)));
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_panic() {
        Schema::new(vec![("a", ColumnType::Int), ("A", ColumnType::Str)]);
    }

    #[test]
    fn display() {
        let s = Schema::new(vec![("a", ColumnType::Int)]);
        assert_eq!(s.to_string(), "(a INT)");
    }
}
