//! The paper's experiment predicates — Table III.
//!
//! "Corresponding to each degree of skew (z = 0, 1, 2), we chose an
//! arbitrary column and formed a corresponding predicate. … The overall
//! selectivity of the dataset to each predicate was fixed at 0.05%"
//! (Section V-B). The concrete columns/values are our instantiation (the
//! paper does not print them); what matters — one column per skew level,
//! equality predicates, 0.05% selectivity — is preserved.

use std::fmt;

use crate::lineitem::{col, LineItemFactory};
use crate::predicate::Predicate;
use crate::value::Value;

/// Degree of skew in the distribution of matching records across input
/// partitions (the Zipf exponent of Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkewLevel {
    /// z = 0 — matching records spread evenly.
    Zero,
    /// z = 1 — moderate skew.
    Moderate,
    /// z = 2 — high skew.
    High,
}

impl SkewLevel {
    /// The Zipf exponent.
    pub fn z(self) -> f64 {
        match self {
            SkewLevel::Zero => 0.0,
            SkewLevel::Moderate => 1.0,
            SkewLevel::High => 2.0,
        }
    }

    /// All levels, in paper order.
    pub fn all() -> [SkewLevel; 3] {
        [SkewLevel::Zero, SkewLevel::Moderate, SkewLevel::High]
    }
}

impl fmt::Display for SkewLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SkewLevel::Zero => "zero (z=0)",
            SkewLevel::Moderate => "moderate (z=1)",
            SkewLevel::High => "high (z=2)",
        };
        f.write_str(s)
    }
}

/// The overall predicate selectivity fixed across all experiments (0.05%).
pub const PAPER_SELECTIVITY: f64 = 0.0005;

/// One row of Table III: the predicate associated with a skew level.
#[derive(Debug, Clone)]
pub struct PaperPredicate {
    /// Skew level this predicate's matches are distributed with.
    pub skew: SkewLevel,
    /// Human-readable SQL form (as it appears in the Hive query template).
    pub sql: &'static str,
    /// Sentinel column index in the LINEITEM schema.
    pub column: usize,
    /// Sentinel value.
    pub value: Value,
}

impl PaperPredicate {
    /// The predicate used for a given skew level.
    pub fn for_skew(skew: SkewLevel) -> PaperPredicate {
        match skew {
            SkewLevel::Zero => PaperPredicate {
                skew,
                sql: "L_QUANTITY = 200",
                column: col::QUANTITY,
                value: Value::Int(200),
            },
            SkewLevel::Moderate => PaperPredicate {
                skew,
                sql: "L_DISCOUNT = 0.99",
                column: col::DISCOUNT,
                value: Value::Float(0.99),
            },
            SkewLevel::High => PaperPredicate {
                skew,
                sql: "L_TAX = 0.77",
                column: col::TAX,
                value: Value::Float(0.77),
            },
        }
    }

    /// The record factory that plants matches for this predicate.
    pub fn factory(&self) -> LineItemFactory {
        LineItemFactory::new(self.column, self.value.clone())
    }

    /// The evaluable predicate AST.
    pub fn predicate(&self) -> Predicate {
        Predicate::eq(self.column, self.value.clone())
    }

    /// All of Table III.
    pub fn table3() -> Vec<PaperPredicate> {
        SkewLevel::all()
            .into_iter()
            .map(PaperPredicate::for_skew)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_simkit::rng::DetRng;

    #[test]
    fn exponents_match_levels() {
        assert_eq!(SkewLevel::Zero.z(), 0.0);
        assert_eq!(SkewLevel::Moderate.z(), 1.0);
        assert_eq!(SkewLevel::High.z(), 2.0);
        assert_eq!(SkewLevel::all().len(), 3);
    }

    #[test]
    fn table3_has_one_distinct_column_per_level() {
        use crate::generator::RecordFactory;
        let rows = PaperPredicate::table3();
        assert_eq!(rows.len(), 3);
        let mut cols: Vec<usize> = rows.iter().map(|r| r.column).collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3, "each skew level uses its own column");
        // Each predicate's factory plants records that its own predicate accepts.
        let mut rng = DetRng::seed_from(1);
        for row in &rows {
            let f = row.factory();
            assert!(row.predicate().eval(&f.matching(&mut rng)));
            assert!(!row.predicate().eval(&f.filler(&mut rng)));
        }
    }

    #[test]
    fn selectivity_constant_is_half_a_permille() {
        assert_eq!(PAPER_SELECTIVITY, 0.0005);
    }
}
