//! # incmr-data
//!
//! The dataset substrate for the predicate-based-sampling reproduction: a
//! TPC-H `LINEITEM`-style table, generated deterministically, with
//! predicate-matching records **planted** into input partitions following a
//! Zipfian distribution — exactly the construction of Section V-B of the
//! paper ("Modeling data skew").
//!
//! Key pieces:
//!
//! * [`schema`] / [`value`] — a small column-typed record model,
//! * [`batch`] — columnar (SoA) record batches with dictionary-encoded
//!   strings and selection vectors: the zero-copy hot-path representation
//!   (rows remain the boundary format),
//! * [`lineitem`] — the LINEITEM schema and natural column generators,
//! * [`predicate`] — a predicate AST with an evaluator (what the sampling
//!   mapper runs against every record),
//! * [`skew`] — Zipfian assignment of matching records to partitions
//!   (Figure 4's generator),
//! * [`generator`] — per-split deterministic record streams, in both *full*
//!   mode (every record materialised and predicate-tested) and *planted*
//!   mode (only matching records materialised; equivalence is
//!   property-tested),
//! * [`dataset`] — end-to-end dataset construction onto an `incmr-dfs`
//!   namespace (Table II), and
//! * [`queries`] — the experiment predicates, one per skew level
//!   (Table III).

pub mod batch;
pub mod dataset;
pub mod generator;
pub mod lineitem;
pub mod predicate;
pub mod queries;
pub mod schema;
pub mod skew;
pub mod value;

pub use batch::{
    BatchBuilder, BatchSelection, ColumnData, RecordBatch, SelectionVector, StrColumn,
};
pub use dataset::{
    Dataset, DatasetSpec, SplitPlan, Table2Row, PARTITIONS_PER_SCALE, ROWS_PER_SCALE, ROW_BYTES,
};
pub use generator::{RecordFactory, SplitGenerator, SplitSpec};
pub use lineitem::LineItemFactory;
pub use predicate::{CmpOp, Predicate};
pub use queries::{PaperPredicate, SkewLevel};
pub use schema::{ColumnType, Field, Schema};
pub use value::{Record, Value};
