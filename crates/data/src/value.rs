//! Values and records.
//!
//! A [`Record`] is a positional tuple of [`Value`]s; column names and types
//! live in the companion [`crate::schema::Schema`]. Values are kept simple —
//! the four types LINEITEM needs — with total ordering within a type so
//! predicates can use range comparisons.

use std::cmp::Ordering;
use std::fmt;

/// A single column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (prices, discounts, taxes).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// A date as days since 1992-01-01 (the TPC-H epoch).
    Date(u32),
}

impl Value {
    /// Type-aware comparison. Values of different types are incomparable
    /// (`None`), as are NaN floats.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            // Allow int/float mixing, as SQL does.
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// Approximate serialized width in bytes, used by the storage size model.
    pub fn width(&self) -> u64 {
        match self {
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() as u64,
            Value::Date(_) => 4,
        }
    }

    /// Human-readable type name (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Date(_) => "date",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "'{v}'"),
            Value::Date(d) => {
                // Render as an approximate ISO date from the TPC-H epoch.
                let year = 1992 + d / 365;
                let doy = d % 365;
                write!(f, "{year}-{:03}", doy + 1)
            }
        }
    }
}

/// A row: positional values matching some schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Build a record from values.
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// Value of column `idx`.
    ///
    /// # Panics
    /// Panics if the index is out of range — records are always produced to
    /// match their schema, so this indicates a compiler/generator bug.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Project the record down to the given column indices (in that order).
    pub fn project(&self, columns: &[usize]) -> Record {
        Record::new(columns.iter().map(|&c| self.values[c].clone()).collect())
    }

    /// Approximate serialized width in bytes.
    pub fn width(&self) -> u64 {
        self.values.iter().map(Value::width).sum()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_within_types() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Float(2.5).compare(&Value::Float(2.5)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Str("b".into()).compare(&Value::Str("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Date(10).compare(&Value::Date(20)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn compare_mixes_numerics_only() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).compare(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(1).compare(&Value::Str("1".into())), None);
        assert_eq!(Value::Float(f64::NAN).compare(&Value::Float(1.0)), None);
    }

    #[test]
    fn record_access_and_projection() {
        let r = Record::new(vec![
            Value::Int(7),
            Value::Str("x".into()),
            Value::Float(1.5),
        ]);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(1), &Value::Str("x".into()));
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Float(1.5), Value::Int(7)]);
    }

    #[test]
    fn width_model() {
        let r = Record::new(vec![
            Value::Int(7),
            Value::Str("abcd".into()),
            Value::Date(3),
        ]);
        assert_eq!(r.width(), 8 + 4 + 4);
    }

    #[test]
    fn display_is_compact() {
        let r = Record::new(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(r.to_string(), "(1, 'a')");
    }
}
