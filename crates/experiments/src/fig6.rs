//! Figure 6 — homogeneous multi-user workload: cluster throughput
//! (jobs/hour), CPU utilisation (%), and disk reads (KB/s per disk) for
//! each policy, under a uniform and a highly-skewed (z = 2) distribution
//! of matching records.
//!
//! Expected shape (Section V-D): the Hadoop policy gives the least
//! throughput with the *highest* CPU and disk usage; throughput improves
//! as policies become less aggressive (HA → MA → LA), with C slightly
//! worse than LA ("more conservative than needed"); skew lowers throughput
//! for every dynamic policy but leaves Hadoop unchanged.

use incmr_core::Policy;
use incmr_data::SkewLevel;
use incmr_mapreduce::{FifoScheduler, MrRuntime};
use incmr_workload::{run_workload, WorkloadSpec};

use crate::calibration::Calibration;
use crate::render;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// Policy name.
    pub policy: String,
    /// Skew of the matching-record distribution.
    pub skew: SkewLevel,
    /// Steady-state throughput, jobs/hour.
    pub jobs_per_hour: f64,
    /// Mean CPU utilisation, percent.
    pub cpu_util_pct: f64,
    /// Mean disk reads, KB/s per disk.
    pub disk_kb_per_sec: f64,
    /// Mean partitions processed per completed job.
    pub partitions_per_job: f64,
}

/// The complete Figure 6 result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// All cells, uniform first then z = 2, policies in Table I order.
    pub cells: Vec<Fig6Cell>,
}

impl Fig6Result {
    /// Look up one cell.
    ///
    /// # Panics
    /// Panics if the combination was not run.
    pub fn get(&self, skew: SkewLevel, policy: &str) -> &Fig6Cell {
        self.cells
            .iter()
            .find(|c| c.skew == skew && c.policy == policy)
            .unwrap_or_else(|| panic!("no cell for {skew:?}/{policy}"))
    }
}

/// Run the homogeneous workload for every policy under uniform and high
/// skew.
pub fn run(cal: &Calibration) -> Fig6Result {
    run_with_skews(cal, &[SkewLevel::Zero, SkewLevel::High])
}

/// Run for a chosen set of skews (tests use a single skew to stay fast).
pub fn run_with_skews(cal: &Calibration, skews: &[SkewLevel]) -> Fig6Result {
    let mut cells = Vec::new();
    for &skew in skews {
        for policy in Policy::table1() {
            let (ns, datasets) = cal.build_copies(skew, 7_000 + skew.z() as u64);
            let mut rt = MrRuntime::new(
                cal.cluster_multi,
                cal.cost,
                ns,
                Box::new(FifoScheduler::new()),
            );
            let spec = WorkloadSpec::homogeneous(
                datasets,
                cal.k,
                policy.clone(),
                cal.warmup,
                cal.measure,
                11,
            );
            let report = run_workload(&mut rt, &spec);
            cells.push(Fig6Cell {
                policy: policy.name.clone(),
                skew,
                jobs_per_hour: report.sampling_jobs_per_hour(),
                cpu_util_pct: report.metrics.cpu_util_pct,
                disk_kb_per_sec: report.metrics.disk_kb_per_sec,
                partitions_per_job: report.sampling_splits_processed.mean(),
            });
        }
    }
    Fig6Result { cells }
}

/// Render the figure as one table per skew.
pub fn render_figure(result: &Fig6Result) -> String {
    let mut out = String::from("FIGURE 6 — HOMOGENEOUS MULTI-USER WORKLOAD\n");
    for skew in [SkewLevel::Zero, SkewLevel::High] {
        let rows: Vec<Vec<String>> = result
            .cells
            .iter()
            .filter(|c| c.skew == skew)
            .map(|c| {
                vec![
                    c.policy.clone(),
                    render::f1(c.jobs_per_hour),
                    render::f1(c.cpu_util_pct),
                    render::f1(c.disk_kb_per_sec),
                    render::f1(c.partitions_per_job),
                ]
            })
            .collect();
        if rows.is_empty() {
            continue;
        }
        out.push('\n');
        out.push_str(&render::table(
            &format!("skew {skew}"),
            &[
                "Policy",
                "Throughput (jobs/h)",
                "CPU util (%)",
                "Disk reads (KB/s)",
                "Partitions/job",
            ],
            &rows,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_uniform() -> Fig6Result {
        run_with_skews(&Calibration::quick(), &[SkewLevel::Zero])
    }

    #[test]
    fn hadoop_has_least_throughput_and_most_resource_usage() {
        let r = quick_uniform();
        let hadoop = r.get(SkewLevel::Zero, "Hadoop");
        for p in ["HA", "MA", "LA"] {
            let c = r.get(SkewLevel::Zero, p);
            assert!(
                c.jobs_per_hour > hadoop.jobs_per_hour,
                "{p} ({:.0} jobs/h) should beat Hadoop ({:.0})",
                c.jobs_per_hour,
                hadoop.jobs_per_hour
            );
        }
        // Max resource usage despite min throughput — the paper's
        // headline. HA is almost as aggressive as Hadoop and saturates the
        // same slots, so it is compared with a tolerance; the conservative
        // policies must be clearly below.
        for p in ["MA", "LA", "C"] {
            let c = r.get(SkewLevel::Zero, p);
            assert!(
                hadoop.cpu_util_pct >= c.cpu_util_pct,
                "{p} CPU: {} vs Hadoop {}",
                c.cpu_util_pct,
                hadoop.cpu_util_pct
            );
            assert!(hadoop.disk_kb_per_sec >= c.disk_kb_per_sec);
        }
        let ha = r.get(SkewLevel::Zero, "HA");
        assert!(hadoop.cpu_util_pct >= 0.9 * ha.cpu_util_pct);
        assert!(hadoop.disk_kb_per_sec >= 0.9 * ha.disk_kb_per_sec);
    }

    #[test]
    fn less_aggressive_policies_process_fewer_partitions() {
        let r = quick_uniform();
        let parts = |p: &str| r.get(SkewLevel::Zero, p).partitions_per_job;
        assert!(parts("Hadoop") > parts("HA"));
        assert!(parts("HA") >= parts("LA"));
    }

    #[test]
    fn rendering_lists_every_policy() {
        let r = quick_uniform();
        let out = render_figure(&r);
        for p in ["Hadoop", "HA", "MA", "LA", "C"] {
            assert!(out.contains(p));
        }
    }
}
