//! Figure 5 — single-user workload: response time as a function of dataset
//! size and skew for each policy (panels a–c), and the number of
//! partitions processed per job (panel d, shown for moderate skew).
//!
//! Expected shape (Section V-C): the Hadoop policy's response time grows
//! with input size and is skew-independent; HA/MA are the best dynamic
//! policies on an otherwise-idle cluster; conservatism (LA, C) costs the
//! most under high skew; partitions processed are maximal under Hadoop and
//! shrink as policies get less aggressive.

use incmr_core::{build_sampling_job, Policy, SampleMode};
use incmr_data::SkewLevel;
use incmr_mapreduce::{FifoScheduler, MrRuntime, ScanMode};
use incmr_simkit::rng::splitmix64;

use crate::calibration::Calibration;
use crate::render;

/// One measured point (averaged over the calibration's seeds).
#[derive(Debug, Clone)]
pub struct Fig5Cell {
    /// Data skew of the dataset.
    pub skew: SkewLevel,
    /// Dataset scale.
    pub scale: u32,
    /// Policy name.
    pub policy: String,
    /// Mean job response time, seconds.
    pub response_secs: f64,
    /// Mean partitions processed per job (panel d).
    pub partitions: f64,
}

/// The complete Figure 5 grid.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// All measured cells.
    pub cells: Vec<Fig5Cell>,
}

impl Fig5Result {
    /// Look up one cell.
    ///
    /// # Panics
    /// Panics if the combination was not part of the run.
    pub fn get(&self, skew: SkewLevel, scale: u32, policy: &str) -> &Fig5Cell {
        self.cells
            .iter()
            .find(|c| c.skew == skew && c.scale == scale && c.policy == policy)
            .unwrap_or_else(|| panic!("no cell for {skew:?}/{scale}/{policy}"))
    }
}

/// Run the full grid: skews × scales × policies, averaged over seeds.
pub fn run(cal: &Calibration) -> Fig5Result {
    let mut cells = Vec::new();
    for skew in SkewLevel::all() {
        for &scale in &cal.scales {
            for policy in Policy::table1() {
                let mut resp = 0.0;
                let mut parts = 0.0;
                for &seed in &cal.seeds {
                    let (ns, ds) = cal.build_world(scale, skew, seed);
                    let mut rt = MrRuntime::new(
                        cal.cluster_single,
                        cal.cost,
                        ns,
                        Box::new(FifoScheduler::new()),
                    );
                    let job_seed = splitmix64(seed ^ splitmix64(scale as u64));
                    let (spec, driver) = build_sampling_job(
                        &ds,
                        cal.k,
                        policy.clone(),
                        ScanMode::Planted,
                        SampleMode::FirstK,
                        job_seed,
                    );
                    let id = rt.submit(spec, driver);
                    rt.run_until_idle();
                    let r = rt.job_result(id);
                    resp += r.response_time().as_secs_f64();
                    parts += r.splits_processed as f64;
                }
                let n = cal.seeds.len() as f64;
                cells.push(Fig5Cell {
                    skew,
                    scale,
                    policy: policy.name.clone(),
                    response_secs: resp / n,
                    partitions: parts / n,
                });
            }
        }
    }
    Fig5Result { cells }
}

/// Render all four panels.
pub fn render_figure(cal: &Calibration, result: &Fig5Result) -> String {
    let policies: Vec<String> = Policy::table1().into_iter().map(|p| p.name).collect();
    let mut out = String::from("FIGURE 5 — SINGLE-USER WORKLOAD\n");
    for (panel, skew) in [
        ('a', SkewLevel::Zero),
        ('b', SkewLevel::Moderate),
        ('c', SkewLevel::High),
    ] {
        let rows: Vec<Vec<String>> = cal
            .scales
            .iter()
            .map(|&scale| {
                let mut row = vec![format!("{scale}x")];
                for p in &policies {
                    row.push(render::f1(result.get(skew, scale, p).response_secs));
                }
                row
            })
            .collect();
        let header: Vec<&str> = std::iter::once("scale")
            .chain(policies.iter().map(|s| s.as_str()))
            .collect();
        out.push('\n');
        out.push_str(&render::table(
            &format!("({panel}) response time (s), skew {skew}"),
            &header,
            &rows,
        ));
    }
    // Panel (d): partitions processed, moderate skew.
    let rows: Vec<Vec<String>> = cal
        .scales
        .iter()
        .map(|&scale| {
            let mut row = vec![format!("{scale}x")];
            for p in &policies {
                row.push(render::f1(
                    result.get(SkewLevel::Moderate, scale, p).partitions,
                ));
            }
            row
        })
        .collect();
    let header: Vec<&str> = std::iter::once("scale")
        .chain(policies.iter().map(|s| s.as_str()))
        .collect();
    out.push('\n');
    out.push_str(&render::table(
        "(d) partitions processed per job, moderate skew",
        &header,
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_result() -> (Calibration, Fig5Result) {
        let mut cal = Calibration::quick();
        cal.seeds = vec![301]; // one seed keeps the test fast
        let r = run(&cal);
        (cal, r)
    }

    #[test]
    fn hadoop_response_grows_with_scale_and_ignores_skew() {
        let (cal, r) = quick_result();
        let smallest = *cal.scales.first().unwrap();
        let largest = *cal.scales.last().unwrap();
        let small = r.get(SkewLevel::Zero, smallest, "Hadoop").response_secs;
        let large = r.get(SkewLevel::Zero, largest, "Hadoop").response_secs;
        assert!(
            large > small * 2.0,
            "Hadoop: {small}s @ {smallest}x vs {large}s @ {largest}x"
        );
        // Skew independence: z=0 vs z=2 within 10%.
        let z0 = r.get(SkewLevel::Zero, largest, "Hadoop").response_secs;
        let z2 = r.get(SkewLevel::High, largest, "Hadoop").response_secs;
        assert!(
            (z0 - z2).abs() / z0 < 0.10,
            "Hadoop skew-dependent: {z0} vs {z2}"
        );
    }

    #[test]
    fn hadoop_processes_all_partitions_dynamics_fewer() {
        let (cal, r) = quick_result();
        let largest = *cal.scales.last().unwrap();
        let total = (largest * cal.partitions_per_scale) as f64;
        assert_eq!(
            r.get(SkewLevel::Moderate, largest, "Hadoop").partitions,
            total
        );
        for p in ["HA", "MA", "LA", "C"] {
            let parts = r.get(SkewLevel::Moderate, largest, p).partitions;
            assert!(
                parts < total,
                "{p} should process fewer than {total}, got {parts}"
            );
        }
    }

    #[test]
    fn ha_beats_hadoop_at_the_largest_scale() {
        let (cal, r) = quick_result();
        let largest = *cal.scales.last().unwrap();
        for skew in SkewLevel::all() {
            let hadoop = r.get(skew, largest, "Hadoop").response_secs;
            let ha = r.get(skew, largest, "HA").response_secs;
            assert!(ha < hadoop, "{skew}: HA {ha}s vs Hadoop {hadoop}s");
        }
    }

    #[test]
    fn conservatism_hurts_most_under_high_skew() {
        let (cal, r) = quick_result();
        let largest = *cal.scales.last().unwrap();
        let c_high = r.get(SkewLevel::High, largest, "C").response_secs;
        let ha_high = r.get(SkewLevel::High, largest, "HA").response_secs;
        assert!(
            c_high > ha_high,
            "C ({c_high}) should trail HA ({ha_high}) at high skew"
        );
    }

    #[test]
    fn rendering_contains_all_panels() {
        let (cal, r) = quick_result();
        let out = render_figure(&cal, &r);
        for p in ["(a)", "(b)", "(c)", "(d)"] {
            assert!(out.contains(p), "missing {p}");
        }
    }
}
