//! Figure 8 — the heterogeneous workload re-run under the Fair Scheduler,
//! plus the Section V-F locality / slot-occupancy comparison.
//!
//! Expected shape: the per-class trends of Figure 7 persist (conservative
//! sampling policies help both classes), but overall throughput *falls*
//! relative to FIFO, because delay scheduling trades slot occupancy for
//! locality — the paper measured Fair at 88% locality / 18% occupancy vs
//! FIFO's 57% / 44%.

use incmr_core::Policy;
use incmr_mapreduce::{FairScheduler, FifoScheduler};

use crate::calibration::Calibration;
use crate::fig7::{paper_fractions, run_hetero, HeteroResult};
use crate::render;

/// The Figure 8 bundle: Fair-Scheduler results plus the FIFO baseline for
/// the scheduler-impact comparison.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Heterogeneous workload under the Fair Scheduler.
    pub fair: HeteroResult,
    /// The same workload under FIFO (Figure 7's data, re-used for the
    /// locality/occupancy table).
    pub fifo: HeteroResult,
}

/// Run Figure 8 at full paper shape.
pub fn run(cal: &Calibration) -> Fig8Result {
    run_with(cal, &paper_fractions(), &Policy::table1())
}

/// Run with custom fractions/policies (tests use a reduced grid).
pub fn run_with(cal: &Calibration, fractions: &[f64], policies: &[Policy]) -> Fig8Result {
    let fair = run_hetero(cal, fractions, policies, "fair", || {
        Box::new(FairScheduler::paper_default())
    });
    let fifo = run_hetero(cal, fractions, policies, "fifo", || {
        Box::new(FifoScheduler::new())
    });
    Fig8Result { fair, fifo }
}

/// Render the figure plus the scheduler-impact table.
pub fn render_figure(result: &Fig8Result) -> String {
    let mut out = crate::fig7::render_figure("FIGURE 8 — HETEROGENEOUS WORKLOAD", &result.fair);
    out.push('\n');
    let rows = vec![
        vec![
            "FIFO (default)".to_string(),
            render::f1(result.fifo.mean_locality_pct()),
            render::f1(result.fifo.mean_occupancy_pct()),
        ],
        vec![
            "Fair".to_string(),
            render::f1(result.fair.mean_locality_pct()),
            render::f1(result.fair.mean_occupancy_pct()),
        ],
    ];
    out.push_str(&render::table(
        "Scheduler impact (Section V-F)",
        &["Scheduler", "Locality (%)", "Slot occupancy (%)"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_result() -> Fig8Result {
        run_with(
            &Calibration::quick(),
            &[0.5],
            &[Policy::hadoop(), Policy::la()],
        )
    }

    #[test]
    fn fair_scheduler_raises_locality() {
        let r = quick_result();
        assert!(
            r.fair.mean_locality_pct() > r.fifo.mean_locality_pct(),
            "fair {}% vs fifo {}%",
            r.fair.mean_locality_pct(),
            r.fifo.mean_locality_pct()
        );
    }

    #[test]
    fn fair_scheduler_lowers_occupancy() {
        let r = quick_result();
        assert!(
            r.fair.mean_occupancy_pct() < r.fifo.mean_occupancy_pct(),
            "fair {}% vs fifo {}%",
            r.fair.mean_occupancy_pct(),
            r.fifo.mean_occupancy_pct()
        );
    }

    #[test]
    fn per_class_trends_persist_under_fair() {
        let r = quick_result();
        let hadoop = r.fair.get(0.5, "Hadoop").non_sampling_jph;
        let la = r.fair.get(0.5, "LA").non_sampling_jph;
        assert!(la > hadoop, "LA ({la}) vs Hadoop ({hadoop}) under Fair");
    }

    #[test]
    fn rendering_has_the_scheduler_table() {
        let out = render_figure(&quick_result());
        assert!(out.contains("Scheduler impact"));
        assert!(out.contains("FIFO (default)"));
        assert!(out.contains("Fair"));
    }
}
