//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p incmr-experiments --bin repro            # everything, paper shape
//! cargo run --release -p incmr-experiments --bin repro -- --quick # scaled-down suite
//! cargo run --release -p incmr-experiments --bin repro -- fig5    # one artefact
//! ```
//!
//! Artefact names: `table1 table2 table3 fig4 fig5 fig6 fig7 fig8 fig_earl`.

use incmr_experiments::{
    ablations, calibration::Calibration, fig4, fig5, fig6, fig7, fig8, fig_earl, replication,
    table1, table2, table3,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cal = if quick {
        Calibration::quick()
    } else {
        Calibration::paper()
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = [
        "table1",
        "table2",
        "table3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig_earl",
        "ablations",
        "estimator",
        "replication",
    ];
    let chosen: Vec<&str> = if selected.is_empty() {
        all.to_vec()
    } else {
        selected
    };

    for name in &chosen {
        match *name {
            "table1" => println!("{}", table1::render_table()),
            "table2" => println!("{}", table2::render_table(&cal)),
            "table3" => println!("{}", table3::render_table(&cal)),
            "fig4" => {
                // Figure 4 always uses the paper's partition counts — it is
                // cheap — but honours the calibration's record counts.
                let panels = fig4::run(&cal, 42);
                println!("{}", fig4::render_figure(&panels));
            }
            "fig5" => {
                eprintln!(
                    "[fig5] single-user grid: {} scales x 3 skews x 5 policies x {} seeds…",
                    cal.scales.len(),
                    cal.seeds.len()
                );
                let r = fig5::run(&cal);
                println!("{}", fig5::render_figure(&cal, &r));
            }
            "fig6" => {
                eprintln!("[fig6] homogeneous workload: 5 policies x 2 skews…");
                let r = fig6::run(&cal);
                println!("{}", fig6::render_figure(&r));
            }
            "fig7" => {
                eprintln!("[fig7] heterogeneous workload (FIFO): 4 fractions x 5 policies…");
                let r = fig7::run(&cal);
                println!(
                    "{}",
                    fig7::render_figure("FIGURE 7 — HETEROGENEOUS WORKLOAD", &r)
                );
            }
            "fig8" => {
                eprintln!("[fig8] heterogeneous workload (Fair + FIFO baseline)…");
                let r = fig8::run(&cal);
                println!("{}", fig8::render_figure(&r));
            }
            "fig_earl" => {
                eprintln!(
                    "[fig_earl] error-bounded aggregation: 2 families x 3 skews x {} seeds…",
                    cal.seeds.len()
                );
                let r = fig_earl::run(&cal);
                println!("{}", fig_earl::render_figure(&r));
            }
            "replication" => {
                eprintln!(
                    "[replication] survival grid: {} scales x r=1/2/3 x {} seeds…",
                    cal.scales.len(),
                    cal.seeds.len()
                );
                let r = replication::run(&cal);
                println!("{}", replication::render_figure(&cal, &r));
            }
            "ablations" => {
                eprintln!("[ablations] design-choice sweeps…");
                println!("{}", ablations::render_all(&cal));
            }
            "estimator" => {
                let points = incmr_experiments::estimator_accuracy::run(
                    &cal,
                    &[0.05, 0.1, 0.25, 0.5, 0.75, 1.0],
                    &cal.seeds,
                );
                println!(
                    "{}",
                    incmr_experiments::estimator_accuracy::render_table(&points)
                );
            }
            other => {
                eprintln!("unknown artefact {other:?}; expected one of {all:?}");
                std::process::exit(2);
            }
        }
    }
}
