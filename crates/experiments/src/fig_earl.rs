//! Error-bounded approximate aggregation (EARL-style early results):
//! records scanned and achieved error versus full-scan ground truth.
//!
//! The grid runs `SUM(L_QUANTITY) … GROUP BY L_RETURNFLAG` with
//! `WITH ERROR 0.05 CONFIDENCE 0.95` over datasets whose matching-record
//! placement follows Zipf skew z = 0/1/2, in two families:
//!
//! * **bulk** — no predicate: every split contributes ~the same group
//!   totals, so the CLT bound resolves after a handful of splits and the
//!   job stops early regardless of placement skew;
//! * **filtered** — the planted predicate: per-split matching totals are
//!   Zipf-distributed, so the split-total variance (and hence the scan
//!   fraction needed to meet the bound) grows with z. This is the
//!   estimator-accuracy story of Section V-B replayed through the
//!   error-bounded stopping rule.
//!
//! Achieved error is always measured against the exact full-scan answer
//! on the same dataset, per group, worst group reported.

use std::collections::BTreeMap;
use std::sync::Arc;

use incmr_data::queries::PaperPredicate;
use incmr_data::{Dataset, DatasetSpec, SkewLevel, Value};
use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
use incmr_hiveql::{QueryOutput, Session, Submitted};
use incmr_mapreduce::{AggOutcome, ClusterConfig, CostModel, FifoScheduler, MrRuntime, ScanMode};
use incmr_simkit::rng::DetRng;

use crate::calibration::Calibration;
use crate::render;

/// Partitions in each fig_earl dataset (small splits keep the grid fast
/// while leaving the stopping rule plenty of room below 100%).
const PARTITIONS: u32 = 48;
/// Records per partition.
const RECORDS_PER_PARTITION: u64 = 2_000;
/// Fraction of records matching the planted predicate (deliberately far
/// above the paper's 0.05% so filtered group sums are well-populated).
const SELECTIVITY: f64 = 0.05;
/// The error bound under test.
pub const ERROR: f64 = 0.05;
/// The confidence under test.
pub const CONFIDENCE: f64 = 0.95;

/// One cell of the grid: a query family at a skew level, averaged over
/// seeds.
#[derive(Debug, Clone)]
pub struct EarlCell {
    /// Placement skew of the dataset.
    pub skew: SkewLevel,
    /// Whether the aggregate ran under the planted predicate.
    pub filtered: bool,
    /// Mean fraction of the full-scan record count actually scanned.
    pub scanned_fraction: f64,
    /// Mean worst-group relative error of the scaled estimate vs the
    /// exact answer.
    pub achieved_rel_error: f64,
    /// Runs whose job classified as `BoundMet` (vs `BudgetExhausted`).
    pub bound_met: u32,
    /// Total runs in the cell.
    pub runs: u32,
}

fn session_over(skew: SkewLevel, seed: u64) -> Session {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(seed);
    let spec = DatasetSpec {
        name: format!("earl_{skew:?}_{seed}"),
        partitions: PARTITIONS,
        records_per_partition: RECORDS_PER_PARTITION,
        skew,
        selectivity: SELECTIVITY,
        seed,
    };
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let rt = MrRuntime::new(
        ClusterConfig::paper_single_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    Session::builder()
        .runtime(rt)
        .table("lineitem", ds)
        .scan_mode(ScanMode::Full)
        .try_build()
        .expect("fig_earl session")
}

fn group_sums(rows: &[incmr_data::Record]) -> BTreeMap<String, f64> {
    rows.iter()
        .map(|row| {
            let Value::Str(g) = row.get(0) else {
                panic!("grouped rows lead with the group value: {row:?}")
            };
            let Value::Float(sum) = row.get(1) else {
                panic!("SUM renders as a float: {row:?}")
            };
            (g.clone(), *sum)
        })
        .collect()
}

/// Worst-group relative error of `est` against `truth` (a group missing
/// from the estimate counts as a 100% miss).
fn worst_rel_error(truth: &BTreeMap<String, f64>, est: &BTreeMap<String, f64>) -> f64 {
    truth
        .iter()
        .map(|(g, &t)| {
            let e = est.get(g).copied().unwrap_or(0.0);
            if t == 0.0 {
                if e == 0.0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                (e - t).abs() / t.abs()
            }
        })
        .fold(0.0, f64::max)
}

/// Run the grid: both families at every skew level, averaged over the
/// calibration's seeds.
pub fn run(cal: &Calibration) -> Vec<EarlCell> {
    let mut cells = Vec::new();
    for filtered in [false, true] {
        for skew in SkewLevel::all() {
            let mut scanned = 0.0;
            let mut err = 0.0;
            let mut bound_met = 0;
            let mut runs = 0;
            for &seed in &cal.seeds {
                let mut s = session_over(skew, seed);
                // Each skew level plants its own Table III predicate.
                let predicate = if filtered {
                    format!(" WHERE {}", PaperPredicate::for_skew(skew).sql)
                } else {
                    String::new()
                };
                let exact_sql = format!(
                    "SELECT SUM(L_QUANTITY) FROM lineitem{predicate} GROUP BY L_RETURNFLAG"
                );
                let QueryOutput::Rows {
                    rows: exact_rows,
                    records_processed: full_records,
                    ..
                } = s.execute(&exact_sql).expect("exact plan")
                else {
                    panic!("exact plan must return rows")
                };
                let truth = group_sums(&exact_rows);

                let est_sql = format!("{exact_sql} WITH ERROR {ERROR} CONFIDENCE {CONFIDENCE}");
                let Submitted::Pending(handle) = s.submit(&est_sql).expect("estimating plan")
                else {
                    panic!("estimating plan must submit a job")
                };
                let result = handle.wait(&mut s);
                assert!(!result.failed, "estimating job failed");
                let report = result.agg.expect("estimating plans attach a report");

                scanned += result.records_processed as f64 / full_records as f64;
                err += worst_rel_error(&truth, &group_sums(&result.rows));
                if matches!(report.outcome, AggOutcome::BoundMet) {
                    bound_met += 1;
                }
                runs += 1;
            }
            cells.push(EarlCell {
                skew,
                filtered,
                scanned_fraction: scanned / runs as f64,
                achieved_rel_error: err / runs as f64,
                bound_met,
                runs,
            });
        }
    }
    cells
}

/// Render the grid as a table.
pub fn render_figure(cells: &[EarlCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                if c.filtered { "filtered" } else { "bulk" }.to_string(),
                format!("z={}", c.skew.z()),
                format!("{:.0}%", c.scanned_fraction * 100.0),
                format!("{:.1}%", c.achieved_rel_error * 100.0),
                format!("{}/{}", c.bound_met, c.runs),
            ]
        })
        .collect();
    render::table(
        &format!("FIG EARL — ERROR-BOUNDED SUM/GROUP BY (e={ERROR}, c={CONFIDENCE}) vs FULL SCAN"),
        &["family", "skew", "scanned", "worst err", "bound met"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<EarlCell> {
        let mut cal = Calibration::quick();
        cal.seeds = vec![301, 302];
        run(&cal)
    }

    #[test]
    fn bulk_family_stops_under_half_the_scan_at_every_skew() {
        // The acceptance gate: a z=1-skewed SUM/GROUP BY under
        // WITH ERROR 0.05 CONFIDENCE 0.95 scans less than 50% of the
        // full-scan records — and the uniform per-split totals mean the
        // same holds at z=0 and z=2.
        for cell in grid().iter().filter(|c| !c.filtered) {
            assert!(
                cell.scanned_fraction < 0.5,
                "bulk z={} scanned {:.0}%",
                cell.skew.z(),
                cell.scanned_fraction * 100.0
            );
            assert!(
                cell.achieved_rel_error <= ERROR,
                "bulk z={} coverage broke: {:.3}",
                cell.skew.z(),
                cell.achieved_rel_error
            );
            assert_eq!(cell.bound_met, cell.runs, "bulk runs all meet the bound");
        }
    }

    #[test]
    fn placement_skew_inflates_the_filtered_scan_fraction() {
        let cells = grid();
        let frac = |filtered: bool, z: f64| {
            cells
                .iter()
                .find(|c| c.filtered == filtered && c.skew.z() == z)
                .unwrap()
                .scanned_fraction
        };
        // Zipf-placed matching records make per-split totals heavy-tailed:
        // the stopping rule must scan (much) more than in the bulk family.
        assert!(
            frac(true, 2.0) > frac(false, 2.0),
            "filtered z=2 ({}) should scan more than bulk z=2 ({})",
            frac(true, 2.0),
            frac(false, 2.0)
        );
        assert!(
            frac(true, 2.0) >= frac(true, 0.0),
            "scan fraction grows with skew: z=2 {} vs z=0 {}",
            frac(true, 2.0),
            frac(true, 0.0)
        );
    }

    #[test]
    fn rendering_covers_both_families_and_all_skews() {
        let out = render_figure(&grid());
        for needle in ["bulk", "filtered", "z=0", "z=1", "z=2", "bound met"] {
            assert!(out.contains(needle), "missing {needle}:\n{out}");
        }
    }
}
