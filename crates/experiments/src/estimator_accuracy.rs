//! Selectivity-estimation accuracy under skew — quantifying the paper's
//! Section V-B discussion:
//!
//! "Under a skewed distribution of matching records across the partitions,
//! the Input Provider can make significant error(s) in estimating the
//! selectivity. … In the case of an under-estimation, the Input Provider
//! may add more than the required amount of input … an over-estimation may
//! produce insufficient results and require the Input Provider to add
//! additional input many times."
//!
//! The experiment replays the provider's estimator over a uniformly-random
//! partition order (exactly how the sampling provider draws splits) and
//! records the relative selectivity-estimate error after each fraction of
//! the input, per skew level, averaged over seeds.

use incmr_data::SkewLevel;
use incmr_simkit::rng::DetRng;
use incmr_simkit::stats::OnlineStats;

use crate::calibration::Calibration;
use crate::render;

/// Mean relative error of the selectivity estimate after processing a
/// given fraction of the partitions.
#[derive(Debug, Clone)]
pub struct ErrorCurvePoint {
    /// Fraction of partitions processed (0, 1].
    pub fraction: f64,
    /// Mean relative error per skew level, in [`SkewLevel::all`] order.
    pub mean_rel_error: [f64; 3],
}

/// Compute the error curves at the given fractions, averaged over seeds.
pub fn run(cal: &Calibration, fractions: &[f64], seeds: &[u64]) -> Vec<ErrorCurvePoint> {
    let mut points: Vec<ErrorCurvePoint> = fractions
        .iter()
        .map(|&fraction| ErrorCurvePoint {
            fraction,
            mean_rel_error: [0.0; 3],
        })
        .collect();

    for (skew_idx, skew) in SkewLevel::all().into_iter().enumerate() {
        let mut stats: Vec<OnlineStats> = fractions.iter().map(|_| OnlineStats::new()).collect();
        for &seed in seeds {
            let (_, ds) = cal.build_world(5, skew, seed);
            let counts = ds.matching_counts();
            let n = counts.len();
            let records_per = cal.records_per_partition as f64;
            let true_selectivity = ds.total_matching() as f64 / (n as f64 * records_per);
            // Uniformly-random processing order (the provider's draw).
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = DetRng::seed_from(seed ^ 0xE571_A70E);
            let shuffled = rng.sample_without_replacement(&order, n);
            order = shuffled;
            // Replay the running estimate.
            let mut matches = 0u64;
            for (processed, &p) in order.iter().enumerate() {
                matches += counts[p];
                let frac = (processed + 1) as f64 / n as f64;
                let estimate = matches as f64 / ((processed + 1) as f64 * records_per);
                for (fi, &f) in fractions.iter().enumerate() {
                    // Record at the first processed count reaching each fraction.
                    if (frac * n as f64).round() as usize == (f * n as f64).round() as usize {
                        let rel = (estimate - true_selectivity).abs() / true_selectivity;
                        stats[fi].push(rel);
                    }
                }
            }
        }
        for (fi, s) in stats.iter().enumerate() {
            points[fi].mean_rel_error[skew_idx] = s.mean();
        }
    }
    points
}

/// Render the error curves as a table.
pub fn render_table(points: &[ErrorCurvePoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.fraction * 100.0),
                format!("{:.1}%", p.mean_rel_error[0] * 100.0),
                format!("{:.1}%", p.mean_rel_error[1] * 100.0),
                format!("{:.1}%", p.mean_rel_error[2] * 100.0),
            ]
        })
        .collect();
    render::table(
        "SELECTIVITY-ESTIMATE ERROR vs INPUT FRACTION (mean |rel. error|, 5x)",
        &["processed", "z=0", "z=1", "z=2"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<ErrorCurvePoint> {
        run(
            &Calibration::quick(),
            &[0.1, 0.25, 0.5, 1.0],
            &[1, 2, 3, 4, 5, 6, 7, 8],
        )
    }

    #[test]
    fn zero_skew_estimates_are_exact() {
        // With an exactly even distribution, every prefix gives the true
        // selectivity.
        for p in points() {
            assert!(
                p.mean_rel_error[0] < 1e-9,
                "z=0 error at {}: {}",
                p.fraction,
                p.mean_rel_error[0]
            );
        }
    }

    #[test]
    fn skew_inflates_early_estimation_error() {
        let ps = points();
        let early = &ps[0];
        assert!(
            early.mean_rel_error[2] > early.mean_rel_error[0] + 0.1,
            "z=2 early error ({}) should dwarf z=0 ({})",
            early.mean_rel_error[2],
            early.mean_rel_error[0]
        );
        assert!(
            early.mean_rel_error[2] > early.mean_rel_error[1],
            "error grows with skew"
        );
    }

    #[test]
    fn error_vanishes_at_full_input() {
        let ps = points();
        let last = ps.last().unwrap();
        for err in last.mean_rel_error {
            assert!(err < 1e-9, "estimate over all input is exact, got {err}");
        }
    }

    #[test]
    fn error_decreases_with_coverage_under_skew() {
        let ps = points();
        assert!(
            ps[0].mean_rel_error[2] > ps[2].mean_rel_error[2],
            "more input, better estimate: {} vs {}",
            ps[0].mean_rel_error[2],
            ps[2].mean_rel_error[2]
        );
    }

    #[test]
    fn rendering_has_all_fractions() {
        let out = render_table(&points());
        for f in ["10%", "25%", "50%", "100%"] {
            assert!(out.contains(f), "{out}");
        }
    }
}
