//! Ablations of the design choices DESIGN.md calls out — each isolates one
//! knob the paper discusses qualitatively and measures its effect:
//!
//! * [`eval_interval_sweep`] — Section III-B: "Evaluating progress at
//!   longer time intervals may result in unnecessary waits by the job";
//!   shorter intervals cost more evaluations.
//! * [`heartbeat_batch_sweep`] — Hadoop's tasks-per-heartbeat assignment
//!   cap: the launch-rate ceiling behind the paper's low slot occupancies.
//! * [`fair_delay_sweep`] — delay scheduling's locality/occupancy knob
//!   (Section V-F).
//! * [`replication_sweep`] — the paper uses replication 1; HDFS defaults
//!   to 3, which buys scheduling locality.
//! * [`adaptive_vs_static`] — the paper's future work: runtime policy
//!   switching, compared against the fixed Table I policies on both an
//!   idle and a loaded cluster.

use incmr_core::{build_adaptive_sampling_job, build_sampling_job, Policy, SampleMode};
use incmr_data::SkewLevel;
use incmr_mapreduce::{FairScheduler, FifoScheduler, MrRuntime, ScanMode};
use incmr_simkit::SimDuration;
use incmr_workload::{run_workload, UserClass, UserSpec, WorkloadSpec};

use crate::calibration::Calibration;
use crate::render;

/// A generic ablation row: the knob's value plus measured outcomes.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Human-readable knob setting.
    pub setting: String,
    /// Named measurements for this setting.
    pub measures: Vec<(&'static str, f64)>,
}

/// Render ablation rows as a table.
pub fn render_rows(title: &str, rows: &[AblationRow]) -> String {
    let header: Vec<&str> = std::iter::once("setting")
        .chain(
            rows.first()
                .map(|r| r.measures.iter().map(|(n, _)| *n).collect::<Vec<_>>())
                .unwrap_or_default(),
        )
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            std::iter::once(r.setting.clone())
                .chain(r.measures.iter().map(|(_, v)| render::f1(*v)))
                .collect()
        })
        .collect();
    render::table(title, &header, &body)
}

/// Single-user response time and partitions processed as the LA policy's
/// evaluation interval varies.
pub fn eval_interval_sweep(cal: &Calibration, intervals_ms: &[u64]) -> Vec<AblationRow> {
    intervals_ms
        .iter()
        .map(|&ms| {
            let (ns, ds) = cal.build_world(10, SkewLevel::Moderate, 31);
            let mut rt = MrRuntime::new(
                cal.cluster_single,
                cal.cost,
                ns,
                Box::new(FifoScheduler::new()),
            );
            let mut policy = Policy::la();
            policy.evaluation_interval = SimDuration::from_millis(ms);
            let (spec, driver) =
                build_sampling_job(&ds, cal.k, policy, ScanMode::Planted, SampleMode::FirstK, 3);
            let id = rt.submit(spec, driver);
            rt.run_until_idle();
            let r = rt.job_result(id);
            AblationRow {
                setting: format!("{}ms", ms),
                measures: vec![
                    ("response_s", r.response_time().as_secs_f64()),
                    ("partitions", r.splits_processed as f64),
                ],
            }
        })
        .collect()
}

/// Multi-user throughput and occupancy as the tasks-per-heartbeat
/// assignment cap varies (LA policy, uniform skew).
pub fn heartbeat_batch_sweep(cal: &Calibration, batches: &[u32]) -> Vec<AblationRow> {
    batches
        .iter()
        .map(|&batch| {
            let (ns, datasets) = cal.build_copies(SkewLevel::Zero, 41);
            let mut cost = cal.cost;
            cost.maps_per_heartbeat = batch;
            let mut rt =
                MrRuntime::new(cal.cluster_multi, cost, ns, Box::new(FifoScheduler::new()));
            let spec = WorkloadSpec::homogeneous(
                datasets,
                cal.k,
                Policy::la(),
                cal.warmup,
                cal.measure,
                5,
            );
            let report = run_workload(&mut rt, &spec);
            AblationRow {
                setting: format!("{batch}/heartbeat"),
                measures: vec![
                    ("jobs_per_h", report.sampling_jobs_per_hour()),
                    ("occupancy_pct", report.metrics.slot_occupancy_pct),
                ],
            }
        })
        .collect()
}

/// Heterogeneous-workload locality and occupancy as the Fair Scheduler's
/// locality delay varies.
pub fn fair_delay_sweep(cal: &Calibration, delays_s: &[u64]) -> Vec<AblationRow> {
    delays_s
        .iter()
        .map(|&delay| {
            let (ns, datasets) = cal.build_copies(SkewLevel::Zero, 43);
            let mut rt = MrRuntime::new(
                cal.cluster_multi,
                cal.cost,
                ns,
                Box::new(FairScheduler::new(SimDuration::from_secs(delay))),
            );
            let sampling_users = cal.users / 2;
            let spec = WorkloadSpec::heterogeneous(
                datasets,
                sampling_users,
                cal.k,
                Policy::la(),
                cal.warmup,
                cal.measure,
                7,
            );
            let report = run_workload(&mut rt, &spec);
            AblationRow {
                setting: format!("{delay}s"),
                measures: vec![
                    ("locality_pct", report.metrics.locality_pct),
                    ("occupancy_pct", report.metrics.slot_occupancy_pct),
                    ("total_jobs_per_h", report.total_jobs_per_hour()),
                ],
            }
        })
        .collect()
}

/// Locality and throughput under replication 1 (the paper's layout) vs 3
/// (the HDFS default), FIFO scheduler, heterogeneous workload.
pub fn replication_sweep(cal: &Calibration, factors: &[Option<u8>]) -> Vec<AblationRow> {
    factors
        .iter()
        .map(|&replication| {
            let (ns, datasets) = cal.build_copies_with(SkewLevel::Zero, 47, replication);
            let mut rt = MrRuntime::new(
                cal.cluster_multi,
                cal.cost,
                ns,
                Box::new(FifoScheduler::new()),
            );
            let sampling_users = cal.users / 2;
            let spec = WorkloadSpec::heterogeneous(
                datasets,
                sampling_users,
                cal.k,
                Policy::la(),
                cal.warmup,
                cal.measure,
                9,
            );
            let report = run_workload(&mut rt, &spec);
            AblationRow {
                setting: match replication {
                    None => "even, r=1".to_string(),
                    Some(r) => format!("random, r={r}"),
                },
                measures: vec![
                    ("locality_pct", report.metrics.locality_pct),
                    ("total_jobs_per_h", report.total_jobs_per_hour()),
                ],
            }
        })
        .collect()
}

/// The future-work experiment: runtime-adaptive policy selection vs the
/// fixed Table I policies, on an idle cluster (single-job response time)
/// and under a shared load (homogeneous throughput).
pub fn adaptive_vs_static(cal: &Calibration) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    // Idle: one job, response time.
    let idle = |label: &str, adaptive: bool, policy: Policy| {
        let (ns, ds) = cal.build_world(10, SkewLevel::Moderate, 51);
        let mut rt = MrRuntime::new(
            cal.cluster_single,
            cal.cost,
            ns,
            Box::new(FifoScheduler::new()),
        );
        let id = if adaptive {
            let (spec, driver) =
                build_adaptive_sampling_job(&ds, cal.k, ScanMode::Planted, SampleMode::FirstK, 3);
            rt.submit(spec, driver)
        } else {
            let (spec, driver) =
                build_sampling_job(&ds, cal.k, policy, ScanMode::Planted, SampleMode::FirstK, 3);
            rt.submit(spec, driver)
        };
        rt.run_until_idle();
        let r = rt.job_result(id);
        AblationRow {
            setting: format!("idle/{label}"),
            measures: vec![
                ("response_s", r.response_time().as_secs_f64()),
                ("partitions", r.splits_processed as f64),
            ],
        }
    };
    // Loaded: homogeneous multi-user workload, sampling throughput.
    let loaded = |label: &str, class: UserClass| {
        let (ns, datasets) = cal.build_copies(SkewLevel::Zero, 53);
        let mut rt = MrRuntime::new(
            cal.cluster_multi,
            cal.cost,
            ns,
            Box::new(FifoScheduler::new()),
        );
        let users = datasets
            .into_iter()
            .map(|dataset| UserSpec {
                class: class.clone(),
                dataset,
            })
            .collect();
        let spec = WorkloadSpec {
            users,
            warmup: cal.warmup,
            measure: cal.measure,
            scan_mode: ScanMode::Planted,
            seed: 13,
        };
        let report = run_workload(&mut rt, &spec);
        AblationRow {
            setting: format!("loaded/{label}"),
            measures: vec![
                ("response_s", report.sampling_response_secs.mean()),
                ("partitions", report.sampling_splits_processed.mean()),
            ],
        }
    };

    rows.push(idle("adaptive", true, Policy::la()));
    for p in [Policy::ha(), Policy::la(), Policy::conservative()] {
        rows.push(idle(&p.name.clone(), false, p));
    }
    rows.push(loaded(
        "adaptive",
        UserClass::AdaptiveSampling {
            k: cal.k,
            sample_mode: SampleMode::FirstK,
        },
    ));
    for p in [Policy::ha(), Policy::la(), Policy::conservative()] {
        rows.push(loaded(
            &p.name.clone(),
            UserClass::Sampling {
                k: cal.k,
                policy: p,
                sample_mode: SampleMode::FirstK,
            },
        ));
    }
    rows
}

/// Run every ablation at sensible sweep points and render them all.
pub fn render_all(cal: &Calibration) -> String {
    let mut out = String::from("ABLATIONS\n\n");
    out.push_str(&render_rows(
        "Evaluation interval (LA, single user, z=1, 10x)",
        &eval_interval_sweep(cal, &[1_000, 4_000, 16_000, 64_000]),
    ));
    out.push('\n');
    out.push_str(&render_rows(
        "Tasks per heartbeat (LA, homogeneous workload)",
        &heartbeat_batch_sweep(cal, &[1, 4, 16]),
    ));
    out.push('\n');
    out.push_str(&render_rows(
        "Fair-scheduler locality delay (heterogeneous workload)",
        &fair_delay_sweep(cal, &[0, 3, 15, 45]),
    ));
    out.push('\n');
    out.push_str(&render_rows(
        "Block replication (heterogeneous workload, FIFO)",
        &replication_sweep(cal, &[None, Some(3)]),
    ));
    out.push('\n');
    out.push_str(&render_rows(
        "Adaptive policy vs static (future work)",
        &adaptive_vs_static(cal),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        let mut c = Calibration::quick();
        c.users = 3;
        c.multi_user_scale = 6;
        c.warmup = SimDuration::from_mins(3);
        c.measure = SimDuration::from_mins(12);
        c
    }

    #[test]
    fn longer_eval_intervals_cost_response_time() {
        let rows = eval_interval_sweep(&cal(), &[1_000, 64_000]);
        let fast = rows[0].measures[0].1;
        let slow = rows[1].measures[0].1;
        assert!(
            slow > fast,
            "64s interval ({slow}) should respond slower than 1s ({fast})"
        );
    }

    #[test]
    fn heartbeat_batching_raises_occupancy() {
        let rows = heartbeat_batch_sweep(&cal(), &[1, 16]);
        let occ1 = rows[0].measures[1].1;
        let occ16 = rows[1].measures[1].1;
        assert!(
            occ16 >= occ1,
            "16/heartbeat occupancy ({occ16}) below 1/heartbeat ({occ1})"
        );
    }

    #[test]
    fn replication_buys_locality() {
        let rows = replication_sweep(&cal(), &[None, Some(3)]);
        let r1 = rows[0].measures[0].1;
        let r3 = rows[1].measures[0].1;
        assert!(
            r3 >= r1,
            "replication-3 locality ({r3}) below replication-1 ({r1})"
        );
    }

    #[test]
    fn adaptive_tracks_the_best_static_policy() {
        let rows = adaptive_vs_static(&cal());
        let get = |setting: &str, idx: usize| {
            rows.iter()
                .find(|r| r.setting == setting)
                .unwrap_or_else(|| panic!("missing row {setting}"))
                .measures[idx]
                .1
        };
        // Idle: the adaptive ladder behaves aggressively — far better than C.
        assert!(get("idle/adaptive", 0) < get("idle/C", 0));
        // Loaded: the adaptive ladder backs off — processes fewer
        // partitions per job than always-HA.
        assert!(get("loaded/adaptive", 1) <= get("loaded/HA", 1));
    }

    #[test]
    fn rendering_includes_every_section() {
        // Smoke-render with tiny sweeps (reuses cached worlds per call).
        let c = cal();
        let out = render_rows("T", &eval_interval_sweep(&c, &[4_000]));
        assert!(out.contains("4000ms"));
    }
}
