//! # incmr-experiments
//!
//! Regenerators for every table and figure in the paper's evaluation
//! (Section V). Each module runs the corresponding experiment on the
//! simulated cluster and renders output shaped like the paper's artefact:
//!
//! | module | paper artefact |
//! |--------|----------------|
//! | [`table1`] | Table I — policies for incremental processing |
//! | [`table2`] | Table II — properties of the generated datasets |
//! | [`table3`] | Table III — predicates per skew level |
//! | [`fig4`]   | Figure 4 — matching-record distribution across partitions |
//! | [`fig5`]   | Figure 5 — single-user response times + partitions processed |
//! | [`fig6`]   | Figure 6 — homogeneous multi-user throughput and resource usage |
//! | [`fig7`]   | Figure 7 — heterogeneous workload, default (FIFO) scheduler |
//! | [`fig8`]   | Figure 8 — heterogeneous workload, Fair Scheduler (+ locality) |
//! | [`fig_earl`] | error-bounded approximate aggregation: scan fraction and achieved error vs skew |
//!
//! When an aggregate needs explaining, [`explain`] re-runs a single
//! fig6/fig7 cell with the runtime's observability plane on (trace,
//! decision audit, latency histograms) and renders the full story.
//!
//! [`replication`] re-runs the single-user response grid with the
//! replication plane armed (rack-aware r = 1/2/3, a DataNode death
//! mid-run, background re-replication) and reports the survival cliff.
//!
//! Every experiment takes a [`calibration::Calibration`]: `paper()` mirrors
//! the paper's parameters (scales 5–100, k = 10 000, 10 users, …);
//! `quick()` shrinks datasets and windows so the whole suite runs in
//! seconds (used by tests and Criterion benches). Absolute numbers differ
//! from the paper's physical testbed; the *shape* — orderings, trends,
//! crossovers — is what these reproduce (see EXPERIMENTS.md).

pub mod ablations;
pub mod calibration;
pub mod estimator_accuracy;
pub mod explain;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig_earl;
pub mod render;
pub mod replication;
pub mod table1;
pub mod table2;
pub mod table3;

pub use calibration::Calibration;
