//! Observability-backed explanations for the multi-user figures.
//!
//! The figure modules report *aggregates* — jobs/hour, utilisation,
//! locality. When a cell looks off (why did LA's throughput dip at this
//! fraction? what was the cluster doing?), re-run the cell through these
//! helpers: they execute the identical configuration with the runtime's
//! trace sink, decision audit log, and latency histograms enabled, and
//! render a per-node swimlane timeline plus the provider decisions and
//! latency quantiles behind the aggregate numbers.

use incmr_core::Policy;
use incmr_data::SkewLevel;
use incmr_mapreduce::{render_audit, render_swimlanes, FifoScheduler, MrRuntime, TaskScheduler};
use incmr_workload::{run_workload, WorkloadReport, WorkloadSpec};

use crate::calibration::Calibration;

/// How many time buckets the swimlane renderer collapses a run into.
const SWIMLANE_BUCKETS: usize = 64;

/// Everything the observability plane captured about one re-run cell.
#[derive(Debug, Clone)]
pub struct RunExplanation {
    /// What the cell was, e.g. `fig6 skew=0 policy=LA`.
    pub label: String,
    /// The workload report of the explanatory re-run (identical to the
    /// figure's own numbers for the same calibration).
    pub report: WorkloadReport,
    /// Per-node/per-slot swimlane timeline of the whole run.
    pub swimlanes: String,
    /// The provider-decision audit log, one line per evaluation.
    pub audit: String,
    /// Rendered latency histograms (map, shuffle, reduce, queue waits…).
    pub histograms: String,
    /// Number of audited evaluations (lines in `audit`).
    pub evaluations: usize,
}

impl RunExplanation {
    /// One report: swimlanes, then decisions, then latency quantiles.
    pub fn render(&self) -> String {
        format!(
            "EXPLAIN {}\n\n{}\nPROVIDER DECISIONS ({} evaluations)\n{}\nLATENCY HISTOGRAMS\n{}",
            self.label, self.swimlanes, self.evaluations, self.audit, self.histograms
        )
    }
}

fn explain_workload(label: String, mut rt: MrRuntime, spec: &WorkloadSpec) -> RunExplanation {
    rt.enable_tracing();
    rt.enable_audit();
    let report = run_workload(&mut rt, spec);
    let events = rt.take_trace();
    let audit = rt.take_audit();
    RunExplanation {
        label,
        report,
        swimlanes: render_swimlanes(&events, SWIMLANE_BUCKETS),
        audit: render_audit(&audit),
        histograms: rt.histograms().render(),
        evaluations: audit.len(),
    }
}

/// Re-run one Figure 6 cell (homogeneous workload: every user samples
/// under `policy` against a copy with `skew`) with observability on.
pub fn explain_fig6_cell(cal: &Calibration, skew: SkewLevel, policy: &Policy) -> RunExplanation {
    let (ns, datasets) = cal.build_copies(skew, 7_000 + skew.z() as u64);
    let rt = MrRuntime::new(
        cal.cluster_multi,
        cal.cost,
        ns,
        Box::new(FifoScheduler::new()),
    );
    let spec =
        WorkloadSpec::homogeneous(datasets, cal.k, policy.clone(), cal.warmup, cal.measure, 11);
    explain_workload(
        format!("fig6 skew={skew} policy={}", policy.name),
        rt,
        &spec,
    )
}

/// Re-run one Figure 7/8 cell (heterogeneous workload at `fraction`
/// sampling users under `policy`) with observability on. Pass the same
/// scheduler the figure used (FIFO for Figure 7, Fair for Figure 8).
pub fn explain_hetero_cell(
    cal: &Calibration,
    fraction: f64,
    policy: &Policy,
    scheduler: Box<dyn TaskScheduler>,
) -> RunExplanation {
    let sampling_users = ((cal.users as f64) * fraction).round() as usize;
    let (ns, datasets) = cal.build_copies(SkewLevel::Zero, 9_000 + (fraction * 10.0) as u64);
    let name = scheduler.name();
    let rt = MrRuntime::new(cal.cluster_multi, cal.cost, ns, scheduler);
    let spec = WorkloadSpec::heterogeneous(
        datasets,
        sampling_users,
        cal.k,
        policy.clone(),
        cal.warmup,
        cal.measure,
        13,
    );
    explain_workload(
        format!(
            "fig7 fraction={fraction} policy={} scheduler={name}",
            policy.name
        ),
        rt,
        &spec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Calibration {
        let mut cal = Calibration::quick();
        // One user and a short window: the explanation's value is its
        // detail, not its statistical weight.
        cal.users = 2;
        cal.warmup = incmr_simkit::SimDuration::from_mins(1);
        cal.measure = incmr_simkit::SimDuration::from_mins(6);
        cal
    }

    #[test]
    fn fig6_explanation_reconstructs_the_cell() {
        let cal = tiny();
        let e = explain_fig6_cell(&cal, SkewLevel::Zero, &Policy::la());
        assert!(e.report.sampling_completed > 0);
        assert!(e.evaluations > 0, "audited provider decisions");
        let out = e.render();
        assert!(out.contains("EXPLAIN fig6"));
        assert!(out.contains("node0"), "swimlane lanes present");
        assert!(out.contains("directive="), "audit lines present");
        assert!(out.contains("map_attempt_ms"), "histograms present");
        assert!(out.contains("queue_wait_ms[fifo]"), "scheduler-keyed waits");
    }

    #[test]
    fn hetero_explanation_names_its_scheduler() {
        let cal = tiny();
        let e = explain_hetero_cell(&cal, 0.5, &Policy::la(), Box::new(FifoScheduler::new()));
        assert!(e.label.contains("scheduler=fifo"));
        assert!(e.report.sampling_completed + e.report.non_sampling_completed > 0);
        assert!(e.render().contains("PROVIDER DECISIONS"));
    }
}
