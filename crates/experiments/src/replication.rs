//! Replication grid — the single-user response grid (Figure 5 shape)
//! re-run with the replication plane armed: `r` = 1/2/3 rack-aware
//! replicas per block on a 2-rack paper cluster, a DataNode death partway
//! through every run (data-loss semantics on, so the dead node's replicas
//! vanish), and the re-replication daemon repairing under-replicated
//! blocks in the background.
//!
//! Expected shape: `r = 1` loses input blocks with the node and the job
//! fails with the typed `InputLost` error; `r >= 2` survives the same
//! death — in-flight reads fail over to a surviving replica, completed
//! maps whose block survives elsewhere are *not* re-executed, and the
//! daemon restores the missing copies — at a response time close to the
//! fault-free run. The survival cliff sits between `r = 1` and `r = 2`;
//! raising `r` to 3 buys durability headroom, not speed.

use incmr_core::{build_sampling_job, Policy, SampleMode};
use incmr_data::SkewLevel;
use incmr_mapreduce::{
    ClusterFaultPlan, FifoScheduler, JobError, JobResult, MrRuntime, NodeOutage, ScanMode,
};
use incmr_simkit::rng::splitmix64;
use incmr_simkit::{SimDuration, SimTime};

use crate::calibration::Calibration;
use crate::render;

/// Replication factors the grid sweeps.
pub const FACTORS: [u8; 3] = [1, 2, 3];

/// The node the grid kills (holds every `block % 10 == 0` primary under
/// `ReplicatedPlacement` on the 10-node paper cluster).
const VICTIM: u16 = 0;

/// Fraction of the fault-free response time at which the victim dies —
/// late enough that earlier map waves have completed (so the replica
/// fast path has completed work to spare), early enough that the
/// victim's remaining blocks are still pending at every scale.
const DEATH_FRACTION: f64 = 0.6;

/// How often the re-replication daemon wakes.
const REPAIR_INTERVAL: SimDuration = SimDuration::from_secs(5);

/// One measured point (averaged over the calibration's seeds).
#[derive(Debug, Clone)]
pub struct ReplicationCell {
    /// Dataset scale.
    pub scale: u32,
    /// Replicas per block.
    pub replication: u8,
    /// Runs (out of the calibration's seeds) that completed despite the
    /// death.
    pub survived: u32,
    /// Runs that failed with the typed [`JobError::InputLost`].
    pub input_lost: u32,
    /// Fault-free response time, seconds (same for every seed — the
    /// simulation is deterministic given the world).
    pub baseline_secs: f64,
    /// Mean response time over surviving runs, seconds (0 when none
    /// survived).
    pub response_secs: f64,
    /// Mean map re-executions forced by the death.
    pub maps_reexecuted: f64,
    /// Mean re-executions avoided because the block survived on another
    /// replica.
    pub reexecutions_avoided: f64,
    /// Mean dispatched reads failed over to a surviving replica.
    pub read_failovers: f64,
    /// Mean replicas restored by the re-replication daemon.
    pub replicas_restored: f64,
}

/// The complete grid.
#[derive(Debug, Clone)]
pub struct ReplicationResult {
    /// All measured cells.
    pub cells: Vec<ReplicationCell>,
}

impl ReplicationResult {
    /// Look up one cell.
    ///
    /// # Panics
    /// Panics if the combination was not part of the run.
    pub fn get(&self, scale: u32, replication: u8) -> &ReplicationCell {
        self.cells
            .iter()
            .find(|c| c.scale == scale && c.replication == replication)
            .unwrap_or_else(|| panic!("no cell for {scale}x/r{replication}"))
    }
}

/// One run of the full-scan sampling job on a replicated world, with an
/// optional scheduled death of the victim node. Returns the job result,
/// the runtime's replica counters, and the map re-executions forced.
fn run_one(
    cal: &Calibration,
    scale: u32,
    seed: u64,
    replication: u8,
    death_at: Option<SimTime>,
) -> (JobResult, incmr_mapreduce::ReplicaMetrics, u64) {
    let (ns, ds) = cal.build_world_replicated(scale, SkewLevel::Moderate, seed, replication);
    // The replicated world is laid out on a 2-rack variant of the paper
    // cluster; the runtime's config must agree with the namespace.
    let mut cfg = cal.cluster_single;
    cfg.topology = *ns.topology();
    let mut rt = MrRuntime::new(cfg, cal.cost, ns, Box::new(FifoScheduler::new()));
    rt.enable_data_loss();
    rt.enable_re_replication(REPAIR_INTERVAL)
        .expect("nonzero repair interval");
    if let Some(down_at) = death_at {
        rt.inject_cluster_faults(ClusterFaultPlan {
            outages: vec![NodeOutage {
                node: incmr_dfs::NodeId(VICTIM),
                down_at,
                up_at: None,
            }],
            seed,
            ..ClusterFaultPlan::default()
        })
        .expect("valid outage plan");
    }
    let job_seed = splitmix64(seed ^ splitmix64(scale as u64) ^ replication as u64);
    let (spec, driver) = build_sampling_job(
        &ds,
        cal.k,
        Policy::hadoop(),
        ScanMode::Planted,
        SampleMode::FirstK,
        job_seed,
    );
    let id = rt.submit(spec, driver);
    rt.run_until_idle();
    (
        rt.job_result(id).clone(),
        rt.metrics().replica(),
        rt.metrics().faults().maps_reexecuted,
    )
}

/// Run the grid: scales × replication factors, averaged over seeds. Each
/// cell first measures the fault-free response time, then kills the
/// victim node at `DEATH_FRACTION` of it in every seeded run.
pub fn run(cal: &Calibration) -> ReplicationResult {
    let mut cells = Vec::new();
    for &scale in &cal.scales {
        for r in FACTORS {
            let seed0 = *cal.seeds.first().expect("calibration has seeds");
            let (baseline, _, _) = run_one(cal, scale, seed0, r, None);
            let horizon = baseline.response_time();
            let death_at = baseline.submit_time
                + SimDuration::from_secs_f64(horizon.as_secs_f64() * DEATH_FRACTION);

            let mut survived = 0u32;
            let mut input_lost = 0u32;
            let mut resp = 0.0;
            let mut reexec = 0.0;
            let mut avoided = 0.0;
            let mut failovers = 0.0;
            let mut restored = 0.0;
            for &seed in &cal.seeds {
                let (result, replica, reexecuted) = run_one(cal, scale, seed, r, Some(death_at));
                if result.failed {
                    assert!(
                        matches!(result.error, Some(JobError::InputLost { .. })),
                        "the only expected failure mode is lost input, got {:?}",
                        result.error
                    );
                    input_lost += 1;
                } else {
                    survived += 1;
                    resp += result.response_time().as_secs_f64();
                }
                reexec += reexecuted as f64;
                avoided += replica.reexecutions_avoided as f64;
                failovers += replica.read_failovers as f64;
                restored += replica.replicas_restored as f64;
            }
            let n = cal.seeds.len() as f64;
            cells.push(ReplicationCell {
                scale,
                replication: r,
                survived,
                input_lost,
                baseline_secs: horizon.as_secs_f64(),
                response_secs: if survived > 0 {
                    resp / survived as f64
                } else {
                    0.0
                },
                maps_reexecuted: reexec / n,
                reexecutions_avoided: avoided / n,
                read_failovers: failovers / n,
                replicas_restored: restored / n,
            });
        }
    }
    ReplicationResult { cells }
}

/// Render the grid: survival, response vs baseline, and the replica
/// counters that explain the difference.
pub fn render_figure(cal: &Calibration, result: &ReplicationResult) -> String {
    let mut out = String::from("REPLICATION GRID — DATANODE DEATH MID-RUN (r = 1/2/3)\n");
    let header = [
        "scale", "r", "survived", "lost", "base(s)", "resp(s)", "reexec", "avoided", "failover",
        "restored",
    ];
    let rows: Vec<Vec<String>> = cal
        .scales
        .iter()
        .flat_map(|&scale| FACTORS.iter().map(move |&r| (scale, r)))
        .map(|(scale, r)| {
            let c = result.get(scale, r);
            vec![
                format!("{scale}x"),
                format!("{r}"),
                format!("{}/{}", c.survived, c.survived + c.input_lost),
                format!("{}", c.input_lost),
                render::f1(c.baseline_secs),
                render::f1(c.response_secs),
                render::f1(c.maps_reexecuted),
                render::f1(c.reexecutions_avoided),
                render::f1(c.read_failovers),
                render::f1(c.replicas_restored),
            ]
        })
        .collect();
    out.push('\n');
    out.push_str(&render::table(
        "survival and recovery work by replication factor",
        &header,
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_result() -> (Calibration, ReplicationResult) {
        // Scale 10 = 80 splits on 40 slots: two map waves, so the death
        // at 60% of the horizon lands after wave one completed.
        let mut cal = Calibration::quick();
        cal.scales = vec![10];
        cal.seeds = vec![401];
        let r = run(&cal);
        (cal, r)
    }

    #[test]
    fn survival_cliff_sits_between_r1_and_r2() {
        let (cal, r) = quick_result();
        let scale = cal.scales[0];
        let r1 = r.get(scale, 1);
        assert_eq!(r1.survived, 0, "r=1 cannot survive losing a DataNode");
        assert_eq!(r1.input_lost, cal.seeds.len() as u32);
        for factor in [2, 3] {
            let c = r.get(scale, factor);
            assert_eq!(
                c.survived,
                cal.seeds.len() as u32,
                "r={factor} must survive the same death"
            );
            assert_eq!(c.input_lost, 0);
        }
    }

    #[test]
    fn surviving_runs_avoid_reexecution_and_repair_in_background() {
        let (cal, r) = quick_result();
        let c = r.get(cal.scales[0], 2);
        assert!(
            c.reexecutions_avoided > 0.0,
            "completed maps on the dead node should be spared: {c:?}"
        );
        assert!(
            c.replicas_restored > 0.0,
            "the daemon should restore lost replicas: {c:?}"
        );
        assert!(
            c.response_secs > 0.0 && c.baseline_secs > 0.0,
            "both measured: {c:?}"
        );
    }

    #[test]
    fn rendering_includes_every_factor() {
        let (cal, r) = quick_result();
        let out = render_figure(&cal, &r);
        assert!(out.contains("REPLICATION GRID"));
        for needle in ["survived", "avoided", "restored"] {
            assert!(out.contains(needle), "missing column {needle}");
        }
    }
}
