//! Shared experiment parameters and world-building helpers.
//!
//! [`Calibration::paper`] mirrors Section V-A/B: a 10-node cluster (4 map
//! slots per node single-user, 16 multi-user), LINEITEM at scales 5–100
//! (750 k records per partition, 8 partitions per scale unit), selectivity
//! 0.05%, sample size k = 10 000, averages over 5 seeded runs, 10
//! closed-loop users on private 100× dataset copies.
//!
//! [`Calibration::quick`] preserves the *relationships* that drive the
//! results (matches-per-partition vs `k`, task cost vs evaluation interval,
//! queued tasks vs slots) at a fraction of the size, so the full suite runs
//! in seconds. In particular `k` is chosen to require ≈27 partitions of
//! uniform data — the same fraction the paper's k = 10 000 requires of its
//! 375-matches-per-partition datasets.

use std::sync::Arc;

use incmr_data::{Dataset, DatasetSpec, SkewLevel};
use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
use incmr_mapreduce::{ClusterConfig, CostModel};
use incmr_simkit::rng::DetRng;
use incmr_simkit::SimDuration;

/// All knobs an experiment needs.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Cluster for single-user runs (Figure 5).
    pub cluster_single: ClusterConfig,
    /// Cluster for multi-user runs (Figures 6–8).
    pub cluster_multi: ClusterConfig,
    /// The physical cost model.
    pub cost: CostModel,
    /// Records per input partition.
    pub records_per_partition: u64,
    /// Partitions per scale unit.
    pub partitions_per_scale: u32,
    /// Required sample size `k`.
    pub k: u64,
    /// Dataset scales for Figure 5 / Table II.
    pub scales: Vec<u32>,
    /// Seeds to average over ("All numbers are averages taken over 5 runs").
    pub seeds: Vec<u64>,
    /// Multi-user count (10 in the paper).
    pub users: usize,
    /// Scale of each user's dataset copy (100 in the paper).
    pub multi_user_scale: u32,
    /// Workload warm-up discarded from measurements.
    pub warmup: SimDuration,
    /// Workload measurement window.
    pub measure: SimDuration,
}

impl Calibration {
    /// The paper's parameters.
    pub fn paper() -> Self {
        Calibration {
            cluster_single: ClusterConfig::paper_single_user(),
            cluster_multi: ClusterConfig::paper_multi_user(),
            cost: CostModel::paper_default(),
            records_per_partition: 750_000,
            partitions_per_scale: 8,
            k: 10_000,
            scales: vec![5, 10, 20, 40, 100],
            seeds: vec![101, 102, 103, 104, 105],
            users: 10,
            multi_user_scale: 100,
            // The paper runs "sufficiently long … to obtain steady state";
            // in the simulator a 15 min warm-up + 1 h window yields tens to
            // hundreds of completions per configuration, which is steady
            // enough while keeping the 70-configuration suite tractable.
            warmup: SimDuration::from_mins(15),
            measure: SimDuration::from_hours(1),
        }
    }

    /// A scaled-down configuration preserving the paper's structural
    /// relationships; runs the whole suite in seconds.
    pub fn quick() -> Self {
        Calibration {
            cluster_single: ClusterConfig::paper_single_user(),
            cluster_multi: ClusterConfig::paper_multi_user(),
            cost: CostModel::paper_default(),
            // Partition size, k, and hence per-task cost match the paper:
            // tasks must dwarf the heartbeat and evaluation intervals for
            // the dynamics to be in the right regime, and simulated task
            // time is nearly free. What shrinks is the number of
            // partitions, users, seeds, and the measurement window.
            records_per_partition: 750_000,
            partitions_per_scale: 8,
            k: 10_000,
            scales: vec![5, 10, 20],
            seeds: vec![201, 202],
            users: 4,
            // 96 partitions per copy: k needs ≈28% of a copy, so dynamic
            // policies save real work while Hadoop still saturates slots.
            multi_user_scale: 12,
            warmup: SimDuration::from_mins(6),
            measure: SimDuration::from_mins(30),
        }
    }

    /// Matches planted per partition at the paper's 0.05% selectivity.
    pub fn matches_per_partition(&self) -> u64 {
        (self.records_per_partition as f64 * incmr_data::queries::PAPER_SELECTIVITY).round() as u64
    }

    /// Build one dataset world: a fresh namespace holding a single dataset
    /// at `scale` with the given skew.
    pub fn build_world(&self, scale: u32, skew: SkewLevel, seed: u64) -> (Namespace, Arc<Dataset>) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(seed);
        let spec = DatasetSpec {
            name: format!("lineitem_{scale}x_{skew:?}_{seed}"),
            partitions: scale * self.partitions_per_scale,
            records_per_partition: self.records_per_partition,
            skew,
            selectivity: incmr_data::queries::PAPER_SELECTIVITY,
            seed,
        };
        let ds = Arc::new(Dataset::build(
            &mut ns,
            spec,
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        (ns, ds)
    }

    /// Build a multi-user world: `users` private copies of the dataset in
    /// one namespace, placements interleaved across disks.
    pub fn build_copies(&self, skew: SkewLevel, seed: u64) -> (Namespace, Vec<Arc<Dataset>>) {
        self.build_copies_with(skew, seed, None)
    }

    /// Like [`Calibration::build_copies`], with an optional replication
    /// factor: `None` uses the paper's even, unreplicated layout;
    /// `Some(r)` uses the deterministic HDFS-style [`incmr_dfs::ReplicatedPlacement`]
    /// (exactly `r` replicas, distinct nodes) — the replication ablation.
    pub fn build_copies_with(
        &self,
        skew: SkewLevel,
        seed: u64,
        replication: Option<u8>,
    ) -> (Namespace, Vec<Arc<Dataset>>) {
        use incmr_dfs::{PlacementPolicy, ReplicatedPlacement};
        let topology = ClusterTopology::paper_cluster();
        let mut ns = Namespace::new(topology);
        let root = DetRng::seed_from(seed);
        let copies = (0..self.users)
            .map(|u| {
                let mut rng = root.fork(u as u64);
                let spec = DatasetSpec {
                    name: format!("copy{u}_{skew:?}_{seed}"),
                    partitions: self.multi_user_scale * self.partitions_per_scale,
                    records_per_partition: self.records_per_partition,
                    skew,
                    selectivity: incmr_data::queries::PAPER_SELECTIVITY,
                    seed: root.fork(1000 + u as u64).seed(),
                };
                let mut placement: Box<dyn PlacementPolicy> = match replication {
                    None => Box::new(EvenRoundRobin::starting_at((u * 13) as u32)),
                    Some(r) => Box::new(
                        ReplicatedPlacement::try_new(r, &topology)
                            .expect("calibration replication factor fits the paper cluster"),
                    ),
                };
                Arc::new(Dataset::build(&mut ns, spec, placement.as_mut(), &mut rng))
            })
            .collect();
        (ns, copies)
    }

    /// Build a single-dataset world under rack-aware replication: a 2-rack
    /// paper cluster with exactly `replication` replicas per block on
    /// distinct nodes, spanning both racks when `replication >= 2`. The
    /// replication-grid experiments drive this through fig5-style response
    /// grids with a mid-run DataNode death.
    pub fn build_world_replicated(
        &self,
        scale: u32,
        skew: SkewLevel,
        seed: u64,
        replication: u8,
    ) -> (Namespace, Arc<Dataset>) {
        use incmr_dfs::ReplicatedPlacement;
        let topology = ClusterTopology::paper_cluster().with_racks(2);
        let mut placement = ReplicatedPlacement::try_rack_aware(replication, &topology)
            .expect("replication factor fits the 2-rack paper cluster");
        let mut ns = Namespace::new(topology);
        let mut rng = DetRng::seed_from(seed);
        let spec = DatasetSpec {
            name: format!("lineitem_{scale}x_{skew:?}_{seed}_r{replication}"),
            partitions: scale * self.partitions_per_scale,
            records_per_partition: self.records_per_partition,
            skew,
            selectivity: incmr_data::queries::PAPER_SELECTIVITY,
            seed,
        };
        let ds = Arc::new(Dataset::build(&mut ns, spec, &mut placement, &mut rng));
        (ns, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_section_v() {
        let c = Calibration::paper();
        assert_eq!(c.k, 10_000);
        assert_eq!(c.matches_per_partition(), 375);
        assert_eq!(c.scales, vec![5, 10, 20, 40, 100]);
        assert_eq!(c.seeds.len(), 5, "averages over 5 runs");
        assert_eq!(c.users, 10);
        assert_eq!(c.cluster_single.total_map_slots(), 40);
        assert_eq!(c.cluster_multi.total_map_slots(), 160);
    }

    #[test]
    fn quick_preserves_the_partition_fraction() {
        let c = Calibration::quick();
        // k / matches-per-partition ≈ 27, like the paper's 10000/375.
        let needed = c.k as f64 / c.matches_per_partition() as f64;
        assert!((26.0..=28.0).contains(&needed), "needed = {needed}");
    }

    #[test]
    fn build_world_shapes() {
        let c = Calibration::quick();
        let (ns, ds) = c.build_world(5, SkewLevel::Zero, 1);
        assert_eq!(ds.splits().len(), 40);
        assert_eq!(ns.num_blocks(), 40);
        assert_eq!(ds.total_matching(), 40 * c.matches_per_partition());
    }

    #[test]
    fn build_copies_are_private_and_coresident() {
        let c = Calibration::quick();
        let (ns, copies) = c.build_copies(SkewLevel::Zero, 2);
        assert_eq!(copies.len(), c.users);
        assert_eq!(
            ns.num_blocks(),
            c.users * (c.multi_user_scale * c.partitions_per_scale) as usize
        );
        // Distinct content seeds per copy.
        let mut seeds: Vec<u64> = copies.iter().map(|d| d.splits()[0].spec.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), c.users);
    }
}
