//! Figure 7 — heterogeneous multi-user workload under the default (FIFO)
//! scheduler: per-class throughput as the fraction of Sampling-class users
//! varies from 0.2 to 0.8, for each policy used by the Sampling class.
//!
//! Expected shape (Section V-E): Sampling-class throughput rises with its
//! user fraction; Non-Sampling-class throughput is lowest when the
//! Sampling class runs the Hadoop policy and rises markedly (3×–8× in the
//! paper) when it shifts to conservative policies (LA/C).

use incmr_core::Policy;
use incmr_data::SkewLevel;
use incmr_mapreduce::{FifoScheduler, MrRuntime, TaskScheduler};
use incmr_workload::{run_workload, WorkloadSpec};

use crate::calibration::Calibration;
use crate::render;

/// One measured heterogeneous configuration.
#[derive(Debug, Clone)]
pub struct HeteroCell {
    /// Fraction of users in the Sampling class.
    pub fraction: f64,
    /// The policy the Sampling class runs.
    pub policy: String,
    /// Sampling-class throughput, jobs/hour.
    pub sampling_jph: f64,
    /// Non-Sampling-class throughput, jobs/hour.
    pub non_sampling_jph: f64,
    /// Map-task data locality over the window, percent.
    pub locality_pct: f64,
    /// Mean map-slot occupancy over the window, percent.
    pub occupancy_pct: f64,
}

/// Results for one scheduler.
#[derive(Debug, Clone)]
pub struct HeteroResult {
    /// Which scheduler ran.
    pub scheduler: &'static str,
    /// All cells.
    pub cells: Vec<HeteroCell>,
}

impl HeteroResult {
    /// Look up one cell.
    ///
    /// # Panics
    /// Panics if the combination was not run.
    pub fn get(&self, fraction: f64, policy: &str) -> &HeteroCell {
        self.cells
            .iter()
            .find(|c| (c.fraction - fraction).abs() < 1e-9 && c.policy == policy)
            .unwrap_or_else(|| panic!("no cell for {fraction}/{policy}"))
    }

    /// Mean locality across all cells (the Section V-F statistic).
    pub fn mean_locality_pct(&self) -> f64 {
        incmr_simkit::stats::mean(
            &self
                .cells
                .iter()
                .map(|c| c.locality_pct)
                .collect::<Vec<_>>(),
        )
    }

    /// Mean slot occupancy across all cells.
    pub fn mean_occupancy_pct(&self) -> f64 {
        incmr_simkit::stats::mean(
            &self
                .cells
                .iter()
                .map(|c| c.occupancy_pct)
                .collect::<Vec<_>>(),
        )
    }
}

/// The paper's sampling-class fractions.
pub fn paper_fractions() -> Vec<f64> {
    vec![0.2, 0.4, 0.6, 0.8]
}

/// Shared heterogeneous-workload runner, parameterised by scheduler
/// (Figure 7 uses FIFO; Figure 8 re-runs with the Fair Scheduler).
pub fn run_hetero<F>(
    cal: &Calibration,
    fractions: &[f64],
    policies: &[Policy],
    scheduler_name: &'static str,
    make_scheduler: F,
) -> HeteroResult
where
    F: Fn() -> Box<dyn TaskScheduler>,
{
    let mut cells = Vec::new();
    for &fraction in fractions {
        let sampling_users = ((cal.users as f64) * fraction).round() as usize;
        for policy in policies {
            // "The predicate used for sampling jobs corresponds to a
            // uniform distribution of the matching records."
            let (ns, datasets) =
                cal.build_copies(SkewLevel::Zero, 9_000 + (fraction * 10.0) as u64);
            let mut rt = MrRuntime::new(cal.cluster_multi, cal.cost, ns, make_scheduler());
            let spec = WorkloadSpec::heterogeneous(
                datasets,
                sampling_users,
                cal.k,
                policy.clone(),
                cal.warmup,
                cal.measure,
                13,
            );
            let report = run_workload(&mut rt, &spec);
            cells.push(HeteroCell {
                fraction,
                policy: policy.name.clone(),
                sampling_jph: report.sampling_jobs_per_hour(),
                non_sampling_jph: report.non_sampling_jobs_per_hour(),
                locality_pct: report.metrics.locality_pct,
                occupancy_pct: report.metrics.slot_occupancy_pct,
            });
        }
    }
    HeteroResult {
        scheduler: scheduler_name,
        cells,
    }
}

/// Run Figure 7: all fractions × all policies on FIFO.
pub fn run(cal: &Calibration) -> HeteroResult {
    run_hetero(cal, &paper_fractions(), &Policy::table1(), "fifo", || {
        Box::new(FifoScheduler::new())
    })
}

/// Render panels (a) and (b) of a heterogeneous result.
pub fn render_figure(title: &str, result: &HeteroResult) -> String {
    let mut out = format!("{title} (scheduler: {})\n", result.scheduler);
    let policies: Vec<String> = {
        let mut seen = Vec::new();
        for c in &result.cells {
            if !seen.contains(&c.policy) {
                seen.push(c.policy.clone());
            }
        }
        seen
    };
    let fractions: Vec<f64> = {
        let mut seen = Vec::new();
        for c in &result.cells {
            if !seen.iter().any(|f: &f64| (f - c.fraction).abs() < 1e-9) {
                seen.push(c.fraction);
            }
        }
        seen
    };
    for (panel, class) in [
        ("(a) Sampling class", true),
        ("(b) Non-Sampling class", false),
    ] {
        let rows: Vec<Vec<String>> = fractions
            .iter()
            .map(|&f| {
                let mut row = vec![format!("{f:.1}")];
                for p in &policies {
                    let c = result.get(f, p);
                    row.push(render::f1(if class {
                        c.sampling_jph
                    } else {
                        c.non_sampling_jph
                    }));
                }
                row
            })
            .collect();
        let header: Vec<&str> = std::iter::once("fraction")
            .chain(policies.iter().map(|s| s.as_str()))
            .collect();
        out.push('\n');
        out.push_str(&render::table(
            &format!("{panel}: throughput (jobs/hour)"),
            &header,
            &rows,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_result() -> HeteroResult {
        // Two fractions × two poles of the policy spectrum keeps this fast.
        run_hetero(
            &Calibration::quick(),
            &[0.25, 0.75],
            &[Policy::hadoop(), Policy::la()],
            "fifo",
            || Box::new(FifoScheduler::new()),
        )
    }

    #[test]
    fn sampling_throughput_rises_with_its_fraction() {
        let r = quick_result();
        for p in ["Hadoop", "LA"] {
            let lo = r.get(0.25, p).sampling_jph;
            let hi = r.get(0.75, p).sampling_jph;
            assert!(hi > lo, "{p}: {lo} → {hi}");
        }
    }

    #[test]
    fn non_sampling_class_benefits_from_conservative_sampling() {
        let r = quick_result();
        for &f in &[0.25, 0.75] {
            let hadoop = r.get(f, "Hadoop").non_sampling_jph;
            let la = r.get(f, "LA").non_sampling_jph;
            assert!(
                la > hadoop,
                "fraction {f}: non-sampling under LA ({la}) should beat Hadoop ({hadoop})"
            );
        }
    }

    #[test]
    fn boost_grows_with_sampling_fraction() {
        // The paper: 3x improvement at 20% sampling users, 8x at 80%.
        let r = quick_result();
        let boost = |f: f64| {
            r.get(f, "LA").non_sampling_jph / r.get(f, "Hadoop").non_sampling_jph.max(1e-9)
        };
        assert!(
            boost(0.75) > boost(0.25),
            "boost at 0.75 ({}) should exceed boost at 0.25 ({})",
            boost(0.75),
            boost(0.25)
        );
    }

    #[test]
    fn rendering_has_both_panels() {
        let out = render_figure("FIGURE 7", &quick_result());
        assert!(out.contains("(a) Sampling class"));
        assert!(out.contains("(b) Non-Sampling class"));
        assert!(out.contains("fifo"));
    }
}
