//! Figure 4 — distribution of matching records across the 40 partitions of
//! the 5× dataset, for z = 0, 1, 2.
//!
//! Paper reference points: 15 000 matching records total; z = 0 gives an
//! equal count per partition; z = 1 puts ≈3 100 in the heaviest partition;
//! z = 2 puts ≈8 700–9 300 there.

use incmr_data::skew::{summarize, SkewSummary};
use incmr_data::SkewLevel;

use crate::calibration::Calibration;
use crate::render;

/// One panel of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Panel {
    /// Skew level.
    pub skew: SkewLevel,
    /// Matching records per partition, sorted descending (the paper plots
    /// by rank).
    pub counts_desc: Vec<u64>,
    /// Summary statistics.
    pub summary: SkewSummary,
}

/// Generate the three panels at the paper's 5× scale (this experiment is
/// cheap, so it always runs at full size regardless of calibration —
/// except that `records_per_partition` scales the total match count).
pub fn run(cal: &Calibration, seed: u64) -> Vec<Fig4Panel> {
    SkewLevel::all()
        .into_iter()
        .map(|skew| {
            let (_, ds) = cal.build_world(5, skew, seed);
            let mut counts = ds.matching_counts();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let summary = summarize(&counts);
            Fig4Panel {
                skew,
                counts_desc: counts,
                summary,
            }
        })
        .collect()
}

/// Render the three panels as bar charts over partition rank.
pub fn render_figure(panels: &[Fig4Panel]) -> String {
    let mut out =
        String::from("FIGURE 4 — DISTRIBUTION OF MATCHING RECORDS ACROSS PARTITIONS (5x)\n");
    for p in panels {
        let total: u64 = p.counts_desc.iter().sum();
        out.push('\n');
        let items: Vec<(String, f64)> = p
            .counts_desc
            .iter()
            .take(10)
            .enumerate()
            .map(|(i, &c)| (format!("rank {:>2}", i + 1), c as f64))
            .collect();
        out.push_str(&render::bars(
            &format!(
                "skew {} — total {total}, top partition {} ({:.1}% of matches), {} empty partitions",
                p.skew,
                p.summary.max,
                p.summary.top_share * 100.0,
                p.summary.empty_partitions
            ),
            &items,
            "records",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_panels() -> Vec<Fig4Panel> {
        run(&Calibration::paper(), 42)
    }

    #[test]
    fn totals_are_fifteen_thousand_at_paper_scale() {
        for p in paper_panels() {
            assert_eq!(p.counts_desc.iter().sum::<u64>(), 15_000, "{}", p.skew);
            assert_eq!(p.counts_desc.len(), 40);
        }
    }

    #[test]
    fn zero_skew_is_flat_at_375() {
        let p = &paper_panels()[0];
        assert!(p.counts_desc.iter().all(|&c| c == 375));
    }

    #[test]
    fn moderate_skew_top_partition_near_paper_value() {
        // Paper: 3128 in the top partition (expected 23.4% of 15000 = 3506).
        let p = &paper_panels()[1];
        assert!(
            (3_000..=4_000).contains(&p.summary.max),
            "z=1 top partition = {}",
            p.summary.max
        );
    }

    #[test]
    fn high_skew_top_partition_near_paper_value() {
        // Paper: 8700 of 15000 in a single partition (expected 9253).
        let p = &paper_panels()[2];
        assert!(
            (8_200..=10_200).contains(&p.summary.max),
            "z=2 top partition = {}",
            p.summary.max
        );
    }

    #[test]
    fn rendering_contains_three_panels() {
        let out = render_figure(&paper_panels());
        assert_eq!(out.matches("skew ").count(), 3);
        assert!(out.contains("rank  1"));
    }
}
