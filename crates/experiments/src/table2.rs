//! Table II — properties of the generated datasets (Section V-B):
//! LINEITEM at scales 5–100, row counts, on-disk size, and partition
//! counts under the even-across-40-disks layout.

use incmr_data::dataset::{table2, Table2Row};

use crate::calibration::Calibration;
use crate::render;

/// Compute Table II for the calibration's scales.
pub fn run(cal: &Calibration) -> Vec<Table2Row> {
    table2(&cal.scales)
}

/// Render in the paper's layout.
pub fn render_table(cal: &Calibration) -> String {
    let rows: Vec<Vec<String>> = run(cal)
        .iter()
        .map(|r| {
            vec![
                format!("{}x", r.scale),
                format!("{}", r.rows),
                format!("{:.1}", r.bytes as f64 / (1024.0 * 1024.0 * 1024.0)),
                format!("{}", r.partitions),
            ]
        })
        .collect();
    render::table(
        "TABLE II — PROPERTIES OF THE GENERATED DATASETS",
        &["Scale", "Rows", "Size (GB)", "Partitions"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scales_reproduce_known_cells() {
        let rows = run(&Calibration::paper());
        assert_eq!(rows.len(), 5);
        // "With 5x input … 30 million records … 40 partitions."
        assert_eq!(rows[0].rows, 30_000_000);
        assert_eq!(rows[0].partitions, 40);
        assert_eq!(rows[4].rows, 600_000_000);
        assert_eq!(rows[4].partitions, 800);
    }

    #[test]
    fn rendering_contains_all_scales() {
        let out = render_table(&Calibration::paper());
        for s in ["5x", "10x", "20x", "40x", "100x"] {
            assert!(out.contains(s), "missing {s}:\n{out}");
        }
    }
}
