//! Table I — the policies for incremental processing of input.
//!
//! Regenerated from code (the policies *are* the implementation), so any
//! drift between the library and the paper's table is caught by the tests
//! here.

use incmr_core::Policy;

use crate::render;

/// The Table I policies.
pub fn run() -> Vec<Policy> {
    Policy::table1()
}

/// Render Table I in the paper's layout.
pub fn render_table() -> String {
    let rows: Vec<Vec<String>> = run()
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                description(&p.name).to_string(),
                if p.name == "Hadoop" {
                    "-".to_string()
                } else {
                    format!("{}", p.work_threshold_pct)
                },
                p.grab_limit.to_string(),
            ]
        })
        .collect();
    render::table(
        "TABLE I — POLICIES FOR INCREMENTAL PROCESSING OF INPUT",
        &[
            "Policy",
            "Description",
            "Work Threshold (% Total Input Size)",
            "Grab Limit",
        ],
        &rows,
    )
}

fn description(name: &str) -> &'static str {
    match name {
        "Hadoop" => "Hadoop's default behaviour",
        "HA" => "Highly Aggressive policy",
        "MA" => "Mid Aggressive policy",
        "LA" => "Less Aggressive policy",
        "C" => "Conservative policy",
        _ => "user-defined policy",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_policies_in_paper_order() {
        let out = render_table();
        let body: Vec<&str> = out.lines().skip(3).collect();
        assert_eq!(body.len(), 5);
        assert!(body[0].contains("Hadoop") && body[0].contains("Infinity"));
        assert!(body[1].contains("HA") && body[1].contains("max(0.5*TS, AS)"));
        assert!(body[2].contains("MA") && body[2].contains("(AS > 0) ? 0.5*AS : 0.2*TS"));
        assert!(body[3].contains("LA") && body[3].contains("(AS > 0) ? 0.2*AS : 0.1*TS"));
        assert!(body[4].contains("0.1*AS"));
    }

    #[test]
    fn work_thresholds_match_the_paper() {
        let wts: Vec<f64> = run().iter().map(|p| p.work_threshold_pct).collect();
        assert_eq!(wts, vec![0.0, 0.0, 5.0, 10.0, 15.0]);
    }
}
