//! Table III — the predicate used for each degree of skew, with the
//! overall selectivity fixed at 0.05% (Section V-B). Verified end-to-end:
//! the regenerator builds a small dataset per skew level and checks the
//! realised selectivity of the planted data.

use incmr_data::queries::PaperPredicate;
#[cfg(test)]
use incmr_data::queries::PAPER_SELECTIVITY;
use incmr_data::SkewLevel;

use crate::calibration::Calibration;
use crate::render;

/// One row of Table III with the realised (measured) selectivity.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The predicate definition.
    pub predicate: PaperPredicate,
    /// Selectivity measured on a generated dataset.
    pub realized_selectivity: f64,
}

/// Build Table III, measuring realised selectivity on small generated
/// datasets.
pub fn run(cal: &Calibration) -> Vec<Table3Row> {
    SkewLevel::all()
        .into_iter()
        .map(|skew| {
            let (_, ds) = cal.build_world(1, skew, 0xBEEF + skew.z() as u64);
            let realized = ds.total_matching() as f64 / ds.spec().total_records() as f64;
            Table3Row {
                predicate: PaperPredicate::for_skew(skew),
                realized_selectivity: realized,
            }
        })
        .collect()
}

/// Render in the paper's layout.
pub fn render_table(cal: &Calibration) -> String {
    let rows: Vec<Vec<String>> = run(cal)
        .iter()
        .map(|r| {
            vec![
                r.predicate.skew.to_string(),
                r.predicate.sql.to_string(),
                format!("{:.4}%", r.realized_selectivity * 100.0),
            ]
        })
        .collect();
    render::table(
        "TABLE III — PREDICATES AND ASSOCIATED SKEW",
        &["Skew", "Predicate", "Selectivity"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_is_five_hundredths_of_a_percent() {
        for row in run(&Calibration::quick()) {
            assert!(
                (row.realized_selectivity - PAPER_SELECTIVITY).abs() < 1e-5,
                "{:?}: realised {}",
                row.predicate.skew,
                row.realized_selectivity
            );
        }
    }

    #[test]
    fn three_rows_with_distinct_predicates() {
        let rows = run(&Calibration::quick());
        assert_eq!(rows.len(), 3);
        let mut sqls: Vec<&str> = rows.iter().map(|r| r.predicate.sql).collect();
        sqls.dedup();
        assert_eq!(sqls.len(), 3);
    }

    #[test]
    fn rendering_mentions_each_skew_level() {
        let out = render_table(&Calibration::quick());
        assert!(out.contains("zero (z=0)"));
        assert!(out.contains("moderate (z=1)"));
        assert!(out.contains("high (z=2)"));
    }
}
