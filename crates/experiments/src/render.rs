//! Plain-text rendering: fixed-width tables and simple bar series, so the
//! regenerators print artefacts readable next to the paper's figures.

/// Render a fixed-width table. `header` and every row must have the same
/// number of cells.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    assert!(
        rows.iter().all(|r| r.len() == header.len()),
        "ragged table rows"
    );
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:>w$} "))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Render a horizontal bar chart of labelled values (used for Figure 4's
/// distributions and the throughput figures).
pub fn bars(title: &str, items: &[(String, f64)], unit: &str) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, value) in items {
        let filled = if max > 0.0 {
            ((value / max) * 40.0).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "  {label:<label_w$} |{:<40}| {value:>10.1} {unit}\n",
            "#".repeat(filled)
        ));
    }
    out
}

/// Format a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            "T",
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("name"));
        assert!(lines[2].starts_with('-'));
        assert_eq!(lines[3].len(), lines[4].len(), "rows align");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = table("T", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn bars_scale_to_max() {
        let out = bars("B", &[("x".into(), 10.0), ("y".into(), 5.0)], "u");
        let lines: Vec<&str> = out.lines().collect();
        let hashes = |s: &str| s.matches('#').count();
        assert_eq!(hashes(lines[1]), 40, "max bar is full width");
        assert_eq!(hashes(lines[2]), 20);
    }

    #[test]
    fn bars_of_zeros_do_not_divide_by_zero() {
        let out = bars("B", &[("x".into(), 0.0)], "u");
        assert!(out.contains("0.0 u"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.256), "1.26");
    }
}
