//! Workload specifications: who the users are and what they run.

use std::sync::Arc;

use incmr_core::{Policy, SampleMode};
use incmr_data::Dataset;
use incmr_mapreduce::ScanMode;
use incmr_simkit::SimDuration;

/// What one user repeatedly submits.
#[derive(Clone)]
pub enum UserClass {
    /// Predicate-based sampling (`SELECT … WHERE p LIMIT k`) as a dynamic
    /// job under a policy.
    Sampling {
        /// Required sample size.
        k: u64,
        /// Growth policy.
        policy: Policy,
        /// How the reducer trims the sample.
        sample_mode: SampleMode,
    },
    /// A static select-project scan over the whole dataset copy
    /// (the paper's Non-Sampling class, selectivity 0.05%).
    NonSampling,
    /// Predicate-based sampling under the runtime-adaptive driver (the
    /// paper's future-work policy switching).
    AdaptiveSampling {
        /// Required sample size.
        k: u64,
        /// How the reducer trims the sample.
        sample_mode: SampleMode,
    },
}

impl UserClass {
    /// Class label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            UserClass::Sampling { .. } | UserClass::AdaptiveSampling { .. } => "sampling",
            UserClass::NonSampling => "non-sampling",
        }
    }
}

/// One closed-loop user: a class plus a private dataset copy
/// ("to ensure that each query requires fetching its input from the disk
/// and does not leverage the buffer cache populated by some other query").
#[derive(Clone)]
pub struct UserSpec {
    /// What the user runs.
    pub class: UserClass,
    /// The user's own dataset copy.
    pub dataset: Arc<Dataset>,
}

/// A complete workload: users, phases, and execution mode.
#[derive(Clone)]
pub struct WorkloadSpec {
    /// The users, all active for the entire run.
    pub users: Vec<UserSpec>,
    /// Initial phase whose completions and resource usage are discarded.
    pub warmup: SimDuration,
    /// Measurement window ("each workload was run for a sufficiently long
    /// duration to obtain steady state throughput").
    pub measure: SimDuration,
    /// How split contents are materialised.
    pub scan_mode: ScanMode,
    /// Root seed for all per-job randomness.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A homogeneous workload: every user samples with the same `k` and
    /// policy against their own dataset copy (paper Section V-D).
    pub fn homogeneous(
        datasets: Vec<Arc<Dataset>>,
        k: u64,
        policy: Policy,
        warmup: SimDuration,
        measure: SimDuration,
        seed: u64,
    ) -> Self {
        let users = datasets
            .into_iter()
            .map(|dataset| UserSpec {
                class: UserClass::Sampling {
                    k,
                    policy: policy.clone(),
                    sample_mode: SampleMode::FirstK,
                },
                dataset,
            })
            .collect();
        WorkloadSpec {
            users,
            warmup,
            measure,
            scan_mode: ScanMode::Planted,
            seed,
        }
    }

    /// A heterogeneous workload: the first `sampling_users` users sample,
    /// the rest run static scans (paper Section V-E, fraction 0.2–0.8).
    pub fn heterogeneous(
        datasets: Vec<Arc<Dataset>>,
        sampling_users: usize,
        k: u64,
        policy: Policy,
        warmup: SimDuration,
        measure: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(sampling_users <= datasets.len());
        let users = datasets
            .into_iter()
            .enumerate()
            .map(|(i, dataset)| UserSpec {
                class: if i < sampling_users {
                    UserClass::Sampling {
                        k,
                        policy: policy.clone(),
                        sample_mode: SampleMode::FirstK,
                    }
                } else {
                    UserClass::NonSampling
                },
                dataset,
            })
            .collect();
        WorkloadSpec {
            users,
            warmup,
            measure,
            scan_mode: ScanMode::Planted,
            seed,
        }
    }

    /// Number of users in each class: `(sampling, non_sampling)`.
    pub fn class_counts(&self) -> (usize, usize) {
        let sampling = self
            .users
            .iter()
            .filter(|u| matches!(u.class, UserClass::Sampling { .. }))
            .count();
        (sampling, self.users.len() - sampling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::{DatasetSpec, SkewLevel};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_simkit::rng::DetRng;

    fn datasets(n: usize) -> Vec<Arc<Dataset>> {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(3);
        (0..n)
            .map(|i| {
                Arc::new(Dataset::build(
                    &mut ns,
                    DatasetSpec::small(&format!("c{i}"), 4, 100, SkewLevel::Zero, i as u64),
                    &mut EvenRoundRobin::starting_at(i as u32),
                    &mut rng,
                ))
            })
            .collect()
    }

    #[test]
    fn homogeneous_marks_all_users_sampling() {
        let w = WorkloadSpec::homogeneous(
            datasets(10),
            100,
            Policy::la(),
            SimDuration::from_mins(5),
            SimDuration::from_mins(30),
            1,
        );
        assert_eq!(w.class_counts(), (10, 0));
        assert!(w.users.iter().all(|u| u.class.label() == "sampling"));
    }

    #[test]
    fn heterogeneous_splits_by_fraction() {
        let w = WorkloadSpec::heterogeneous(
            datasets(10),
            4,
            100,
            Policy::conservative(),
            SimDuration::from_mins(5),
            SimDuration::from_mins(30),
            1,
        );
        assert_eq!(w.class_counts(), (4, 6));
        assert_eq!(w.users[3].class.label(), "sampling");
        assert_eq!(w.users[4].class.label(), "non-sampling");
    }

    #[test]
    #[should_panic]
    fn too_many_sampling_users_panics() {
        let _ = WorkloadSpec::heterogeneous(
            datasets(2),
            3,
            10,
            Policy::la(),
            SimDuration::ZERO,
            SimDuration::from_mins(1),
            1,
        );
    }
}
