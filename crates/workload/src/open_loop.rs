//! Open-loop arrival generation over the multi-tenant query service.
//!
//! The closed-loop runner ([`crate::run_workload`]) models the paper's 10
//! users with one in-flight query each. This module scales the other
//! axis: **millions of simulated users** per tenant class, each thinking
//! for an exponentially-distributed time between submissions, without
//! materialising any per-user state. The superposition of `u` Poisson
//! users with mean think time `z` is itself a Poisson process with mean
//! inter-arrival gap `z / u`, so one aggregated arrival stream per class
//! is exact and O(1) per arrival.
//!
//! Arrivals do **not** wait for completions (open loop): under
//! saturation the tenant queues fill, admission control rejects, and the
//! weighted-fair dispatcher decides who drains first — precisely the
//! multi-user regime of the paper's Sections V-D/V-E, at a scale its
//! 10-user testbed could not reach.

use std::sync::Arc;

use incmr_data::{Dataset, PaperPredicate, SkewLevel};
use incmr_hiveql::{SessionState, TenantProfile};
use incmr_mapreduce::MrRuntime;
use incmr_service::{QueryService, ServiceConfig, ServiceError, ServiceReply, Ticket};
use incmr_simkit::dist::exponential_millis;
use incmr_simkit::rng::DetRng;
use incmr_simkit::stats::{LogHistogram, OnlineStats};
use incmr_simkit::{SimDuration, SimTime};

/// One tenant class: a user population submitting one query shape
/// against its own dataset copy (registered as a table named after the
/// class).
#[derive(Clone)]
pub struct OpenLoopClass {
    /// Class/tenant/table name.
    pub name: String,
    /// Simulated user population size (can be millions; arrivals are
    /// aggregated, so memory is O(1) in this number).
    pub users: u64,
    /// Per-user mean think time between submissions.
    pub think_mean: SimDuration,
    /// The statement every user of this class submits.
    pub sql: String,
    /// Growth policy to activate (a built-in Table I name), if any.
    pub policy: Option<String>,
    /// Quota knobs and fair-share weight.
    pub profile: TenantProfile,
    /// The class's own dataset copy.
    pub dataset: Arc<Dataset>,
}

impl OpenLoopClass {
    /// A sampling class: `SELECT … WHERE p LIMIT k` with the Table III
    /// predicate for `skew` (which must match the dataset's planting).
    pub fn sampling(
        name: &str,
        dataset: Arc<Dataset>,
        skew: SkewLevel,
        k: u64,
        users: u64,
        think_mean: SimDuration,
    ) -> Self {
        let pred = PaperPredicate::for_skew(skew).sql;
        OpenLoopClass {
            name: name.to_string(),
            users,
            think_mean,
            sql: format!(
                "SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM {name} WHERE {pred} LIMIT {k}"
            ),
            policy: None,
            profile: TenantProfile {
                name: name.to_string(),
                ..TenantProfile::default()
            },
            dataset,
        }
    }

    /// A non-sampling class: the same select-project query without a
    /// `LIMIT`, compiled to a static full scan.
    pub fn scanning(
        name: &str,
        dataset: Arc<Dataset>,
        skew: SkewLevel,
        users: u64,
        think_mean: SimDuration,
    ) -> Self {
        let pred = PaperPredicate::for_skew(skew).sql;
        OpenLoopClass {
            name: name.to_string(),
            users,
            think_mean,
            sql: format!("SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM {name} WHERE {pred}"),
            policy: None,
            profile: TenantProfile {
                name: name.to_string(),
                ..TenantProfile::default()
            },
            dataset,
        }
    }

    /// Activate a built-in policy (Table I name) for this class.
    pub fn with_policy(mut self, name: &str) -> Self {
        self.policy = Some(name.to_string());
        self
    }

    /// Set the weighted-fair-share weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.profile.weight = weight;
        self
    }

    /// Set the admission quota knobs.
    pub fn with_quota(mut self, max_in_flight: u32, queue_cap: u32) -> Self {
        self.profile.max_in_flight = max_in_flight;
        self.profile.queue_cap = queue_cap;
        self
    }
}

/// A complete open-loop scenario.
#[derive(Clone)]
pub struct OpenLoopSpec {
    /// The tenant classes.
    pub classes: Vec<OpenLoopClass>,
    /// Arrivals stop after this horizon; the run then drains.
    pub horizon: SimDuration,
    /// Service-wide cap on concurrently running jobs.
    pub service_cap: u32,
    /// Root seed for all arrival randomness.
    pub seed: u64,
}

/// Per-tenant results of one open-loop run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Class name.
    pub name: String,
    /// Simulated user population.
    pub users: u64,
    /// Statements offered to the service (admitted + rejected).
    pub submitted: u64,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Submissions refused at the queue-depth cap.
    pub rejected: u64,
    /// Admitted submissions that could not start immediately.
    pub deferred: u64,
    /// Submission-to-completion latency, seconds.
    pub response_secs: OnlineStats,
    /// Partitions processed per completed query.
    pub splits_per_query: OnlineStats,
    /// Fraction of completed map tasks that ran data-local.
    pub locality: f64,
    /// Submission-to-launch wait (the admission queue), milliseconds.
    pub queue_wait: LogHistogram,
}

/// Aggregated results of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// One report per class, in spec order.
    pub tenants: Vec<TenantReport>,
    /// The arrival horizon.
    pub horizon: SimDuration,
}

impl OpenLoopReport {
    /// Total simulated user population.
    pub fn total_users(&self) -> u64 {
        self.tenants.iter().map(|t| t.users).sum()
    }

    /// Total completed queries.
    pub fn total_completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Completed queries per hour across all tenants.
    pub fn jobs_per_hour(&self) -> f64 {
        self.total_completed() as f64 / (self.horizon.as_millis() as f64 / 3_600_000.0)
    }
}

struct ClassRun {
    next_arrival: SimTime,
    rng: DetRng,
    tickets: Vec<Ticket>,
    submitted: u64,
}

/// Run an open-loop scenario over `runtime` (whose scheduler choice is
/// the experiment variable: FIFO vs Fair at scale).
pub fn run_open_loop(spec: &OpenLoopSpec, runtime: MrRuntime) -> OpenLoopReport {
    assert!(!spec.classes.is_empty(), "need at least one class");
    let mut svc = QueryService::new(
        runtime,
        ServiceConfig {
            max_in_flight_jobs: spec.service_cap,
        },
    );
    let root = DetRng::seed_from(spec.seed);
    let mut runs: Vec<ClassRun> = Vec::with_capacity(spec.classes.len());
    let mut tenants = Vec::with_capacity(spec.classes.len());
    for class in &spec.classes {
        assert!(class.users > 0, "class {} has no users", class.name);
        svc.register_table(&class.name, Arc::clone(&class.dataset));
        let mut state = SessionState::new();
        if let Some(policy) = &class.policy {
            state
                .set_active_policy(policy)
                .expect("open-loop policies are built-in Table I names");
        }
        let tenant = svc.add_tenant_with_state(class.profile.clone(), state);
        tenants.push(tenant);
        runs.push(ClassRun {
            next_arrival: SimTime::ZERO,
            rng: root.fork_named(&class.name),
            tickets: Vec::new(),
            submitted: 0,
        });
    }
    let horizon = SimTime::ZERO + spec.horizon;

    // Merge the per-class aggregated Poisson streams in time order.
    while let Some(idx) = (0..runs.len())
        .filter(|&i| runs[i].next_arrival <= horizon)
        .min_by_key(|&i| (runs[i].next_arrival, i))
    {
        let at = runs[idx].next_arrival;
        svc.run_until(at);
        let class = &spec.classes[idx];
        let run = &mut runs[idx];
        run.submitted += 1;
        match svc.submit(tenants[idx], &class.sql) {
            Ok(ServiceReply::Admitted(ticket)) => run.tickets.push(ticket),
            Ok(ServiceReply::Immediate(_)) => unreachable!("open-loop statements are SELECTs"),
            Err(ServiceError::Rejected { .. }) => {} // counted by the service
            Err(e) => panic!("open-loop submission failed: {e}"),
        }
        // Superposed Poisson: gap mean is think_mean / users.
        let mean_gap = class.think_mean.as_millis() as f64 / class.users as f64;
        let gap = exponential_millis(mean_gap, &mut run.rng);
        run.next_arrival = at + SimDuration::from_millis(gap.max(1));
    }
    svc.run_until_idle();

    let tenants_out = spec
        .classes
        .iter()
        .zip(&tenants)
        .zip(runs)
        .map(|((class, &tenant), run)| {
            let stats = svc.tenant_stats(tenant).clone();
            let mut response_secs = OnlineStats::new();
            let mut splits_per_query = OnlineStats::new();
            let mut completed = 0u64;
            for ticket in &run.tickets {
                let result = svc
                    .take_result(ticket)
                    .expect("drained service has every admitted result");
                assert!(!result.failed, "open-loop query failed");
                completed += 1;
                response_secs.push(result.response_time.as_secs_f64());
                splits_per_query.push(result.splits_processed as f64);
            }
            assert_eq!(completed, stats.completed, "every admitted query completed");
            let locality = if stats.splits_processed == 0 {
                0.0
            } else {
                stats.local_tasks as f64 / stats.splits_processed as f64
            };
            TenantReport {
                name: class.name.clone(),
                users: class.users,
                submitted: run.submitted,
                completed,
                rejected: stats.rejected,
                deferred: stats.deferred,
                response_secs,
                splits_per_query,
                locality,
                queue_wait: svc
                    .metrics()
                    .queue_wait(&class.profile.name)
                    .cloned()
                    .unwrap_or_default(),
            }
        })
        .collect();
    OpenLoopReport {
        tenants: tenants_out,
        horizon: spec.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::DatasetSpec;
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_mapreduce::{ClusterConfig, CostModel, FairScheduler, MrRuntime};

    fn world(copies: usize) -> (MrRuntime, Vec<Arc<Dataset>>) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(77);
        let datasets = (0..copies)
            .map(|i| {
                Arc::new(Dataset::build(
                    &mut ns,
                    DatasetSpec::small(&format!("copy{i}"), 10, 1_000, SkewLevel::High, 77),
                    &mut EvenRoundRobin::starting_at(i as u32),
                    &mut rng,
                ))
            })
            .collect();
        let rt = MrRuntime::new(
            ClusterConfig::paper_multi_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FairScheduler::paper_default()),
        );
        (rt, datasets)
    }

    #[test]
    fn million_user_population_runs_in_constant_memory() {
        // 1M users × 1000s think time → one aggregated stream with a
        // 1ms mean gap ... scaled here: 1M users, ~16-minute mean think
        // time → 1 arrival/second for a 30-second horizon.
        let (rt, ds) = world(1);
        let spec = OpenLoopSpec {
            classes: vec![OpenLoopClass::sampling(
                "mega",
                Arc::clone(&ds[0]),
                SkewLevel::High,
                5,
                1_000_000,
                SimDuration::from_millis(1_000_000),
            )
            .with_quota(8, 64)],
            horizon: SimDuration::from_secs(30),
            service_cap: 16,
            seed: 5,
        };
        let report = run_open_loop(&spec, rt);
        assert_eq!(report.total_users(), 1_000_000);
        let t = &report.tenants[0];
        assert!(
            t.submitted >= 10,
            "expected ~30 arrivals, got {}",
            t.submitted
        );
        assert_eq!(t.completed + t.rejected, t.submitted);
        assert!(t.completed > 0);
        assert_eq!(t.queue_wait.count(), t.completed);
        assert!(t.response_secs.mean() > 0.0);
    }

    #[test]
    fn saturation_rejects_and_defers_deterministically() {
        let (rt, ds) = world(1);
        let class = OpenLoopClass::sampling(
            "burst",
            Arc::clone(&ds[0]),
            SkewLevel::High,
            5,
            50_000,
            SimDuration::from_millis(50_000), // ~1 arrival/ms: instant saturation
        )
        .with_quota(1, 2);
        let spec = OpenLoopSpec {
            classes: vec![class],
            horizon: SimDuration::from_secs(1),
            service_cap: 1,
            seed: 9,
        };
        let (rt2, ds2) = world(1);
        let mut spec2 = spec.clone();
        spec2.classes[0].dataset = Arc::clone(&ds2[0]);
        let a = run_open_loop(&spec, rt);
        let b = run_open_loop(&spec2, rt2);
        let t = &a.tenants[0];
        assert!(
            t.rejected > 0,
            "queue cap 2 must reject under a 1ms gap flood"
        );
        assert!(t.deferred > 0, "quota 1 must defer queued arrivals");
        assert_eq!(t.completed + t.rejected, t.submitted);
        // Same seed, same world → identical outcome (determinism).
        assert_eq!(t.submitted, b.tenants[0].submitted);
        assert_eq!(t.completed, b.tenants[0].completed);
        assert_eq!(t.rejected, b.tenants[0].rejected);
    }

    #[test]
    fn per_class_policies_and_weights_apply() {
        let (rt, ds) = world(2);
        let spec = OpenLoopSpec {
            classes: vec![
                OpenLoopClass::sampling(
                    "gold",
                    Arc::clone(&ds[0]),
                    SkewLevel::High,
                    5,
                    100,
                    SimDuration::from_secs(200),
                )
                .with_policy("C")
                .with_weight(3)
                .with_quota(4, 32),
                OpenLoopClass::scanning(
                    "scan",
                    Arc::clone(&ds[1]),
                    SkewLevel::High,
                    100,
                    SimDuration::from_secs(400),
                )
                .with_quota(4, 32),
            ],
            horizon: SimDuration::from_secs(60),
            service_cap: 8,
            seed: 11,
        };
        let report = run_open_loop(&spec, rt);
        assert_eq!(report.tenants.len(), 2);
        assert!(report.total_completed() > 0);
        let scan = &report.tenants[1];
        if scan.completed > 0 {
            // Scans read every partition of their 10-split copy.
            assert_eq!(scan.splits_per_query.mean(), 10.0);
        }
    }
}
