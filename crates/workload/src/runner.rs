//! The closed-loop workload runner.
//!
//! Every user keeps exactly one job in flight: when their job completes,
//! the next one is submitted immediately (zero think time, matching the
//! paper's "submits a query and waits for its completion before submitting
//! another"). Completions inside the warm-up phase are discarded; resource
//! metrics are reset at the warm-up boundary; throughput is computed over
//! the measurement window only.

use std::collections::HashMap;

use incmr_core::{build_adaptive_sampling_job, build_sampling_job, build_scan_job};
use incmr_mapreduce::{GrowthDriver, JobId, JobSpec, MetricsRegistry, MetricsReport, MrRuntime};
use incmr_simkit::rng::splitmix64;
use incmr_simkit::stats::OnlineStats;

use crate::spec::{UserClass, UserSpec, WorkloadSpec};

/// Aggregated results of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Jobs completed in the measurement window by the Sampling class.
    pub sampling_completed: u64,
    /// Jobs completed in the measurement window by the Non-Sampling class.
    pub non_sampling_completed: u64,
    /// Window length in hours.
    pub window_hours: f64,
    /// Cluster resource metrics over the measurement window.
    pub metrics: MetricsReport,
    /// Response-time statistics per class (seconds).
    pub sampling_response_secs: OnlineStats,
    /// Response-time statistics for the Non-Sampling class (seconds).
    pub non_sampling_response_secs: OnlineStats,
    /// Partitions processed per completed sampling job.
    pub sampling_splits_processed: OnlineStats,
    /// Latency histograms merged over every Sampling-class job completed in
    /// the measurement window (queue waits keyed by the scheduler's name).
    pub sampling_hist: MetricsRegistry,
    /// Latency histograms merged over every Non-Sampling-class job
    /// completed in the measurement window.
    pub non_sampling_hist: MetricsRegistry,
}

impl WorkloadReport {
    /// Sampling-class throughput, jobs/hour.
    pub fn sampling_jobs_per_hour(&self) -> f64 {
        self.sampling_completed as f64 / self.window_hours
    }

    /// Non-Sampling-class throughput, jobs/hour.
    pub fn non_sampling_jobs_per_hour(&self) -> f64 {
        self.non_sampling_completed as f64 / self.window_hours
    }

    /// Combined throughput, jobs/hour.
    pub fn total_jobs_per_hour(&self) -> f64 {
        self.sampling_jobs_per_hour() + self.non_sampling_jobs_per_hour()
    }
}

fn build_user_job(
    user: &UserSpec,
    spec: &WorkloadSpec,
    job_seed: u64,
) -> (JobSpec, Box<dyn GrowthDriver>) {
    match &user.class {
        UserClass::Sampling {
            k,
            policy,
            sample_mode,
        } => {
            let (s, d) = build_sampling_job(
                &user.dataset,
                *k,
                policy.clone(),
                spec.scan_mode,
                *sample_mode,
                job_seed,
            );
            (s, d)
        }
        UserClass::NonSampling => {
            let (s, d) = build_scan_job(&user.dataset, spec.scan_mode);
            (s, d)
        }
        UserClass::AdaptiveSampling { k, sample_mode } => {
            let (s, d) = build_adaptive_sampling_job(
                &user.dataset,
                *k,
                spec.scan_mode,
                *sample_mode,
                job_seed,
            );
            (s, d)
        }
    }
}

/// Run a workload to its configured horizon and report steady-state
/// throughput and resource usage.
///
/// The runtime must have been built over the namespace holding every
/// user's dataset copy. The run ends at `warmup + measure`; jobs still in
/// flight at the horizon are abandoned uncounted (standard fixed-window
/// measurement).
pub fn run_workload(runtime: &mut MrRuntime, spec: &WorkloadSpec) -> WorkloadReport {
    assert!(!spec.users.is_empty(), "workload needs at least one user");
    let warmup_end = runtime.now() + spec.warmup;
    let horizon = warmup_end + spec.measure;

    let mut owner: HashMap<JobId, usize> = HashMap::new();
    let mut iteration: Vec<u64> = vec![0; spec.users.len()];

    // Launch everyone.
    for (u, user) in spec.users.iter().enumerate() {
        let job_seed = splitmix64(spec.seed ^ splitmix64(u as u64));
        let (job_spec, driver) = build_user_job(user, spec, job_seed);
        let id = runtime.submit(job_spec, driver);
        owner.insert(id, u);
    }

    let mut metrics_reset = false;
    let mut report = WorkloadReport {
        sampling_completed: 0,
        non_sampling_completed: 0,
        window_hours: spec.measure.as_secs_f64() / 3600.0,
        metrics: MetricsReport {
            cpu_util_pct: 0.0,
            disk_kb_per_sec: 0.0,
            locality_pct: 0.0,
            slot_occupancy_pct: 0.0,
        },
        sampling_response_secs: OnlineStats::new(),
        non_sampling_response_secs: OnlineStats::new(),
        sampling_splits_processed: OnlineStats::new(),
        sampling_hist: MetricsRegistry::new(),
        non_sampling_hist: MetricsRegistry::new(),
    };

    loop {
        let Some(done) = runtime.run_until_any_completion() else {
            panic!("closed-loop workload drained the event queue before the horizon");
        };
        let now = runtime.now();
        if !metrics_reset && now >= warmup_end {
            runtime.reset_metrics();
            metrics_reset = true;
        }
        if now > horizon {
            break;
        }
        let u = owner.remove(&done).expect("completion belongs to a user");
        // Count only completions inside the measurement window.
        if now >= warmup_end {
            let result = runtime.job_result(done);
            let response = result.response_time().as_secs_f64();
            match spec.users[u].class {
                UserClass::Sampling { .. } | UserClass::AdaptiveSampling { .. } => {
                    report.sampling_completed += 1;
                    report.sampling_response_secs.push(response);
                    report
                        .sampling_splits_processed
                        .push(result.splits_processed as f64);
                    report.sampling_hist.merge(&result.histograms);
                }
                UserClass::NonSampling => {
                    report.non_sampling_completed += 1;
                    report.non_sampling_response_secs.push(response);
                    report.non_sampling_hist.merge(&result.histograms);
                }
            }
        }
        // The result has been read; drop its bulky state so hours-long
        // runs stay bounded by in-flight jobs, not completed ones.
        runtime.release_job_result(done);
        // Closed loop: resubmit immediately.
        iteration[u] += 1;
        let job_seed = splitmix64(spec.seed ^ splitmix64(u as u64 ^ (iteration[u] << 20)));
        let (job_spec, driver) = build_user_job(&spec.users[u], spec, job_seed);
        let id = runtime.submit(job_spec, driver);
        owner.insert(id, u);
    }

    if !metrics_reset {
        runtime.reset_metrics();
    }
    // Report over the actually-elapsed window (the run always overshoots
    // the horizon slightly; reporting at an earlier instant than the last
    // recorded change would corrupt the time-weighted means).
    report.metrics = runtime.metrics().report(runtime.now());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use incmr_core::Policy;
    use incmr_data::{Dataset, DatasetSpec, SkewLevel};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_mapreduce::{ClusterConfig, CostModel, FairScheduler, FifoScheduler, TaskScheduler};
    use incmr_simkit::rng::DetRng;
    use incmr_simkit::stats::LogHistogram;
    use incmr_simkit::SimDuration;

    fn world_sized(
        cfg: ClusterConfig,
        n_users: usize,
        records_per_partition: u64,
    ) -> (MrRuntime, Vec<Arc<Dataset>>) {
        world_sched(
            cfg,
            n_users,
            records_per_partition,
            Box::new(FifoScheduler::new()),
        )
    }

    fn world_sched(
        cfg: ClusterConfig,
        n_users: usize,
        records_per_partition: u64,
        scheduler: Box<dyn TaskScheduler>,
    ) -> (MrRuntime, Vec<Arc<Dataset>>) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(17);
        let datasets: Vec<Arc<Dataset>> = (0..n_users)
            .map(|i| {
                Arc::new(Dataset::build(
                    &mut ns,
                    DatasetSpec::small(
                        &format!("copy{i}"),
                        16,
                        records_per_partition,
                        SkewLevel::Zero,
                        100 + i as u64,
                    ),
                    &mut EvenRoundRobin::starting_at((i * 7) as u32),
                    &mut rng,
                ))
            })
            .collect();
        let rt = MrRuntime::new(cfg, CostModel::paper_default(), ns, scheduler);
        (rt, datasets)
    }

    fn world_on(cfg: ClusterConfig, n_users: usize) -> (MrRuntime, Vec<Arc<Dataset>>) {
        world_sized(cfg, n_users, 4_000)
    }

    fn world(n_users: usize) -> (MrRuntime, Vec<Arc<Dataset>>) {
        world_on(ClusterConfig::paper_multi_user(), n_users)
    }

    #[test]
    fn homogeneous_workload_reaches_steady_state() {
        let (mut rt, datasets) = world(4);
        let spec = WorkloadSpec::homogeneous(
            datasets,
            10,
            Policy::la(),
            SimDuration::from_mins(2),
            SimDuration::from_mins(20),
            1,
        );
        let report = run_workload(&mut rt, &spec);
        assert!(
            report.sampling_completed > 10,
            "got {}",
            report.sampling_completed
        );
        assert_eq!(report.non_sampling_completed, 0);
        assert!(report.sampling_jobs_per_hour() > 0.0);
        assert!(report.metrics.slot_occupancy_pct > 0.0);
        assert!(report.sampling_response_secs.mean() > 0.0);
    }

    #[test]
    fn heterogeneous_workload_counts_both_classes() {
        // Run on the 40-slot cluster with heavy partitions so the sampling
        // users face contention AND incremental intake saves real work: on
        // an unloaded 160-slot cluster LA's grab limit (0.2*AS = 32) exceeds
        // the 16 partitions, sampling jobs grab their whole input up front,
        // and both classes tie exactly instead of diverging; at toy split
        // sizes the 4 s evaluation interval dominates and inverts the
        // ordering instead.
        let (mut rt, datasets) = world_sized(ClusterConfig::paper_single_user(), 4, 400_000);
        let spec = WorkloadSpec::heterogeneous(
            datasets,
            2,
            10,
            Policy::la(),
            SimDuration::from_mins(2),
            SimDuration::from_mins(30),
            2,
        );
        let report = run_workload(&mut rt, &spec);
        assert!(report.sampling_completed > 0);
        assert!(report.non_sampling_completed > 0);
        assert!(report.total_jobs_per_hour() > 0.0);
        // Scans read everything; sampling jobs stop early — scans are slower.
        assert!(
            report.non_sampling_response_secs.mean() > report.sampling_response_secs.mean(),
            "scan {}s vs sample {}s",
            report.non_sampling_response_secs.mean(),
            report.sampling_response_secs.mean()
        );
    }

    #[test]
    fn fair_scheduler_trades_queue_wait_for_locality_versus_fifo() {
        // The paper's multi-user scheduler comparison (Section V-F): the
        // Fair Scheduler's delay scheduling achieves near-perfect data
        // locality but keeps slots idle while tasks wait for a local one
        // (its measured low slot occupancy). FIFO is the mirror image:
        // slots fill greedily, locality suffers. The per-class queue-wait
        // histograms make the trade measurable — every class waits longer
        // in queue under Fair, and in both runs the small sampling jobs
        // out-queue the scan jobs whose deep task queues dominate the line.
        let run = |scheduler: Box<dyn TaskScheduler>| {
            let (mut rt, datasets) =
                world_sched(ClusterConfig::paper_single_user(), 4, 400_000, scheduler);
            let spec = WorkloadSpec::heterogeneous(
                datasets,
                2,
                10,
                Policy::la(),
                SimDuration::from_mins(2),
                SimDuration::from_mins(30),
                2,
            );
            run_workload(&mut rt, &spec)
        };
        let fifo = run(Box::new(FifoScheduler::new()));
        let fair = run(Box::new(FairScheduler::paper_default()));
        assert!(fifo.sampling_completed > 0 && fair.sampling_completed > 0);
        // Per-job histograms are keyed by the scheduler that dispatched the
        // tasks, so each run exposes exactly its own scheduler's family.
        assert!(fifo.sampling_hist.queue_wait("fair").is_none());
        assert!(fair.sampling_hist.queue_wait("fifo").is_none());
        let fifo_sample = fifo.sampling_hist.queue_wait("fifo").expect("fifo waits");
        let fair_sample = fair.sampling_hist.queue_wait("fair").expect("fair waits");
        let fifo_scan = fifo.non_sampling_hist.queue_wait("fifo").unwrap();
        let fair_scan = fair.non_sampling_hist.queue_wait("fair").unwrap();
        assert!(fifo_sample.count() > 0 && fair_sample.count() > 0);
        let mean = |h: &LogHistogram| h.sum() as f64 / h.count() as f64;
        assert!(
            mean(fair_sample) > mean(fifo_sample) && mean(fair_scan) > mean(fifo_scan),
            "delay scheduling must show up as queue wait: sampling {:.0} vs {:.0} ms, \
             scans {:.0} vs {:.0} ms (fair vs fifo)",
            mean(fair_sample),
            mean(fifo_sample),
            mean(fair_scan),
            mean(fifo_scan)
        );
        assert!(
            fair_sample.p95() > fifo_sample.p95(),
            "the tail moves too: fair p95 {:?} vs fifo p95 {:?}",
            fair_sample.p95(),
            fifo_sample.p95()
        );
        // Within each run the sampling class, which only ever queues a
        // handful of tasks at a time, waits less than the scan class.
        assert!(mean(fifo_sample) < mean(fifo_scan));
        assert!(mean(fair_sample) < mean(fair_scan));
        // And the wait buys what the paper says it buys: locality up,
        // occupancy down.
        assert!(
            fair.metrics.locality_pct > fifo.metrics.locality_pct,
            "fair locality {:.1}% !> fifo {:.1}%",
            fair.metrics.locality_pct,
            fifo.metrics.locality_pct
        );
        assert!(
            fair.metrics.slot_occupancy_pct < fifo.metrics.slot_occupancy_pct,
            "fair occupancy {:.1}% !< fifo {:.1}%",
            fair.metrics.slot_occupancy_pct,
            fifo.metrics.slot_occupancy_pct
        );
    }

    #[test]
    fn workload_runs_are_deterministic() {
        let run = |seed: u64| {
            let (mut rt, datasets) = world(3);
            let spec = WorkloadSpec::homogeneous(
                datasets,
                10,
                Policy::ma(),
                SimDuration::from_mins(1),
                SimDuration::from_mins(10),
                seed,
            );
            let r = run_workload(&mut rt, &spec);
            (r.sampling_completed, r.sampling_response_secs.mean())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn hadoop_policy_yields_lower_throughput_than_la() {
        // The paper's regime: map tasks are expensive (hundreds of
        // thousands of records) and a tiny fraction of the input suffices
        // for the sample, so incremental intake saves real work. At toy
        // task sizes the 4 s evaluation interval would dominate instead.
        let throughput = |policy: Policy| {
            let mut ns = Namespace::new(ClusterTopology::paper_cluster());
            let mut rng = DetRng::seed_from(17);
            let datasets: Vec<Arc<Dataset>> = (0..4)
                .map(|i| {
                    Arc::new(Dataset::build(
                        &mut ns,
                        DatasetSpec::small(
                            &format!("copy{i}"),
                            32,
                            200_000,
                            SkewLevel::Zero,
                            100 + i,
                        ),
                        &mut EvenRoundRobin::starting_at((i * 11) as u32),
                        &mut rng,
                    ))
                })
                .collect();
            let mut rt = MrRuntime::new(
                ClusterConfig::paper_single_user(),
                CostModel::paper_default(),
                ns,
                Box::new(FifoScheduler::new()),
            );
            let spec = WorkloadSpec::homogeneous(
                datasets,
                10,
                policy,
                SimDuration::from_mins(3),
                SimDuration::from_mins(20),
                3,
            );
            run_workload(&mut rt, &spec).sampling_jobs_per_hour()
        };
        let hadoop = throughput(Policy::hadoop());
        let la = throughput(Policy::la());
        assert!(
            la > hadoop,
            "LA ({la:.1} jobs/h) should beat Hadoop ({hadoop:.1} jobs/h) under contention"
        );
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_workload_panics() {
        let (mut rt, _) = world(1);
        let spec = WorkloadSpec {
            users: vec![],
            warmup: SimDuration::ZERO,
            measure: SimDuration::from_secs(1),
            scan_mode: incmr_mapreduce::ScanMode::Planted,
            seed: 1,
        };
        let _ = run_workload(&mut rt, &spec);
    }
}
