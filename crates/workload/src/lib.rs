//! # incmr-workload
//!
//! Closed-loop multi-user workload generation and steady-state throughput
//! measurement — the stand-in for the workload generator the paper credits
//! in its acknowledgements and uses for Sections V-D through V-F.
//!
//! The model matches the paper's description exactly: "We modeled a group
//! of 10 concurrent users where each user submits a query and waits for its
//! completion before submitting another query (the same query again). Each
//! of the ten users submit the same query, but each works against a
//! different copy of the dataset."
//!
//! A workload run has a warm-up phase (discarded) and a measurement window;
//! throughput is completed jobs per hour within the window, reported per
//! class (Sampling / Non-Sampling) alongside the cluster resource metrics.

pub mod open_loop;
pub mod runner;
pub mod spec;

pub use open_loop::{run_open_loop, OpenLoopClass, OpenLoopReport, OpenLoopSpec, TenantReport};
pub use runner::{run_workload, WorkloadReport};
pub use spec::{UserClass, UserSpec, WorkloadSpec};
