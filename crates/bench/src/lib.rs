//! # incmr-bench
//!
//! Criterion benchmark harness. One bench target per paper artefact
//! (`table*`, `fig*`) plus micro-benchmarks of the simulation kernel.
//!
//! The figure benches time miniature (but regime-preserving) versions of
//! each experiment — full paper-shape runs live in
//! `cargo run --release -p incmr-experiments --bin repro`. Each figure
//! bench prints its mini-scale series once before timing, so `cargo bench`
//! output doubles as a smoke reproduction.

use incmr_experiments::Calibration;
use incmr_simkit::SimDuration;

/// A miniature calibration for benchmark iterations: same task-size regime
/// as the paper (750 k-record partitions), but few users/partitions and a
/// short measurement window so one iteration is well under a second.
pub fn mini() -> Calibration {
    let mut cal = Calibration::quick();
    cal.scales = vec![2, 5];
    cal.seeds = vec![1];
    cal.users = 3;
    cal.multi_user_scale = 6;
    cal.warmup = SimDuration::from_mins(3);
    cal.measure = SimDuration::from_mins(10);
    cal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_is_small_but_same_regime() {
        let m = mini();
        assert_eq!(
            m.records_per_partition,
            Calibration::paper().records_per_partition
        );
        assert!(m.users < Calibration::paper().users);
        assert!(m.measure < Calibration::paper().measure);
    }
}
