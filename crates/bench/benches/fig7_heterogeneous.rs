//! Figure 7 bench: miniature heterogeneous workloads (FIFO scheduler),
//! Hadoop vs LA for the sampling class at a 0.5 user fraction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use incmr_bench::mini;
use incmr_core::Policy;
use incmr_experiments::fig7::{render_figure, run_hetero};
use incmr_mapreduce::FifoScheduler;

fn bench_fig7(c: &mut Criterion) {
    let cal = mini();
    let result = run_hetero(
        &cal,
        &[0.25, 0.75],
        &[Policy::hadoop(), Policy::la()],
        "fifo",
        || Box::new(FifoScheduler::new()),
    );
    println!("{}", render_figure("FIGURE 7 (mini)", &result));

    let mut g = c.benchmark_group("fig7/heterogeneous_fifo");
    g.sample_size(10);
    for policy in [Policy::hadoop(), Policy::la()] {
        g.bench_with_input(
            BenchmarkId::from_parameter(&policy.name),
            &policy,
            |b, p| {
                b.iter(|| {
                    black_box(run_hetero(
                        &cal,
                        &[0.5],
                        std::slice::from_ref(p),
                        "fifo",
                        || Box::new(FifoScheduler::new()),
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
