//! Data-plane scan micro-benchmark: how fast the host computes a batch of
//! scan map tasks at different worker-pool sizes, on both record paths.
//!
//! Two variants of the same 40 × 20k workload:
//!
//! * `scan/full_batch_40x20k` — `ScanMode::Full`, the columnar path: each
//!   split is a shared `Arc<RecordBatch>` (generated once, cached by the
//!   input format) and the mapper runs the vectorised `eval_batch` kernel
//!   over the column vectors.
//! * `scan/full_rows_40x20k` — `ScanMode::FullRows`, the legacy reference
//!   path: every read materialises `Vec<Record>` and the predicate is
//!   evaluated record by record.
//!
//! This measures the *host* wall clock of the two-plane split (see
//! `incmr-mapreduce::parallel`): simulated results are identical at every
//! thread count, so the only thing parallelism can buy is wall time.
//! Results are written to `BENCH_scan.json` (name, mean_ns, iterations)
//! so speedups can be compared across machines; records/sec per variant
//! is printed for quick reading. No speedup is asserted here because the
//! ratio is a property of the host's core count, not of the code.

use std::sync::Arc;

use criterion::{black_box, Criterion, Throughput};

use incmr_data::{Dataset, DatasetSpec, RecordFactory, SkewLevel};
use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
use incmr_mapreduce::{
    DatasetInputFormat, InputFormat, MapResult, MapUnit, Mapper, ParallelExecutor, Parallelism,
    ScanMode, SplitData,
};
use incmr_simkit::rng::DetRng;

/// The paper's scan-side map logic in miniature: evaluate the planted
/// predicate over every record — vectorised when the split arrives
/// columnar, record-at-a-time on the row reference path.
struct PredicateCountMapper {
    predicate: incmr_data::Predicate,
}

impl Mapper for PredicateCountMapper {
    fn run(&self, data: SplitData) -> MapResult {
        let (records_read, matches) = match data {
            SplitData::Batch(batch) => (
                batch.len() as u64,
                self.predicate.eval_batch(&batch).len() as u64,
            ),
            SplitData::Records(records) => (
                records.len() as u64,
                records.iter().filter(|r| self.predicate.eval(r)).count() as u64,
            ),
            other => panic!("scan bench uses full modes, got {other:?}"),
        };
        MapResult {
            records_read,
            unmaterialized_outputs: matches,
            unmaterialized_bytes: matches * 24,
            ..MapResult::default()
        }
    }
}

fn scan_units(partitions: u32, records: u64, mode: ScanMode) -> Vec<MapUnit> {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(42);
    let spec = DatasetSpec::small("scanbench", partitions, records, SkewLevel::Moderate, 42);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let predicate = ds.factory().predicate();
    let input: Arc<dyn InputFormat> = Arc::new(DatasetInputFormat::new(Arc::clone(&ds), mode));
    let mapper: Arc<dyn Mapper> = Arc::new(PredicateCountMapper { predicate });
    ds.splits()
        .iter()
        .map(|plan| MapUnit {
            input_format: Arc::clone(&input),
            mapper: Arc::clone(&mapper),
            combiner: None,
            block: plan.block,
            reduce_tasks: 1,
        })
        .collect()
}

fn bench_scan_wave(c: &mut Criterion, group: &str, mode: ScanMode) {
    // 40 splits × 20k records: one full scheduling wave on the paper's
    // 40-slot cluster, heavy enough for per-batch thread dispatch to be
    // noise.
    let units = scan_units(40, 20_000, mode);
    let records_total: u64 = 40 * 20_000;
    let mut g = c.benchmark_group(group);
    g.throughput(Throughput::Elements(records_total));
    for threads in [1u32, 2, 4, 8] {
        let mut executor = ParallelExecutor::new(Parallelism::threads(threads));
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| black_box(executor.run(units.clone()).len()))
        });
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_scan_wave(&mut c, "scan/full_batch_40x20k", ScanMode::Full);
    bench_scan_wave(&mut c, "scan/full_rows_40x20k", ScanMode::FullRows);
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {host_threads} (speedup is bounded by this)");
    let records_total = 40u64 * 20_000;
    for r in c.results() {
        let recs_per_sec = records_total as f64 / (r.mean_ns / 1e9);
        println!("{:<56} {:>12.0} records/sec", r.name, recs_per_sec);
    }
    // Cargo runs benches from the package dir; anchor the report at the
    // workspace root where tooling expects it.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    c.write_json(out).expect("write BENCH_scan.json");
    println!("wrote {out}");
}
