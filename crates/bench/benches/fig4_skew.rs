//! Figure 4 bench: planting the matching-record distribution across the
//! 5× dataset's 40 partitions, per skew level — at the paper's full size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use incmr_experiments::{fig4, Calibration};

fn bench_fig4(c: &mut Criterion) {
    let cal = Calibration::paper();
    let panels = fig4::run(&cal, 42);
    println!("{}", fig4::render_figure(&panels));

    let mut g = c.benchmark_group("fig4");
    // run() generates all three skew panels; one benchmark id covers them.
    g.bench_with_input(BenchmarkId::new("plant_5x", "all_skews"), &(), |b, _| {
        b.iter(|| black_box(fig4::run(&cal, 42)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
