//! Figure 8 bench: the miniature heterogeneous workload under the Fair
//! Scheduler vs FIFO — Criterion's two series mirror the scheduler-impact
//! comparison of Section V-F.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use incmr_bench::mini;
use incmr_core::Policy;
use incmr_experiments::fig7::run_hetero;
use incmr_experiments::fig8;
use incmr_mapreduce::{FairScheduler, FifoScheduler, TaskScheduler};

fn bench_fig8(c: &mut Criterion) {
    let cal = mini();
    let result = fig8::run_with(&cal, &[0.5], &[Policy::hadoop(), Policy::la()]);
    println!("{}", fig8::render_figure(&result));

    let mut g = c.benchmark_group("fig8/scheduler");
    g.sample_size(10);
    type SchedFactory = fn() -> Box<dyn TaskScheduler>;
    let factories: [(&str, SchedFactory); 2] = [
        ("fifo", || Box::new(FifoScheduler::new())),
        ("fair", || Box::new(FairScheduler::paper_default())),
    ];
    for (name, factory) in factories {
        g.bench_with_input(BenchmarkId::from_parameter(name), &factory, |b, f| {
            b.iter(|| black_box(run_hetero(&cal, &[0.5], &[Policy::la()], "bench", *f)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
