//! Table I–III regenerators as benchmarks (they are cheap; timing them
//! guards against regressions in dataset planning and policy rendering).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use incmr_bench::mini;
use incmr_experiments::{table1, table2, table3};

fn bench_tables(c: &mut Criterion) {
    let cal = mini();
    println!("{}", table1::render_table());
    println!("{}", table2::render_table(&cal));
    println!("{}", table3::render_table(&cal));

    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(table1::render_table()))
    });
    c.bench_function("table2/compute", |b| {
        b.iter(|| black_box(table2::run(&cal)))
    });
    c.bench_function("table3/plan_and_measure", |b| {
        b.iter(|| black_box(table3::run(&cal)))
    });
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
