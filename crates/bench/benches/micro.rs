//! Micro-benchmarks of the kernel pieces every experiment leans on:
//! event queue throughput, processor-sharing resources, Zipf sampling,
//! record generation, predicate evaluation, estimator projection, and
//! policy-expression parsing.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use incmr_core::SelectivityEstimator;
use incmr_data::generator::{RecordFactory, SplitGenerator, SplitSpec};
use incmr_data::lineitem::{col, LineItemFactory};
use incmr_data::Value;
use incmr_simkit::dist::Zipf;
use incmr_simkit::resource::PsResource;
use incmr_simkit::rng::DetRng;
use incmr_simkit::{Sim, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simkit/event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            for i in 0..10_000u64 {
                sim.schedule_at(SimTime::from_millis((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = sim.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.bench_function("schedule_cancel_half_10k", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            let ids: Vec<_> = (0..10_000u64)
                .map(|i| sim.schedule_at(SimTime::from_millis(i), i))
                .collect();
            for id in ids.iter().step_by(2) {
                sim.cancel(*id);
            }
            while sim.pop().is_some() {}
        })
    });
    g.finish();
}

fn bench_ps_resource(c: &mut Criterion) {
    c.bench_function("simkit/ps_resource/1k_flows_staggered", |b| {
        b.iter(|| {
            let mut r = PsResource::new(1e6);
            for i in 0..1_000u64 {
                r.add_flow(SimTime::from_millis(i), 1_000.0);
            }
            r.advance(SimTime::from_secs(3_600));
            black_box(r.take_completed().len())
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("simkit/zipf");
    g.throughput(Throughput::Elements(15_000));
    for z in [0.0f64, 1.0, 2.0] {
        g.bench_function(format!("plant_15k_over_800_z{z}"), |b| {
            let zipf = Zipf::new(800, z);
            b.iter(|| {
                let mut rng = DetRng::seed_from(7);
                black_box(zipf.sample_counts(15_000, &mut rng))
            })
        });
    }
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let factory = LineItemFactory::new(col::TAX, Value::Float(0.77));
    let mut g = c.benchmark_group("data/generator");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("full_scan_10k_records", |b| {
        let gen = SplitGenerator::new(&factory, SplitSpec::new(10_000, 50, 3));
        b.iter(|| black_box(gen.full_iter().count()))
    });
    g.throughput(Throughput::Elements(375));
    g.bench_function("planted_scan_375_matches", |b| {
        let gen = SplitGenerator::new(&factory, SplitSpec::new(750_000, 375, 3));
        b.iter(|| black_box(gen.planted_matches().len()))
    });
    g.finish();
}

fn bench_predicate(c: &mut Criterion) {
    let factory = LineItemFactory::new(col::TAX, Value::Float(0.77));
    let predicate = factory.predicate();
    let gen = SplitGenerator::new(&factory, SplitSpec::new(5_000, 25, 3));
    let records: Vec<_> = gen.full_iter().collect();
    let mut g = c.benchmark_group("data/predicate");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("eval_5k_records", |b| {
        b.iter(|| records.iter().filter(|r| predicate.eval(r)).count())
    });
    g.finish();
}

fn bench_estimator(c: &mut Criterion) {
    use incmr_mapreduce::{JobId, JobProgress};
    c.bench_function("core/estimator/project", |b| {
        let mut e = SelectivityEstimator::new();
        e.update(&JobProgress {
            job: JobId(0),
            splits_added: 100,
            splits_completed: 60,
            splits_running: 40,
            splits_pending: 0,
            records_processed: 45_000_000,
            map_output_records: 22_500,
        });
        b.iter(|| black_box(e.project(10_000, 40)))
    });
}

fn bench_policy_parse(c: &mut Criterion) {
    use incmr_core::policy_file::parse_grab_limit;
    c.bench_function("core/policy/parse_grab_limit", |b| {
        b.iter(|| black_box(parse_grab_limit("(AS > 0) ? 0.5*AS : 0.2*TS").unwrap()))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_ps_resource,
    bench_zipf,
    bench_generator,
    bench_predicate,
    bench_estimator,
    bench_policy_parse
);
criterion_main!(benches);
