//! Figure 5 bench: one single-user sampling job per policy on a 5×
//! moderately-skewed dataset (mini windows). Criterion's comparison across
//! policy ids mirrors the figure's per-policy series; the full grid is
//! printed once before timing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use incmr_bench::mini;
use incmr_core::{build_sampling_job, Policy, SampleMode};
use incmr_data::SkewLevel;
use incmr_experiments::fig5;
use incmr_mapreduce::{FifoScheduler, MrRuntime, ScanMode};

fn run_one(cal: &incmr_experiments::Calibration, policy: Policy) -> f64 {
    let (ns, ds) = cal.build_world(5, SkewLevel::Moderate, 5);
    let mut rt = MrRuntime::new(
        cal.cluster_single,
        cal.cost,
        ns,
        Box::new(FifoScheduler::new()),
    );
    let (spec, driver) =
        build_sampling_job(&ds, cal.k, policy, ScanMode::Planted, SampleMode::FirstK, 9);
    let id = rt.submit(spec, driver);
    rt.run_until_idle();
    rt.job_result(id).response_time().as_secs_f64()
}

fn bench_fig5(c: &mut Criterion) {
    let cal = mini();
    let grid = fig5::run(&cal);
    println!("{}", fig5::render_figure(&cal, &grid));

    let mut g = c.benchmark_group("fig5/single_user_job");
    g.sample_size(10);
    for policy in Policy::table1() {
        g.bench_with_input(
            BenchmarkId::from_parameter(&policy.name),
            &policy,
            |b, p| b.iter(|| black_box(run_one(&cal, p.clone()))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
