//! Scheduler dispatch cost at multi-tenant scale.
//!
//! Two views of the same question — what does one scheduling decision
//! cost when thousands of dynamic jobs are queued?
//!
//! * `assign/*` — the schedulers alone, handed a synthetic complete view
//!   of 1k / 10k runnable jobs: the linear FIFO/Fair dispatch loops
//!   against their index-backed equivalents. On a complete view the win
//!   shows for Fair (the linear share-sort loop re-scans every job per
//!   slot); indexed FIFO pays a per-call order build here and collects
//!   its payoff from the runtime's O(free slots) prefix views instead,
//!   which `heartbeat/*` measures.
//! * `heartbeat/*` — the whole runtime: one `MrRuntime::step()` with a
//!   steady backlog of 1k / 10k queued sampling jobs (completed jobs are
//!   resubmitted, so the backlog never drains). This is the number the
//!   query service pays per event; with the runnable-prefix views and
//!   per-node pending indexes it must grow sub-linearly from 1k to 10k.
//!
//! Results are written to `BENCH_sched.json` (name, mean_ns, iterations)
//! and the 1k→10k heartbeat growth ratio is printed for the gate.

use std::sync::Arc;

use criterion::{black_box, Criterion, Throughput};

use incmr_core::{build_sampling_job, Policy, SampleMode};
use incmr_data::{Dataset, DatasetSpec, SkewLevel};
use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
use incmr_mapreduce::{
    ClusterConfig, CostModel, FairScheduler, FifoScheduler, IndexedFairScheduler,
    IndexedFifoScheduler, JobId, MrRuntime, ScanMode, SchedJob, SchedView, TaskId, TaskScheduler,
};
use incmr_simkit::rng::DetRng;
use incmr_simkit::SimTime;

const NODES: usize = 10;

/// A synthetic complete view: `jobs` runnable jobs, four pending tasks
/// each with two local replicas, over a 10-node cluster with a handful
/// of free slots — the shape a heartbeat sees under a deep backlog.
fn synthetic_view(jobs: u32) -> SchedView {
    let jobs = (0..jobs)
        .map(|j| {
            let tasks: Vec<TaskId> = (0..4).map(TaskId).collect();
            let mut local_by_node = vec![Vec::new(); NODES];
            for (i, &t) in tasks.iter().enumerate() {
                local_by_node[(j as usize + i) % NODES].push(t);
                local_by_node[(j as usize + i + 3) % NODES].push(t);
            }
            SchedJob {
                job: JobId(j),
                submit_seq: j as u64,
                running: j % 3,
                pending_total: tasks.len() as u32,
                head_replica_less: vec![false; tasks.len()],
                head: tasks,
                local_by_node,
                banned_nodes: Vec::new(),
            }
        })
        .collect();
    SchedView {
        now: SimTime::from_secs(30),
        free_slots: vec![1; NODES],
        jobs,
        complete: true,
    }
}

fn bench_assign(c: &mut Criterion) {
    let mut g = c.benchmark_group("assign");
    for &jobs in &[1_000u32, 10_000] {
        let view = synthetic_view(jobs);
        let mut cases: Vec<(String, Box<dyn TaskScheduler>)> = vec![
            (
                format!("fifo_linear_{jobs}"),
                Box::new(FifoScheduler::new()),
            ),
            (
                format!("fifo_indexed_{jobs}"),
                Box::new(IndexedFifoScheduler::new()),
            ),
            (
                format!("fair_linear_{jobs}"),
                Box::new(FairScheduler::paper_default()),
            ),
            (
                format!("fair_indexed_{jobs}"),
                Box::new(IndexedFairScheduler::paper_default()),
            ),
        ];
        for (name, scheduler) in &mut cases {
            g.throughput(Throughput::Elements(NODES as u64));
            g.bench_function(name.as_str(), |b| {
                b.iter(|| black_box(scheduler.assign(&view).len()))
            });
        }
    }
    g.finish();
}

/// A runtime with `jobs` queued dynamic sampling jobs over one shared
/// dataset copy — the multi-tenant service's cluster at saturation.
fn queued_world(jobs: u32) -> (MrRuntime, Arc<Dataset>) {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(42);
    let spec = DatasetSpec::small("schedbench", 8, 1_000, SkewLevel::Moderate, 42);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let mut rt = MrRuntime::new(
        ClusterConfig::paper_multi_user(),
        CostModel::paper_default(),
        ns,
        Box::new(FifoScheduler::new()),
    );
    for seed in 0..jobs {
        submit_one(&mut rt, &ds, seed as u64);
    }
    (rt, ds)
}

fn submit_one(rt: &mut MrRuntime, ds: &Arc<Dataset>, seed: u64) {
    let (spec, driver) = build_sampling_job(
        ds,
        5,
        Policy::la(),
        ScanMode::Planted,
        SampleMode::FirstK,
        seed,
    );
    rt.submit(spec, driver);
}

fn bench_heartbeat(c: &mut Criterion) {
    let mut g = c.benchmark_group("heartbeat");
    for &jobs in &[1_000u32, 10_000] {
        let (mut rt, ds) = queued_world(jobs);
        let mut seed = jobs as u64;
        g.bench_function(format!("step_{jobs}_queued"), |b| {
            b.iter(|| {
                let progressed = rt.step();
                // Hold the backlog at `jobs`: resubmit every completion.
                for id in rt.take_completed() {
                    rt.release_job_result(id);
                    seed += 1;
                    submit_one(&mut rt, &ds, seed);
                }
                black_box(progressed)
            })
        });
        // The backlog really was held at scale throughout the run.
        assert!(
            rt.cluster_status().running_jobs >= jobs.saturating_sub(1),
            "backlog drained mid-measurement"
        );
    }
    g.finish();
}

fn mean_of(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .find(|r| r.name == name)
        .map(|r| r.mean_ns)
        .expect("bench ran")
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_assign(&mut c);
    bench_heartbeat(&mut c);
    let step_1k = mean_of(&c, "heartbeat/step_1000_queued");
    let step_10k = mean_of(&c, "heartbeat/step_10000_queued");
    println!(
        "heartbeat growth 1k -> 10k queued jobs: {:.2}x (linear would be ~10x)",
        step_10k / step_1k
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    c.write_json(out).expect("write BENCH_sched.json");
    println!("wrote {out}");
}
