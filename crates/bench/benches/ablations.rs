//! Ablation benches: the design-choice sweeps of
//! `incmr_experiments::ablations`, timed at mini scale. The rendered
//! sweep tables print once before timing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use incmr_bench::mini;
use incmr_experiments::ablations;

fn bench_ablations(c: &mut Criterion) {
    let cal = mini();
    println!(
        "{}",
        ablations::render_rows(
            "Evaluation interval (LA, single user)",
            &ablations::eval_interval_sweep(&cal, &[1_000, 4_000, 16_000]),
        )
    );
    println!(
        "{}",
        ablations::render_rows(
            "Tasks per heartbeat (LA, homogeneous)",
            &ablations::heartbeat_batch_sweep(&cal, &[1, 4, 16]),
        )
    );
    println!(
        "{}",
        ablations::render_rows(
            "Adaptive vs static policies",
            &ablations::adaptive_vs_static(&cal),
        )
    );

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function(
        BenchmarkId::from_parameter("eval_interval_one_point"),
        |b| b.iter(|| black_box(ablations::eval_interval_sweep(&cal, &[4_000]))),
    );
    g.bench_function(BenchmarkId::from_parameter("fair_delay_one_point"), |b| {
        b.iter(|| black_box(ablations::fair_delay_sweep(&cal, &[15])))
    });
    g.bench_function(BenchmarkId::from_parameter("replication_r3"), |b| {
        b.iter(|| black_box(ablations::replication_sweep(&cal, &[Some(3)])))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
