//! Shuffle micro-benchmark: the host cost of map-side partitioning, the
//! optional combiner, and the streaming merge into per-reduce buffers.
//!
//! Two workload shapes bracket the partitioning spectrum:
//!
//! * **wide keys** — every record under one of 1 000 distinct keys, spread
//!   across 4 reduce partitions (the general MapReduce shape);
//! * **dummy key** — every record under one shared key into a single
//!   partition (the paper's sampling job shape, Algorithm 1).
//!
//! Each shape runs with and without a `SampleCombiner(k)`. The combiner is
//! a map-side LIMIT push-down: with it, no task ships more than `k` pairs,
//! so the merged shuffle materialises at most `k × maps` records however
//! large the input is. The bench prints both totals so that bound is
//! visible, and writes timings to `BENCH_shuffle.json`.

use std::sync::Arc;

use criterion::{black_box, Criterion, Throughput};

use incmr_core::SampleCombiner;
use incmr_data::{Dataset, DatasetSpec, SkewLevel};
use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
use incmr_mapreduce::{
    Combiner, DatasetInputFormat, InputFormat, Key, MapResult, MapUnit, Mapper, ParallelExecutor,
    Parallelism, ScanMode, ShuffleState, SplitData,
};
use incmr_simkit::rng::DetRng;

const MAPS: u32 = 24;
const RECORDS_PER_SPLIT: u64 = 5_000;
const COMBINER_K: u64 = 100;

/// An *uncapped* mapper: emits every record of the split, keyed by a
/// caller-supplied fan-out (1 = the sampling job's dummy key). This is the
/// shape that makes a combiner matter — `SamplingMapper` already caps its
/// own output, so it never ships more than `k` pairs per task.
struct FanOutMapper {
    distinct_keys: usize,
}

impl Mapper for FanOutMapper {
    fn run(&self, data: SplitData) -> MapResult {
        let (SplitData::Records(records)
        | SplitData::Planted {
            matches: records, ..
        }) = data.into_rows()
        else {
            unreachable!()
        };
        let keys: Vec<Key> = (0..self.distinct_keys)
            .map(|i| Key::from(format!("k{i}")))
            .collect();
        let records_read = records.len() as u64;
        MapResult {
            pairs: records
                .into_iter()
                .enumerate()
                .map(|(i, r)| (Key::clone(&keys[i % keys.len()]), r))
                .collect(),
            records_read,
            ..MapResult::default()
        }
    }
}

fn shuffle_units(
    distinct_keys: usize,
    reduce_tasks: u32,
    combiner: Option<Arc<dyn Combiner>>,
) -> Vec<MapUnit> {
    let mut ns = Namespace::new(ClusterTopology::paper_cluster());
    let mut rng = DetRng::seed_from(7);
    let spec = DatasetSpec::small("shufbench", MAPS, RECORDS_PER_SPLIT, SkewLevel::Zero, 7);
    let ds = Arc::new(Dataset::build(
        &mut ns,
        spec,
        &mut EvenRoundRobin::new(),
        &mut rng,
    ));
    let input: Arc<dyn InputFormat> =
        Arc::new(DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Full));
    let mapper: Arc<dyn Mapper> = Arc::new(FanOutMapper { distinct_keys });
    ds.splits()
        .iter()
        .map(|plan| MapUnit {
            input_format: Arc::clone(&input),
            mapper: Arc::clone(&mapper),
            combiner: combiner.clone(),
            block: plan.block,
            reduce_tasks,
        })
        .collect()
}

/// Run one batch end to end — map, combine, partition on the executor,
/// then stream-merge every task's partitions — and return the number of
/// records the merged shuffle materialised.
fn run_batch(executor: &mut ParallelExecutor, units: Vec<MapUnit>, reduce_tasks: u32) -> u64 {
    let mut shuffle = ShuffleState::new(reduce_tasks, u64::MAX);
    for result in executor.run(units) {
        shuffle.merge(result.pairs);
    }
    shuffle.materialized_records()
}

fn bench_shuffle(c: &mut Criterion) {
    let mut executor = ParallelExecutor::new(Parallelism::threads(1));
    let mut g = c.benchmark_group("shuffle/map_partition_merge_24x5k");
    g.throughput(Throughput::Elements(MAPS as u64 * RECORDS_PER_SPLIT));
    for (shape, distinct_keys, reduce_tasks) in
        [("wide_keys", 1_000usize, 4u32), ("dummy_key", 1, 1)]
    {
        for with_combiner in [false, true] {
            let combiner: Option<Arc<dyn Combiner>> =
                with_combiner.then(|| Arc::new(SampleCombiner::new(COMBINER_K)) as _);
            let units = shuffle_units(distinct_keys, reduce_tasks, combiner);
            let materialized = run_batch(&mut executor, units.clone(), reduce_tasks);
            if with_combiner {
                assert!(
                    materialized <= COMBINER_K * MAPS as u64,
                    "combiner bound violated: {materialized} > k×maps"
                );
            } else {
                assert_eq!(materialized, MAPS as u64 * RECORDS_PER_SPLIT);
            }
            let suffix = if with_combiner {
                "combiner"
            } else {
                "no_combiner"
            };
            println!(
                "{shape}/{suffix}: {materialized} records materialised \
                 (bound: {}, k×maps = {})",
                MAPS as u64 * RECORDS_PER_SPLIT,
                COMBINER_K * MAPS as u64,
            );
            g.bench_function(format!("{shape}/{suffix}"), |b| {
                b.iter(|| black_box(run_batch(&mut executor, units.clone(), reduce_tasks)))
            });
        }
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_shuffle(&mut c);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shuffle.json");
    c.write_json(out).expect("write BENCH_shuffle.json");
    println!("wrote {out}");
}
