//! Figure 6 bench: a miniature homogeneous multi-user workload per policy
//! (uniform skew). Prints the mini-scale throughput/resource table once,
//! then times one steady-state run per policy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use incmr_bench::mini;
use incmr_core::Policy;
use incmr_data::SkewLevel;
use incmr_experiments::fig6;
use incmr_mapreduce::{FifoScheduler, MrRuntime};
use incmr_workload::{run_workload, WorkloadSpec};

fn run_one(cal: &incmr_experiments::Calibration, policy: Policy) -> f64 {
    let (ns, datasets) = cal.build_copies(SkewLevel::Zero, 77);
    let mut rt = MrRuntime::new(
        cal.cluster_multi,
        cal.cost,
        ns,
        Box::new(FifoScheduler::new()),
    );
    let spec = WorkloadSpec::homogeneous(datasets, cal.k, policy, cal.warmup, cal.measure, 11);
    run_workload(&mut rt, &spec).sampling_jobs_per_hour()
}

fn bench_fig6(c: &mut Criterion) {
    let cal = mini();
    let result = fig6::run_with_skews(&cal, &[SkewLevel::Zero]);
    println!("{}", fig6::render_figure(&result));

    let mut g = c.benchmark_group("fig6/homogeneous_workload");
    g.sample_size(10);
    for policy in Policy::table1() {
        g.bench_with_input(
            BenchmarkId::from_parameter(&policy.name),
            &policy,
            |b, p| b.iter(|| black_box(run_one(&cal, p.clone()))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
