//! The multi-tenant query service.
//!
//! One [`QueryService`] fronts one shared [`MrRuntime`] for many tenants.
//! Each tenant owns a HiveQL [`SessionState`] (its own policy registry,
//! active policy, scan mode, and seed counter) plus a
//! [`TenantProfile`]'s quota knobs. Statements flow through three gates:
//!
//! 1. **Admission control** — a statement whose tenant queue is at its
//!    depth cap is refused with a typed
//!    [`ServiceError::Rejected`](crate::ServiceError) and a
//!    `QueryRejected` trace event; an accepted statement that cannot
//!    start immediately (tenant at its in-flight quota, or the service
//!    at its global cap) records `QuotaDeferred`.
//! 2. **Weighted fair dispatch** — queued statements launch in virtual-
//!    pass order (start-time fair queueing): each launch advances the
//!    tenant's pass by `PASS_SCALE / weight`, so a weight-3 tenant
//!    drains its backlog three times as fast as a weight-1 tenant under
//!    saturation. Dispatch pops the minimum of an indexed run queue —
//!    `O(log tenants)` per decision, independent of backlog depth.
//! 3. **The cluster scheduler** — admitted jobs compete for map slots
//!    under whichever `TaskScheduler` the runtime was built with.
//!
//! Every admission decision is observable: `QueryAdmitted` /
//! `QueryRejected` / `QuotaDeferred` trace events on the runtime's trace
//! plane, and per-tenant queue-wait histograms (time from submission to
//! job launch) in the service's metrics registry.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use incmr_data::Dataset;
use incmr_hiveql::{
    collect_result, Catalog, CompiledQuery, Prepared, QueryOutput, QueryResult, SessionState,
    TenantProfile,
};
use incmr_mapreduce::{JobId, MetricsRegistry, MrRuntime, TraceKind};
use incmr_simkit::SimTime;

use crate::config::{ServiceConfig, ServiceError, TenantId, Ticket};

/// Virtual-pass scale: one launch advances a weight-`w` tenant's pass by
/// `PASS_SCALE / w`, so relative drain rates follow the weights exactly.
const PASS_SCALE: u64 = 1 << 20;

/// What a submission produced.
#[derive(Debug)]
pub enum ServiceReply {
    /// A `SELECT` was admitted (queued or launched); redeem the ticket
    /// with [`QueryService::wait`] or [`QueryService::take_result`].
    Admitted(Ticket),
    /// The statement completed immediately (`SET` / `SHOW` / `EXPLAIN`),
    /// against this tenant's own session state.
    Immediate(QueryOutput),
}

struct QueuedQuery {
    seq: u64,
    compiled: CompiledQuery,
    enqueued_at: SimTime,
}

struct ActiveQuery {
    seq: u64,
    requested_k: Option<u64>,
}

/// Point-in-time public counters for one tenant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Queries that ran to completion.
    pub completed: u64,
    /// Submissions refused at the queue-depth cap.
    pub rejected: u64,
    /// Admitted submissions that could not start immediately.
    pub deferred: u64,
    /// Jobs currently on the cluster.
    pub in_flight: u32,
    /// Statements waiting in the tenant queue.
    pub queued: u32,
    /// Sum of map tasks that ran data-local, across completed queries.
    pub local_tasks: u64,
    /// Sum of splits processed across completed queries.
    pub splits_processed: u64,
}

struct TenantState {
    profile: TenantProfile,
    session: SessionState,
    queue: VecDeque<QueuedQuery>,
    /// Finished queries awaiting pickup, by ticket sequence number.
    finished: HashMap<u64, QueryResult>,
    active: HashMap<JobId, ActiveQuery>,
    /// Weighted-fair virtual pass; the run queue is ordered by it.
    pass: u64,
    in_flight: u32,
    stats: TenantStats,
    /// Per-query histograms merged across this tenant's completed jobs.
    histograms: MetricsRegistry,
}

impl TenantState {
    fn eligible(&self) -> bool {
        !self.queue.is_empty() && self.in_flight < self.profile.max_in_flight
    }
}

/// A long-running, multi-tenant query service over one simulated cluster.
pub struct QueryService {
    runtime: MrRuntime,
    catalog: Catalog,
    cfg: ServiceConfig,
    tenants: Vec<TenantState>,
    /// Eligible tenants (queued work + spare quota), ordered by
    /// `(virtual pass, tenant id)`: dispatch pops the minimum.
    run_queue: BTreeSet<(u64, u16)>,
    /// Jobs on the cluster, mapped back to their tenant.
    active_jobs: HashMap<JobId, TenantId>,
    in_flight_total: u32,
    next_seq: u64,
    /// Virtual clock: the pass of the most recent dispatch. Tenants
    /// going from idle to backlogged restart here, not at their stale
    /// pass, so an idle tenant cannot bank credit.
    vclock: u64,
    /// Per-tenant queue-wait histograms, keyed by tenant name.
    metrics: MetricsRegistry,
}

impl QueryService {
    /// A service over a runtime with the given global admission config.
    ///
    /// # Panics
    /// If `cfg.max_in_flight_jobs` is zero (nothing could ever launch).
    pub fn new(runtime: MrRuntime, cfg: ServiceConfig) -> Self {
        assert!(
            cfg.max_in_flight_jobs > 0,
            "max_in_flight_jobs must be at least 1"
        );
        QueryService {
            runtime,
            catalog: Catalog::new(),
            cfg,
            tenants: Vec::new(),
            run_queue: BTreeSet::new(),
            active_jobs: HashMap::new(),
            in_flight_total: 0,
            next_seq: 0,
            vclock: 0,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Register a table every tenant can query.
    pub fn register_table(&mut self, name: &str, dataset: Arc<Dataset>) {
        self.catalog.register(name, dataset);
    }

    /// Register a tenant with default session state.
    pub fn add_tenant(&mut self, profile: TenantProfile) -> TenantId {
        self.add_tenant_with_state(profile, SessionState::new())
    }

    /// Register a tenant with a pre-configured session state (policy
    /// file already loaded, scan mode chosen, …).
    pub fn add_tenant_with_state(
        &mut self,
        profile: TenantProfile,
        session: SessionState,
    ) -> TenantId {
        let id = TenantId(self.tenants.len() as u16);
        self.tenants.push(TenantState {
            profile,
            session,
            queue: VecDeque::new(),
            finished: HashMap::new(),
            active: HashMap::new(),
            pass: self.vclock,
            in_flight: 0,
            stats: TenantStats::default(),
            histograms: MetricsRegistry::new(),
        });
        id
    }

    /// The underlying runtime (trace, metrics, clock).
    pub fn runtime(&self) -> &MrRuntime {
        &self.runtime
    }

    /// Mutable runtime access (enable tracing, inject faults, …).
    pub fn runtime_mut(&mut self) -> &mut MrRuntime {
        &mut self.runtime
    }

    /// A tenant's session state (to adjust policies or modes directly).
    pub fn session_state_mut(&mut self, tenant: TenantId) -> &mut SessionState {
        &mut self.tenants[tenant.0 as usize].session
    }

    /// A tenant's public counters.
    pub fn tenant_stats(&self, tenant: TenantId) -> &TenantStats {
        &self.tenants[tenant.0 as usize].stats
    }

    /// A tenant's merged per-query histograms.
    pub fn tenant_histograms(&self, tenant: TenantId) -> &MetricsRegistry {
        &self.tenants[tenant.0 as usize].histograms
    }

    /// Service-level metrics: the queue-wait family keyed by tenant name
    /// (submission-to-launch latency).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Jobs currently running across all tenants.
    pub fn in_flight(&self) -> u32 {
        self.in_flight_total
    }

    /// Statements waiting across all tenant queues.
    pub fn backlog(&self) -> u32 {
        self.tenants.iter().map(|t| t.queue.len() as u32).sum()
    }

    /// Submit one statement for `tenant`. `SET`/`SHOW`/`EXPLAIN` resolve
    /// immediately against the tenant's session state; `SELECT` goes
    /// through admission control and weighted-fair dispatch.
    pub fn submit(&mut self, tenant: TenantId, sql: &str) -> Result<ServiceReply, ServiceError> {
        let idx = tenant.0 as usize;
        if idx >= self.tenants.len() {
            return Err(ServiceError::UnknownTenant(tenant));
        }
        let t = &mut self.tenants[idx];
        let prepared = t.session.prepare(sql, &self.catalog)?;
        let compiled = match prepared {
            Prepared::Immediate(out) => return Ok(ServiceReply::Immediate(out)),
            Prepared::Submit(compiled) => compiled,
        };
        let queued = t.queue.len() as u32;
        if queued >= t.profile.queue_cap {
            t.stats.rejected += 1;
            self.runtime.record_event(TraceKind::QueryRejected {
                tenant: tenant.0 as u32,
                queued,
            });
            return Err(ServiceError::Rejected {
                tenant,
                queued,
                cap: t.profile.queue_cap,
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let enqueued_at = self.runtime.now();
        let was_eligible = t.eligible();
        t.queue.push_back(QueuedQuery {
            seq,
            compiled,
            enqueued_at,
        });
        if !was_eligible && t.eligible() {
            // Idle → backlogged: restart the pass at the virtual clock.
            t.pass = t.pass.max(self.vclock);
            self.run_queue.insert((t.pass, tenant.0));
        }
        self.dispatch();
        // Deferred iff still queued after dispatch (this statement was
        // pushed at the back, so it is the back entry if still waiting).
        let t = &mut self.tenants[idx];
        if t.queue.back().is_some_and(|q| q.seq == seq) {
            let depth = t.queue.len() as u32;
            t.stats.deferred += 1;
            self.runtime.record_event(TraceKind::QuotaDeferred {
                tenant: tenant.0 as u32,
                depth,
            });
        }
        Ok(ServiceReply::Admitted(Ticket { tenant, seq }))
    }

    /// Launch queued statements in weighted-fair order while capacity
    /// allows. Each decision is one `BTreeSet` pop + reinsert.
    fn dispatch(&mut self) -> u32 {
        let mut launched = 0;
        while self.in_flight_total < self.cfg.max_in_flight_jobs {
            let Some(&(pass, tid)) = self.run_queue.iter().next() else {
                break;
            };
            self.run_queue.remove(&(pass, tid));
            self.vclock = pass;
            let t = &mut self.tenants[tid as usize];
            debug_assert!(t.eligible(), "run queue held an ineligible tenant");
            let q = t.queue.pop_front().expect("eligible tenants have work");
            let requested_k = q.compiled.requested_k();
            let job = self.runtime.submit(q.compiled.spec, q.compiled.driver);
            let wait_ms = self.runtime.now().since(q.enqueued_at).as_millis();
            self.metrics.record_queue_wait(&t.profile.name, wait_ms);
            t.active.insert(
                job,
                ActiveQuery {
                    seq: q.seq,
                    requested_k,
                },
            );
            t.in_flight += 1;
            t.pass = pass + PASS_SCALE / t.profile.weight as u64;
            let eligible = t.eligible();
            let new_pass = t.pass;
            self.in_flight_total += 1;
            self.active_jobs.insert(job, TenantId(tid));
            self.runtime.record_event(TraceKind::QueryAdmitted {
                tenant: tid as u32,
                job,
            });
            if eligible {
                self.run_queue.insert((new_pass, tid));
            }
            launched += 1;
        }
        launched
    }

    /// Collect finished jobs, merge their histograms, release their bulky
    /// runtime state, and refill freed capacity. Returns jobs launched.
    fn reap(&mut self) -> u32 {
        for job in self.runtime.take_completed() {
            let Some(tenant) = self.active_jobs.remove(&job) else {
                // Not ours (submitted directly on the runtime).
                continue;
            };
            let t = &mut self.tenants[tenant.0 as usize];
            let active = t.active.remove(&job).expect("active job tracked");
            let result = collect_result(&self.runtime, job, active.requested_k);
            self.runtime.release_job_result(job);
            let t = &mut self.tenants[tenant.0 as usize];
            t.histograms.merge(&result.histograms);
            t.stats.completed += 1;
            t.stats.local_tasks += result.local_tasks as u64;
            t.stats.splits_processed += result.splits_processed as u64;
            t.finished.insert(active.seq, result);
            let was_eligible = t.eligible();
            t.in_flight -= 1;
            self.in_flight_total -= 1;
            let t = &self.tenants[tenant.0 as usize];
            if !was_eligible && t.eligible() {
                self.run_queue.insert((t.pass, tenant.0));
            }
        }
        self.dispatch()
    }

    /// Advance the service by one simulation event. Returns false once
    /// the cluster is idle and no dispatch refilled it.
    pub fn step(&mut self) -> bool {
        let progressed = self.runtime.step();
        let launched = self.reap();
        progressed || launched > 0
    }

    /// Run until every queue is drained and every job has completed.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
        debug_assert_eq!(self.in_flight_total, 0);
        debug_assert_eq!(self.backlog(), 0);
    }

    /// Run until the simulated clock passes `limit` (or everything
    /// drains first).
    pub fn run_until(&mut self, limit: SimTime) {
        while self.runtime.now() < limit && self.step() {}
    }

    /// Take a completed query's result, if it has finished.
    pub fn take_result(&mut self, ticket: &Ticket) -> Option<QueryResult> {
        self.tenants[ticket.tenant.0 as usize]
            .finished
            .remove(&ticket.seq)
    }

    /// Drive the service until `ticket`'s query completes, then return
    /// its result.
    pub fn wait(&mut self, ticket: Ticket) -> QueryResult {
        loop {
            if let Some(result) = self.take_result(&ticket) {
                return result;
            }
            assert!(self.step(), "service went idle before {ticket:?} finished");
        }
    }
}
