//! # incmr-service
//!
//! A long-running **multi-tenant query service** over the simulated
//! cluster: the shape the paper's deployment takes when many users share
//! one Hadoop installation through Hive sessions, instead of one CLI
//! user owning the cluster.
//!
//! Each tenant gets its own HiveQL session state (policy registry,
//! active policy, scan mode, seed counter) and a
//! [`TenantProfile`](incmr_hiveql::TenantProfile) of
//! quota knobs; the service multiplexes all of them onto one
//! [`MrRuntime`](incmr_mapreduce::MrRuntime) with:
//!
//! * **admission control** — per-tenant queue-depth caps with typed
//!   [`ServiceError::Rejected`] and a global in-flight job cap;
//! * **weighted fair dispatch** — start-time fair queueing over an
//!   indexed run queue, `O(log tenants)` per decision;
//! * **full observability** — `QueryAdmitted` / `QueryRejected` /
//!   `QuotaDeferred` trace events and per-tenant queue-wait histograms.
//!
//! ```
//! use std::sync::Arc;
//! use incmr_data::{Dataset, DatasetSpec, SkewLevel};
//! use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
//! use incmr_hiveql::TenantProfile;
//! use incmr_mapreduce::{ClusterConfig, CostModel, FairScheduler, MrRuntime};
//! use incmr_service::{QueryService, ServiceConfig, ServiceReply};
//! use incmr_simkit::rng::DetRng;
//!
//! let mut ns = Namespace::new(ClusterTopology::paper_cluster());
//! let mut rng = DetRng::seed_from(7);
//! let ds = Arc::new(Dataset::build(
//!     &mut ns,
//!     DatasetSpec::small("lineitem", 20, 2_000, SkewLevel::High, 7),
//!     &mut EvenRoundRobin::new(),
//!     &mut rng,
//! ));
//! let rt = MrRuntime::new(
//!     ClusterConfig::paper_multi_user(),
//!     CostModel::paper_default(),
//!     ns,
//!     Box::new(FairScheduler::paper_default()),
//! );
//! let mut svc = QueryService::new(rt, ServiceConfig::default());
//! svc.register_table("lineitem", ds);
//! let alice = svc.add_tenant(TenantProfile {
//!     name: "alice".into(),
//!     ..TenantProfile::default()
//! });
//! let ServiceReply::Admitted(ticket) = svc
//!     .submit(alice, "SELECT * FROM lineitem WHERE L_TAX = 0.77 LIMIT 5")
//!     .unwrap()
//! else {
//!     panic!()
//! };
//! let result = svc.wait(ticket);
//! assert_eq!(result.rows.len(), 5);
//! ```

pub mod config;
pub mod service;

pub use config::{ServiceConfig, ServiceError, TenantId, Ticket};
pub use service::{QueryService, ServiceReply, TenantStats};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use incmr_data::{Dataset, DatasetSpec, SkewLevel};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_hiveql::{QueryOutput, TenantProfile};
    use incmr_mapreduce::{
        ClusterConfig, CostModel, FairScheduler, MrRuntime, ScanMode, TraceKind,
    };
    use incmr_simkit::rng::DetRng;

    const SAMPLE: &str = "SELECT L_ORDERKEY FROM lineitem WHERE L_TAX = 0.77 LIMIT 5";

    fn service(cfg: ServiceConfig) -> QueryService {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(21);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            DatasetSpec::small("lineitem", 20, 2_000, SkewLevel::High, 21),
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let rt = MrRuntime::new(
            ClusterConfig::paper_multi_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FairScheduler::paper_default()),
        );
        let mut svc = QueryService::new(rt, cfg);
        svc.register_table("lineitem", ds);
        svc
    }

    fn tenant(name: &str, weight: u32, max_in_flight: u32, queue_cap: u32) -> TenantProfile {
        TenantProfile {
            name: name.into(),
            weight,
            max_in_flight,
            queue_cap,
        }
    }

    #[test]
    fn single_tenant_query_completes() {
        let mut svc = service(ServiceConfig::default());
        let a = svc.add_tenant(TenantProfile::default());
        let ServiceReply::Admitted(ticket) = svc.submit(a, SAMPLE).unwrap() else {
            panic!()
        };
        let result = svc.wait(ticket);
        assert_eq!(result.rows.len(), 5);
        assert!(!result.failed);
        assert_eq!(svc.tenant_stats(a).completed, 1);
        assert_eq!(svc.in_flight(), 0);
    }

    #[test]
    fn immediate_statements_use_per_tenant_state() {
        let mut svc = service(ServiceConfig::default());
        let a = svc.add_tenant(tenant("a", 1, 4, 16));
        let b = svc.add_tenant(tenant("b", 1, 4, 16));
        let ServiceReply::Immediate(QueryOutput::SetOk { .. }) =
            svc.submit(a, "SET dynamic.job.policy = C").unwrap()
        else {
            panic!()
        };
        assert_eq!(svc.session_state_mut(a).active_policy().name, "C");
        // Tenant b's session is untouched.
        assert_eq!(svc.session_state_mut(b).active_policy().name, "LA");
        // EXPLAIN resolves against a's (changed) policy.
        let ServiceReply::Immediate(QueryOutput::Explained(plan)) =
            svc.submit(a, &format!("EXPLAIN {SAMPLE}")).unwrap()
        else {
            panic!()
        };
        assert!(plan.contains("policy: C"), "{plan}");
    }

    #[test]
    fn queue_cap_rejects_with_typed_error_and_trace() {
        let mut svc = service(ServiceConfig {
            max_in_flight_jobs: 1,
        });
        svc.runtime_mut().enable_tracing();
        let a = svc.add_tenant(tenant("a", 1, 1, 2));
        // One launches, two queue (cap), the fourth is refused.
        for _ in 0..3 {
            assert!(matches!(
                svc.submit(a, SAMPLE),
                Ok(ServiceReply::Admitted(_))
            ));
        }
        let err = svc.submit(a, SAMPLE).unwrap_err();
        let ServiceError::Rejected {
            tenant: who,
            queued,
            cap,
        } = err
        else {
            panic!("wrong error")
        };
        assert_eq!((who, queued, cap), (a, 2, 2));
        assert_eq!(svc.tenant_stats(a).rejected, 1);
        let trace = svc.runtime_mut().take_trace();
        assert!(trace.iter().any(|e| matches!(
            e.kind,
            TraceKind::QueryRejected {
                tenant: 0,
                queued: 2
            }
        )));
        svc.run_until_idle();
        assert_eq!(svc.tenant_stats(a).completed, 3);
    }

    #[test]
    fn quota_deferral_is_traced_and_counted() {
        let mut svc = service(ServiceConfig::default());
        svc.runtime_mut().enable_tracing();
        let a = svc.add_tenant(tenant("a", 1, 1, 8));
        svc.submit(a, SAMPLE).unwrap(); // launches
        svc.submit(a, SAMPLE).unwrap(); // deferred: quota of 1
        assert_eq!(svc.tenant_stats(a).deferred, 1);
        assert_eq!(svc.tenant_stats(a).queued, 0); // stats snapshot lags
        assert_eq!(svc.backlog(), 1);
        let trace = svc.runtime_mut().take_trace();
        assert!(trace.iter().any(|e| matches!(
            e.kind,
            TraceKind::QuotaDeferred {
                tenant: 0,
                depth: 1
            }
        )));
        svc.run_until_idle();
        assert_eq!(svc.tenant_stats(a).completed, 2);
    }

    #[test]
    fn unknown_tenant_and_bad_sql_are_typed() {
        let mut svc = service(ServiceConfig::default());
        assert!(matches!(
            svc.submit(TenantId(9), SAMPLE),
            Err(ServiceError::UnknownTenant(TenantId(9)))
        ));
        let a = svc.add_tenant(TenantProfile::default());
        assert!(matches!(
            svc.submit(a, "SELEKT nope"),
            Err(ServiceError::Session(_))
        ));
    }

    #[test]
    fn weighted_dispatch_favours_heavier_tenants() {
        // Global capacity 1 serialises launches; with backlogs of 8 each,
        // the launch order must interleave 3:1 for weights 3 and 1.
        let mut svc = service(ServiceConfig {
            max_in_flight_jobs: 1,
        });
        svc.runtime_mut().enable_tracing();
        let heavy = svc.add_tenant(tenant("heavy", 3, 8, 16));
        let light = svc.add_tenant(tenant("light", 1, 8, 16));
        for _ in 0..8 {
            svc.submit(heavy, SAMPLE).unwrap();
            svc.submit(light, SAMPLE).unwrap();
        }
        svc.run_until_idle();
        let admits: Vec<u32> = svc
            .runtime_mut()
            .take_trace()
            .into_iter()
            .filter_map(|e| match e.kind {
                TraceKind::QueryAdmitted { tenant, .. } => Some(tenant),
                _ => None,
            })
            .collect();
        assert_eq!(admits.len(), 16);
        // In any prefix long enough, heavy must lead light by ~3x.
        let heavy_in_first_8 = admits[..8].iter().filter(|&&t| t == heavy.0 as u32).count();
        assert!(
            (5..=7).contains(&heavy_in_first_8),
            "weight-3 tenant got {heavy_in_first_8}/8 of the first launches: {admits:?}"
        );
        assert_eq!(svc.tenant_stats(heavy).completed, 8);
        assert_eq!(svc.tenant_stats(light).completed, 8);
    }

    #[test]
    fn queue_wait_histograms_are_keyed_by_tenant() {
        let mut svc = service(ServiceConfig {
            max_in_flight_jobs: 1,
        });
        let a = svc.add_tenant(tenant("analytics", 1, 4, 16));
        for _ in 0..4 {
            svc.submit(a, SAMPLE).unwrap();
        }
        svc.run_until_idle();
        let families = svc.metrics().families();
        let (name, hist) = families
            .iter()
            .find(|(name, _)| name.contains("analytics"))
            .expect("per-tenant queue-wait family");
        assert!(name.contains("queue_wait"), "{name}");
        assert_eq!(hist.count(), 4);
        // With capacity 1, later queries waited a nonzero time.
        assert!(hist.max() > 0);
    }

    #[test]
    fn per_tenant_session_state_isolates_scan_modes() {
        let mut svc = service(ServiceConfig::default());
        let strict = svc.add_tenant(tenant("strict", 1, 4, 16));
        let mut full = incmr_hiveql::SessionState::new();
        full.set_scan_mode(ScanMode::Full);
        let relaxed = svc.add_tenant_with_state(tenant("relaxed", 1, 4, 16), full);
        // Ad-hoc predicate: rejected for the planted-mode tenant,
        // admitted for the full-scan tenant.
        let adhoc = "SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY <= 25 LIMIT 3";
        assert!(matches!(
            svc.submit(strict, adhoc),
            Err(ServiceError::Session(_))
        ));
        let ServiceReply::Admitted(ticket) = svc.submit(relaxed, adhoc).unwrap() else {
            panic!()
        };
        assert_eq!(svc.wait(ticket).rows.len(), 3);
    }
}
