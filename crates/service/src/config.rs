//! Service-level configuration, identities, and typed errors.

use std::fmt;

use incmr_hiveql::SessionError;

/// A registered tenant, by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// A submitted statement: redeem it for a
/// [`QueryResult`](incmr_hiveql::QueryResult) once complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// The owning tenant.
    pub tenant: TenantId,
    /// Service-wide submission sequence number.
    pub seq: u64,
}

/// Service-wide admission knobs (per-tenant knobs live on each
/// [`TenantProfile`](incmr_hiveql::TenantProfile)).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Jobs the service will keep running on the cluster at once,
    /// across all tenants.
    pub max_in_flight_jobs: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_in_flight_jobs: 64,
        }
    }
}

/// Typed submission failures.
#[derive(Debug)]
pub enum ServiceError {
    /// The tenant id was never registered.
    UnknownTenant(TenantId),
    /// Admission control refused the statement: the tenant's queue is at
    /// its depth cap.
    Rejected {
        /// Who was refused.
        tenant: TenantId,
        /// Statements already waiting.
        queued: u32,
        /// The tenant's configured cap.
        cap: u32,
    },
    /// The statement failed to parse or compile.
    Session(SessionError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant: {t}"),
            ServiceError::Rejected {
                tenant,
                queued,
                cap,
            } => write!(f, "{tenant} rejected: queue at depth cap ({queued}/{cap})"),
            ServiceError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SessionError> for ServiceError {
    fn from(e: SessionError) -> Self {
        ServiceError::Session(e)
    }
}
